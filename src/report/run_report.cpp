#include "hetero/report/run_report.h"

#if HETERO_OBS_ENABLED

#include <algorithm>
#include <cstdio>
#include <map>
#include <string_view>
#include <utility>
#include <vector>

#include "hetero/experiments/campaign.h"
#include "hetero/experiments/fault_sweep.h"
#include "hetero/experiments/protocol_sweep.h"
#include "hetero/obs/chrome_trace.h"
#include "hetero/obs/trace_context.h"
#include "hetero/protocol/coded.h"
#include "hetero/runner/codec.h"
#include "hetero/runner/journal.h"
#include "hetero/stats/robust.h"

namespace hetero::report {

namespace {

/// Compact human formatting for markdown (still deterministic — snprintf
/// with a fixed format is a pure function of the bits).
std::string fmt6(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.6g", value);
  return std::string{buffer};
}

/// Exact round-trip formatting for JSON payload values.
std::string fmt17(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return std::string{buffer};
}

/// JSON-safe rendering of a possibly non-finite score: finite → number,
/// inf/nan → quoted string (JSON has no literal for them).
std::string json_score(double value) {
  if (value != value) return "\"nan\"";
  if (value > 1.7976931348623157e308) return "\"inf\"";
  if (value < -1.7976931348623157e308) return "\"-inf\"";
  return fmt17(value);
}

std::string md_score(double value) {
  if (value != value) return "nan";
  if (value > 1.7976931348623157e308) return "inf";
  if (value < -1.7976931348623157e308) return "-inf";
  return fmt6(value);
}

/// One "!obs:<prefix>:<unit>" telemetry record (see runner::run_units).
struct Telemetry {
  std::size_t unit = 0;
  double seconds = 0.0;
  std::uint64_t attempts = 1;
  std::uint64_t retries = 0;
  std::uint64_t outcome = 0;
};

/// Everything the generators read, decoded once from the journal.
struct JournalView {
  runner::JournalHeader header;
  std::size_t dropped = 0;
  std::vector<std::pair<std::size_t, std::string>> units;  ///< unit records, numeric order
  std::vector<Telemetry> telemetry;                        ///< sorted by unit
  bool has_lp = false;
  std::uint64_t lp_solves = 0;
  std::uint64_t lp_warm_starts = 0;
  std::size_t other_records = 0;
};

/// Parses "<prefix>:<digits>" → unit index.
bool parse_indexed_key(std::string_view key, std::string_view prefix, std::size_t& index) {
  if (key.size() <= prefix.size() + 1 || key.substr(0, prefix.size()) != prefix ||
      key[prefix.size()] != ':') {
    return false;
  }
  std::size_t value = 0;
  for (const char c : key.substr(prefix.size() + 1)) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  index = value;
  return true;
}

JournalView load_view(const std::string& journal_path) {
  runner::Journal journal = runner::Journal::open(journal_path);
  JournalView view;
  view.header = journal.header();
  view.dropped = journal.dropped_records();
  // Unit records are keyed "<prefix>:<unit>"; the per-tool prefix is "cell"
  // for sweeps and "round" for campaigns.
  const std::string_view unit_prefix = view.header.tool == "campaign" ? "round" : "cell";
  for (const auto& [key, payload] : journal.records()) {
    std::size_t index = 0;
    if (parse_indexed_key(key, unit_prefix, index)) {
      view.units.emplace_back(index, payload);
    } else {
      ++view.other_records;
    }
  }
  for (const auto& [key, payload] : journal.sidecar()) {
    const std::string_view rest = std::string_view{key}.substr(5);  // past "!obs:"
    std::size_t index = 0;
    if (rest == "lp") {
      runner::FieldReader r{payload};
      view.lp_solves = r.u64();
      view.lp_warm_starts = r.u64();
      r.expect_done();
      view.has_lp = true;
    } else if (parse_indexed_key(rest, unit_prefix, index)) {
      runner::FieldReader r{payload};
      Telemetry t;
      t.unit = static_cast<std::size_t>(r.u64());
      t.seconds = r.d();
      t.attempts = r.u64();
      t.retries = r.u64();
      t.outcome = r.u64();
      r.expect_done();
      view.telemetry.push_back(t);
    } else {
      ++view.other_records;
    }
  }
  std::sort(view.units.begin(), view.units.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::sort(view.telemetry.begin(), view.telemetry.end(),
            [](const Telemetry& a, const Telemetry& b) { return a.unit < b.unit; });
  return view;
}

/// Human label for the grid coordinates a unit ran under — the attribution
/// string outlier lines carry.  Empty when the tool has no decoder.
std::string cell_label(const JournalView& view, std::size_t unit) {
  for (const auto& [index, payload] : view.units) {
    if (index != unit) continue;
    if (view.header.tool == "protocol_sweep") {
      const auto cell = experiments::decode_protocol_sweep_cell(payload);
      return std::string{protocol::to_string(cell.protocol)} + ", crash " +
             fmt6(cell.crash_rate) + ", straggler factor " + fmt6(cell.straggler_factor);
    }
    if (view.header.tool == "fault_sweep") {
      const auto cell = experiments::decode_fault_sweep_cell(payload);
      return "crash " + fmt6(cell.crash_rate) + ", straggler factor " +
             fmt6(cell.straggler_factor);
    }
    if (view.header.tool == "campaign") {
      const auto round = experiments::decode_campaign_round(payload);
      std::size_t alive = 0;
      for (const bool a : round.alive) alive += a ? 1 : 0;
      return std::to_string(alive) + "/" + std::to_string(round.machines) +
             " machines alive, " + std::to_string(round.faults.crashes) + " crash(es)";
    }
  }
  return {};
}

/// The per-unit simulated figure MAD outlier detection runs over, plus its
/// name (tool-specific; makespan for protocol sweeps, surviving reactive
/// work for fault sweeps, round work for campaigns).
const char* simulated_metric_name(const std::string& tool) {
  if (tool == "protocol_sweep") return "mean makespan";
  if (tool == "fault_sweep") return "reactive work";
  if (tool == "campaign") return "round work";
  return nullptr;
}

std::vector<double> simulated_metric(const JournalView& view) {
  std::vector<double> values;
  values.reserve(view.units.size());
  for (const auto& [index, payload] : view.units) {
    if (view.header.tool == "protocol_sweep") {
      values.push_back(experiments::decode_protocol_sweep_cell(payload).mean_makespan);
    } else if (view.header.tool == "fault_sweep") {
      values.push_back(experiments::decode_fault_sweep_cell(payload).reactive_work);
    } else if (view.header.tool == "campaign") {
      values.push_back(experiments::decode_campaign_round(payload).round_work);
    }
  }
  return values;
}

struct OutlierReport {
  std::size_t unit = 0;  ///< journal unit index (not sample position)
  double value = 0.0;
  double score = 0.0;
  std::string label;
};

std::vector<OutlierReport> simulated_outliers(const JournalView& view,
                                              const std::vector<double>& values) {
  std::vector<OutlierReport> out;
  if (values.size() < 2) return out;
  for (const stats::MadOutlier& o : stats::mad_outliers(values)) {
    const std::size_t unit = view.units[o.index].first;
    out.push_back({unit, o.value, o.score, cell_label(view, unit)});
  }
  return out;
}

std::vector<OutlierReport> wall_clock_outliers(const JournalView& view) {
  std::vector<OutlierReport> out;
  if (view.telemetry.size() < 2) return out;
  std::vector<double> seconds;
  seconds.reserve(view.telemetry.size());
  for (const Telemetry& t : view.telemetry) seconds.push_back(t.seconds);
  for (const stats::MadOutlier& o : stats::mad_outliers(seconds)) {
    const std::size_t unit = view.telemetry[o.index].unit;
    out.push_back({unit, o.value, o.score, cell_label(view, unit)});
  }
  return out;
}

/// Duration percentiles through the same power-of-two ladder the live
/// histograms use — so the report quotes the numbers /metrics would.
obs::HistogramSample duration_histogram(const JournalView& view) {
  obs::HistogramSample sample;
  sample.name = "unit_seconds";
  for (const Telemetry& t : view.telemetry) {
    ++sample.buckets[obs::HistogramBuckets::index_for(t.seconds)];
    ++sample.count;
    sample.sum += t.seconds;
  }
  return sample;
}

struct OutcomeCounts {
  std::uint64_t by_code[6] = {0, 0, 0, 0, 0, 0};
  std::uint64_t attempts = 0;
  std::uint64_t retries = 0;
  std::uint64_t duplicates = 0;  ///< attempts beyond the first, per unit
};

OutcomeCounts outcome_counts(const JournalView& view) {
  OutcomeCounts counts;
  for (const Telemetry& t : view.telemetry) {
    ++counts.by_code[t.outcome < 6 ? t.outcome : 5];
    counts.attempts += t.attempts;
    counts.retries += t.retries;
    counts.duplicates += t.attempts > 0 ? t.attempts - 1 : 0;
  }
  return counts;
}

// ------------------------------------------------------------------ tables

void append_protocol_table(std::string& out, const JournalView& view) {
  out += "| cell | protocol | crash | factor | makespan | hit rate | completed | wasted |\n";
  out += "|---:|:---|---:|---:|---:|---:|---:|---:|\n";
  for (const auto& [index, payload] : view.units) {
    const auto cell = experiments::decode_protocol_sweep_cell(payload);
    out += "| " + std::to_string(index) + " | " + protocol::to_string(cell.protocol) + " | " +
           fmt6(cell.crash_rate) + " | " + fmt6(cell.straggler_factor) + " | " +
           fmt6(cell.mean_makespan) + " | " + fmt6(cell.hit_rate * 100.0) + "% | " +
           fmt6(cell.mean_completed_work) + " | " + fmt6(cell.mean_redundant_wasted) + " |\n";
  }
}

void append_fault_table(std::string& out, const JournalView& view) {
  out += "| cell | crash | factor | fault-free | oblivious | reactive | crashes | replans |\n";
  out += "|---:|---:|---:|---:|---:|---:|---:|---:|\n";
  for (const auto& [index, payload] : view.units) {
    const auto cell = experiments::decode_fault_sweep_cell(payload);
    out += "| " + std::to_string(index) + " | " + fmt6(cell.crash_rate) + " | " +
           fmt6(cell.straggler_factor) + " | " + fmt6(cell.fault_free_work) + " | " +
           fmt6(cell.oblivious_work) + " | " + fmt6(cell.reactive_work) + " | " +
           fmt6(cell.mean_crashes) + " | " + fmt6(cell.mean_replans) + " |\n";
  }
}

void append_campaign_table(std::string& out, const JournalView& view) {
  out += "| round | work | alive | crashes | timeouts | retries |\n";
  out += "|---:|---:|---:|---:|---:|---:|\n";
  for (const auto& [index, payload] : view.units) {
    const auto round = experiments::decode_campaign_round(payload);
    std::size_t alive = 0;
    for (const bool a : round.alive) alive += a ? 1 : 0;
    out += "| " + std::to_string(index) + " | " + fmt6(round.round_work) + " | " +
           std::to_string(alive) + "/" + std::to_string(round.machines) + " | " +
           std::to_string(round.faults.crashes) + " | " +
           std::to_string(round.faults.timeouts) + " | " +
           std::to_string(round.faults.retries) + " |\n";
  }
}

}  // namespace

std::string run_report_markdown(const std::string& journal_path) {
  const JournalView view = load_view(journal_path);
  std::string out;
  out += "# Run report: " + view.header.tool + "\n\n";
  out += "- seed: " + std::to_string(view.header.seed) + "\n";
  out += "- fingerprint: " + view.header.fingerprint + "\n";
  out += "- records: " + std::to_string(view.units.size()) + " unit(s), " +
         std::to_string(view.telemetry.size()) + " telemetry, " +
         std::to_string(view.other_records) + " other\n";
  out += "- torn-tail records dropped at load: " + std::to_string(view.dropped) + "\n";

  // ------------------------------------------------------------- results
  const char* metric_name = simulated_metric_name(view.header.tool);
  if (metric_name != nullptr && !view.units.empty()) {
    out += "\n## Results\n\n";
    if (view.header.tool == "protocol_sweep") append_protocol_table(out, view);
    if (view.header.tool == "fault_sweep") append_fault_table(out, view);
    if (view.header.tool == "campaign") append_campaign_table(out, view);

    out += "\n### Simulated outliers (";
    out += metric_name;
    out += ", MAD threshold 3.5)\n\n";
    const std::vector<OutlierReport> outliers =
        simulated_outliers(view, simulated_metric(view));
    if (outliers.empty()) {
      out += "- none\n";
    } else {
      for (const OutlierReport& o : outliers) {
        out += "- unit " + std::to_string(o.unit) + " (" +
               (o.label.empty() ? std::string{"?"} : o.label) + "): " + metric_name + " " +
               fmt6(o.value) + ", score " + md_score(o.score) + "\n";
      }
    }
  } else if (metric_name == nullptr) {
    out += "\n## Results\n\n- no decoder for tool \"" + view.header.tool +
           "\"; raw record counts only\n";
  }

  // ----------------------------------------------------------- execution
  out += "\n## Execution\n\n";
  if (view.telemetry.empty()) {
    out += "- no telemetry records (run predates telemetry or obs was disabled)\n";
  } else {
    const OutcomeCounts counts = outcome_counts(view);
    const obs::HistogramSample sample = duration_histogram(view);
    out += "- units: " + std::to_string(view.telemetry.size()) + "; attempts: " +
           std::to_string(counts.attempts) + "; retries: " + std::to_string(counts.retries) +
           "; duplicate attempts (speculation waste): " + std::to_string(counts.duplicates) +
           "\n";
    out += "- outcomes:";
    for (std::uint64_t code = 0; code < 6; ++code) {
      out += std::string{" "} + obs::outcome::from_code(code) + " " +
             std::to_string(counts.by_code[code]) + (code + 1 < 6 ? "," : "");
    }
    out += "\n";
    out += "- wall seconds: total " + fmt6(sample.sum) + ", p50 " + fmt6(sample.p50()) +
           ", p95 " + fmt6(sample.p95()) + ", p99 " + fmt6(sample.p99()) + "\n";

    out += "\n### Wall-clock outliers (MAD threshold 3.5)\n\n";
    const std::vector<OutlierReport> outliers = wall_clock_outliers(view);
    if (outliers.empty()) {
      out += "- none\n";
    } else {
      for (const OutlierReport& o : outliers) {
        const Telemetry* t = nullptr;
        for (const Telemetry& candidate : view.telemetry) {
          if (candidate.unit == o.unit) t = &candidate;
        }
        out += "- unit " + std::to_string(o.unit) + " (" +
               (o.label.empty() ? std::string{"?"} : o.label) + "): " + fmt6(o.value) +
               " s, score " + md_score(o.score);
        if (t != nullptr) {
          out += std::string{"; attempts "} + std::to_string(t->attempts) + ", retries " +
                 std::to_string(t->retries) + ", outcome " +
                 obs::outcome::from_code(t->outcome);
        }
        out += "\n";
      }
    }
  }

  // ------------------------------------------------------------------ lp
  if (view.has_lp) {
    out += "\n## LP sizing\n\n";
    const double rate = view.lp_solves == 0
                            ? 0.0
                            : 100.0 * static_cast<double>(view.lp_warm_starts) /
                                  static_cast<double>(view.lp_solves);
    out += "- solves: " + std::to_string(view.lp_solves) + ", warm starts: " +
           std::to_string(view.lp_warm_starts) + " (" + fmt6(rate) + "% warm)\n";
  }
  return out;
}

std::string run_report_json(const std::string& journal_path) {
  const JournalView view = load_view(journal_path);
  std::string out = "{";
  out += "\"tool\":\"" + obs::json_escape(view.header.tool) + "\",";
  out += "\"seed\":" + std::to_string(view.header.seed) + ",";
  out += "\"fingerprint\":\"" + obs::json_escape(view.header.fingerprint) + "\",";
  out += "\"units\":" + std::to_string(view.units.size()) + ",";
  out += "\"dropped_records\":" + std::to_string(view.dropped) + ",";

  out += "\"simulated_outliers\":[";
  const char* metric_name = simulated_metric_name(view.header.tool);
  if (metric_name != nullptr && !view.units.empty()) {
    bool first = true;
    for (const OutlierReport& o : simulated_outliers(view, simulated_metric(view))) {
      if (!first) out += ',';
      first = false;
      out += "{\"unit\":" + std::to_string(o.unit) + ",\"metric\":\"" +
             obs::json_escape(metric_name) + "\",\"value\":" + fmt17(o.value) +
             ",\"score\":" + json_score(o.score) + ",\"cell\":\"" + obs::json_escape(o.label) +
             "\"}";
    }
  }
  out += "],";

  const OutcomeCounts counts = outcome_counts(view);
  const obs::HistogramSample sample = duration_histogram(view);
  out += "\"execution\":{";
  out += "\"units\":" + std::to_string(view.telemetry.size()) + ",";
  out += "\"attempts\":" + std::to_string(counts.attempts) + ",";
  out += "\"retries\":" + std::to_string(counts.retries) + ",";
  out += "\"duplicate_attempts\":" + std::to_string(counts.duplicates) + ",";
  out += "\"outcomes\":{";
  for (std::uint64_t code = 0; code < 6; ++code) {
    out += std::string{"\""} + obs::outcome::from_code(code) +
           "\":" + std::to_string(counts.by_code[code]) + (code + 1 < 6 ? "," : "");
  }
  out += "},";
  out += "\"wall_seconds\":{\"total\":" + fmt17(sample.sum) + ",\"p50\":" + fmt17(sample.p50()) +
         ",\"p95\":" + fmt17(sample.p95()) + ",\"p99\":" + fmt17(sample.p99()) + "},";
  out += "\"outliers\":[";
  {
    bool first = true;
    for (const OutlierReport& o : wall_clock_outliers(view)) {
      if (!first) out += ',';
      first = false;
      out += "{\"unit\":" + std::to_string(o.unit) + ",\"seconds\":" + fmt17(o.value) +
             ",\"score\":" + json_score(o.score) + ",\"cell\":\"" + obs::json_escape(o.label) +
             "\"}";
    }
  }
  out += "]}";

  if (view.has_lp) {
    out += ",\"lp\":{\"solves\":" + std::to_string(view.lp_solves) +
           ",\"warm_starts\":" + std::to_string(view.lp_warm_starts) + "}";
  }
  out += "}";
  return out;
}

}  // namespace hetero::report

#endif  // HETERO_OBS_ENABLED
