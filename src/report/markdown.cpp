#include "hetero/report/markdown.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace hetero::report {

std::string markdown_table(const std::vector<std::string>& headers,
                           const std::vector<std::vector<std::string>>& rows) {
  if (headers.empty()) throw std::invalid_argument("markdown_table: empty header");
  for (const auto& row : rows) {
    if (row.size() != headers.size()) {
      throw std::invalid_argument("markdown_table: ragged row");
    }
  }
  std::ostringstream out;
  const auto emit = [&out](const std::vector<std::string>& cells) {
    out << '|';
    for (const std::string& cell : cells) out << ' ' << cell << " |";
    out << '\n';
  };
  emit(headers);
  out << '|';
  for (std::size_t c = 0; c < headers.size(); ++c) out << "---|";
  out << '\n';
  for (const auto& row : rows) emit(row);
  return out.str();
}

std::string sparkline(const std::vector<double>& values, double y_max) {
  static const char* kLevels[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  if (values.empty()) return "";
  double top = y_max;
  for (double v : values) {
    if (!std::isfinite(v) || v < 0.0) {
      throw std::invalid_argument("sparkline: values must be finite and nonnegative");
    }
    if (y_max <= 0.0) top = std::max(top, v);
  }
  if (top <= 0.0) top = 1.0;
  std::string line;
  for (double v : values) {
    auto level = static_cast<std::size_t>(std::floor(v / top * 8.0));
    if (level > 7) level = 7;
    line += kLevels[level];
  }
  return line;
}

}  // namespace hetero::report
