#include "hetero/report/metrics.h"

#include <cstdio>
#include <ostream>
#include <string>

#include "hetero/report/csv.h"

namespace hetero::report {

namespace {

std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.12g", value);
  return std::string{buffer};
}

}  // namespace

std::size_t write_metrics_csv(std::ostream& out, const obs::MetricsSnapshot& snapshot) {
  CsvWriter writer{out};
  writer.write_row({"metric", "kind", "field", "value"});
  for (const obs::CounterSample& counter : snapshot.counters) {
    writer.write_row({counter.name, "counter", "value", std::to_string(counter.value)});
  }
  for (const obs::GaugeSample& gauge : snapshot.gauges) {
    writer.write_row({gauge.name, "gauge", "value", format_double(gauge.value)});
  }
  for (const obs::HistogramSample& histogram : snapshot.histograms) {
    for (std::size_t i = 0; i < obs::HistogramBuckets::kCount; ++i) {
      if (histogram.buckets[i] == 0) continue;
      const bool top = i + 1 == obs::HistogramBuckets::kCount;
      const std::string field =
          "le_" + (top ? std::string{"inf"}
                       : format_double(obs::HistogramBuckets::upper_bound(i)));
      writer.write_row(
          {histogram.name, "histogram", field, std::to_string(histogram.buckets[i])});
    }
    writer.write_row({histogram.name, "histogram", "sum", format_double(histogram.sum)});
    writer.write_row({histogram.name, "histogram", "count", std::to_string(histogram.count)});
  }
  return writer.rows_written() - 1;
}

}  // namespace hetero::report
