#include "hetero/report/csv.h"

#include <cstdio>
#include <ostream>

namespace hetero::report {

std::string csv_escape(const std::string& field) {
  const bool needs_quoting =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) return field;
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::write_row(std::span<const std::string> fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) *out_ << ',';
    *out_ << csv_escape(fields[i]);
  }
  *out_ << '\n';
  ++rows_;
}

void CsvWriter::write_row(std::initializer_list<std::string> fields) {
  write_row(std::span<const std::string>{fields.begin(), fields.size()});
}

void CsvWriter::write_numeric_row(std::span<const double> values) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) *out_ << ',';
    char buffer[40];
    std::snprintf(buffer, sizeof buffer, "%.12g", values[i]);
    *out_ << buffer;
  }
  *out_ << '\n';
  ++rows_;
}

}  // namespace hetero::report
