#include "hetero/report/barchart.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace hetero::report {
namespace {

// Builds the text block (vector of equal-width lines) for one chart.
std::vector<std::string> chart_lines(const std::vector<double>& values,
                                     const BarChartOptions& options, double y_max) {
  const std::size_t chart_width =
      values.size() * options.bar_width + (values.size() + 1) * options.gap;
  std::vector<std::string> lines;
  lines.reserve(options.height + 1);
  // Bar heights in rows, rounding half-up; nonzero values always show >= 1 row.
  std::vector<std::size_t> bar_rows(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (!(values[i] >= 0.0)) throw std::invalid_argument("render_bar_chart: negative value");
    const double frac = y_max > 0.0 ? values[i] / y_max : 0.0;
    auto rows = static_cast<std::size_t>(std::lround(frac * static_cast<double>(options.height)));
    if (values[i] > 0.0 && rows == 0) rows = 1;
    bar_rows[i] = std::min(rows, options.height);
  }
  for (std::size_t row = options.height; row-- > 0;) {
    std::string line(chart_width, ' ');
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (bar_rows[i] > row) {
        const std::size_t start = options.gap + i * (options.bar_width + options.gap);
        for (std::size_t c = 0; c < options.bar_width; ++c) line[start + c] = options.fill;
      }
    }
    lines.push_back(std::move(line));
  }
  lines.push_back(std::string(chart_width, '-'));  // baseline
  return lines;
}

}  // namespace

std::string render_bar_chart(const std::vector<double>& values,
                             const BarChartOptions& options) {
  if (values.empty()) throw std::invalid_argument("render_bar_chart: no values");
  double y_max = options.y_max;
  if (y_max <= 0.0) y_max = *std::max_element(values.begin(), values.end());
  if (y_max <= 0.0) y_max = 1.0;
  std::ostringstream out;
  for (const std::string& line : chart_lines(values, options, y_max)) out << line << '\n';
  return out.str();
}

std::string render_snapshot_grid(const std::vector<Snapshot>& snapshots, std::size_t per_row,
                                 const BarChartOptions& options) {
  if (snapshots.empty()) throw std::invalid_argument("render_snapshot_grid: no snapshots");
  if (per_row == 0) throw std::invalid_argument("render_snapshot_grid: per_row must be >= 1");
  double y_max = options.y_max;
  if (y_max <= 0.0) {
    for (const Snapshot& s : snapshots) {
      for (double v : s.values) y_max = std::max(y_max, v);
    }
    if (y_max <= 0.0) y_max = 1.0;
  }

  std::ostringstream out;
  for (std::size_t first = 0; first < snapshots.size(); first += per_row) {
    const std::size_t last = std::min(first + per_row, snapshots.size());
    // Render each chart in the band, then zip the lines side by side.
    std::vector<std::vector<std::string>> blocks;
    std::vector<std::string> labels;
    for (std::size_t i = first; i < last; ++i) {
      blocks.push_back(chart_lines(snapshots[i].values, options, y_max));
      labels.push_back(snapshots[i].label);
    }
    const std::size_t rows = blocks.front().size();
    for (std::size_t row = 0; row < rows; ++row) {
      for (std::size_t b = 0; b < blocks.size(); ++b) {
        if (b != 0) out << "   ";
        out << blocks[b][row];
      }
      out << '\n';
    }
    // Centered labels under each chart.
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      if (b != 0) out << "   ";
      const std::size_t width = blocks[b].front().size();
      const std::string& label = labels[b];
      const std::size_t pad = label.size() < width ? (width - label.size()) / 2 : 0;
      std::string cell(width, ' ');
      for (std::size_t c = 0; c < label.size() && pad + c < width; ++c) {
        cell[pad + c] = label[c];
      }
      out << cell;
    }
    out << "\n\n";
  }
  return out.str();
}

}  // namespace hetero::report
