#include "hetero/report/gantt.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>

namespace hetero::report {
namespace {

char fill_for(sim::Activity activity) {
  switch (activity) {
    case sim::Activity::kServerPackage: return 'P';
    case sim::Activity::kTransitWork: return '>';
    case sim::Activity::kWorkerUnpack: return 'u';
    case sim::Activity::kWorkerCompute: return 'C';
    case sim::Activity::kWorkerPackage: return 'p';
    case sim::Activity::kTransitResult: return '<';
    case sim::Activity::kServerUnpack: return 'U';
    case sim::Activity::kIdleWait: return '.';
    case sim::Activity::kCrash: return 'X';
    case sim::Activity::kStall: return '~';
    case sim::Activity::kRetryTransit: return 'R';
    case sim::Activity::kCancelled: return 'x';
  }
  return '?';
}

// Fault marks must stay visible over the phase segments they interrupt
// (a crash instant is zero-length and recorded before the phases that were
// in flight complete), so they are painted in a second pass.
bool fault_mark(sim::Activity activity) {
  return activity == sim::Activity::kCrash || activity == sim::Activity::kStall ||
         activity == sim::Activity::kCancelled;
}

}  // namespace

std::string render_gantt(const sim::Trace& trace, const GanttOptions& options) {
  const double t_end = options.t_end > 0.0 ? options.t_end : trace.horizon();
  const double scale =
      t_end > 0.0 ? static_cast<double>(options.width) / t_end : 1.0;

  // Actors present, server first.
  std::set<std::size_t> worker_ids;
  bool has_server = false;
  for (const sim::TraceSegment& s : trace.segments()) {
    if (s.actor == sim::kServerActor) {
      has_server = true;
    } else {
      worker_ids.insert(s.actor);
    }
  }

  std::ostringstream out;
  const auto draw_actor = [&](std::size_t actor, const std::string& label) {
    std::string lane(options.width, ' ');
    const auto paint = [&](const sim::TraceSegment& s) {
      auto col0 = static_cast<std::size_t>(std::floor(s.start * scale));
      auto col1 = static_cast<std::size_t>(std::ceil(s.end * scale));
      col0 = std::min(col0, options.width - 1);
      col1 = std::min(std::max(col1, col0 + 1), options.width);
      for (std::size_t c = col0; c < col1; ++c) lane[c] = fill_for(s.activity);
    };
    const auto segments = trace.segments_for_actor(actor);
    for (const sim::TraceSegment& s : segments) {
      if (!fault_mark(s.activity)) paint(s);
    }
    for (const sim::TraceSegment& s : segments) {
      if (fault_mark(s.activity)) paint(s);
    }
    out << label;
    out << " |" << lane << "|\n";
  };

  // Fixed-width labels.
  std::size_t label_width = std::string{"server"}.size();
  for (std::size_t id : worker_ids) {
    label_width = std::max(label_width, 1 + std::to_string(id + 1).size());
  }
  const auto pad = [label_width](std::string s) {
    s.resize(label_width, ' ');
    return s;
  };

  if (has_server) draw_actor(sim::kServerActor, pad("server"));
  for (std::size_t id : worker_ids) draw_actor(id, pad("C" + std::to_string(id + 1)));

  if (options.show_legend) {
    out << "\nlegend: P=server-package  >=work-transit  u=unpack  C=compute  "
           "p=package-results  <=result-transit  U=server-unpack\n"
           "        X=crash  ~=stall  R=retry-transit  x=cancelled-copy\n";
  }
  return out.str();
}

}  // namespace hetero::report
