#include "hetero/report/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace hetero::report {

std::string format_fixed(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", precision, value);
  return buffer;
}

std::string format_scientific(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*e", precision, value);
  return buffer;
}

TextTable::TextTable(std::vector<std::string> headers) : headers_{std::move(headers)} {
  if (headers_.empty()) throw std::invalid_argument("TextTable: need at least one column");
  alignment_.assign(headers_.size(), Align::kRight);
  alignment_[0] = Align::kLeft;
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable::add_row: cell count mismatch");
  }
  rows_.push_back(std::move(cells));
}

void TextTable::set_alignment(std::size_t column, Align align) {
  alignment_.at(column) = align;
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }

  std::ostringstream out;
  const auto rule = [&] {
    out << '+';
    for (std::size_t w : width) out << std::string(w + 2, '-') << '+';
    out << '\n';
  };
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::size_t pad = width[c] - cells[c].size();
      out << ' ';
      if (alignment_[c] == Align::kRight) out << std::string(pad, ' ');
      out << cells[c];
      if (alignment_[c] == Align::kLeft) out << std::string(pad, ' ');
      out << " |";
    }
    out << '\n';
  };

  if (!title_.empty()) out << title_ << '\n';
  rule();
  emit_row(headers_);
  rule();
  for (const auto& row : rows_) emit_row(row);
  rule();
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& table) {
  return os << table.to_string();
}

}  // namespace hetero::report
