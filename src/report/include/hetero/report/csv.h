#pragma once

// RFC-4180-style CSV emission, so experiment output can feed external
// plotting tools directly.

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace hetero::report {

/// Quotes a field when it contains commas, quotes, or newlines.
[[nodiscard]] std::string csv_escape(const std::string& field);

/// Streams rows of string fields as CSV lines.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_{&out} {}

  void write_row(std::span<const std::string> fields);
  void write_row(std::initializer_list<std::string> fields);
  /// Convenience for numeric rows (formatted with %.12g).
  void write_numeric_row(std::span<const double> values);

  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

 private:
  std::ostream* out_;
  std::size_t rows_ = 0;
};

}  // namespace hetero::report
