#pragma once

// CSV rendering of an obs::MetricsSnapshot via the existing report/ CSV
// layer — the third exporter next to Prometheus text and Chrome traces,
// for feeding spreadsheet/pandas-style analysis directly.
//
// Layout is long-form ("tidy") so one schema covers all metric kinds:
//   metric,kind,field,value
//   sim.events,counter,value,12345
//   parallel.task_run_us,histogram,le_0.001,3
//   parallel.task_run_us,histogram,sum,1.5
//   parallel.task_run_us,histogram,count,7
// Histogram bucket fields are `le_<upper-bound>` (non-cumulative counts;
// only occupied buckets are emitted), plus `sum` and `count` rows.

#include <iosfwd>

#include "hetero/obs/metrics.h"

namespace hetero::report {

/// Writes the snapshot, header row included.  Returns rows written
/// (excluding the header).
std::size_t write_metrics_csv(std::ostream& out, const obs::MetricsSnapshot& snapshot);

}  // namespace hetero::report
