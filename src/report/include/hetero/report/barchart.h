#pragma once

// ASCII bar charts.
//
// Figures 3 and 4 of the paper are sequences of 4-bar snapshots showing a
// cluster's profile after each upgrade round; render_snapshot_grid lays a
// sequence of small vertical bar charts out in rows, exactly like the
// figures.

#include <cstddef>
#include <string>
#include <vector>

namespace hetero::report {

struct BarChartOptions {
  std::size_t height = 8;      ///< rows of the plot area
  std::size_t bar_width = 2;   ///< columns per bar
  std::size_t gap = 1;         ///< columns between bars
  double y_max = 0.0;          ///< 0 = auto (max of the data)
  char fill = '#';
};

/// Renders one vertical bar chart of nonnegative values.
[[nodiscard]] std::string render_bar_chart(const std::vector<double>& values,
                                           const BarChartOptions& options = BarChartOptions{});

/// One labelled snapshot in a grid (e.g. "round 3").
struct Snapshot {
  std::string label;
  std::vector<double> values;
};

/// Renders snapshots as a grid of small charts, `per_row` charts per row,
/// all sharing one y-scale (the global maximum) so heights are comparable
/// across rounds — the Figure 3/4 layout.
[[nodiscard]] std::string render_snapshot_grid(const std::vector<Snapshot>& snapshots,
                                               std::size_t per_row,
                                               const BarChartOptions& options = BarChartOptions{});

}  // namespace hetero::report
