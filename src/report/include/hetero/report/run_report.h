#pragma once

// Run reports: one deterministic document that explains a journaled run.
//
// A journal already holds everything needed to answer "why was this run
// slow / wasteful / lucky": the decoded experiment cells (simulated
// results), the runner's per-unit telemetry sidecar records ("!obs:" keys —
// wall seconds, attempts, retries, outcome per winning attempt), and the LP
// sizing counters.  run_report_markdown/json join them into one report:
//
//   * identity — tool, seed, fingerprint, record counts;
//   * results  — the tool-specific decoded table (protocol_sweep /
//     fault_sweep / campaign rounds), plus MAD outlier detection over the
//     simulated figures with per-cell attribution (which grid coordinates —
//     crash rate, straggler factor — the outlying cell ran under);
//   * execution — wall-clock duration percentiles (p50/p95/p99 from the
//     power-of-two histogram ladder), outcome accounting (ok / retry /
//     speculative-win / ...), duplicate-attempt and retry waste, wall-clock
//     MAD outliers joined back to their grid cells;
//   * lp — warm-start hit rate of the sweep's sizing LPs, when recorded.
//
// Reports are pure functions of the journal bytes: equal journals produce
// byte-identical reports (doubles rendered with fixed printf discipline,
// records iterated in numeric unit order).  In a -DHETERO_OBS_ENABLED=OFF
// build both generators collapse to inline stubs that say observability is
// disabled, and the implementation TU compiles to nothing.

#include <string>

#include "hetero/obs/metrics.h"

namespace hetero::report {

#if HETERO_OBS_ENABLED

/// Markdown report for the journal at `journal_path`.  Throws
/// core::FatalError when the journal cannot be opened or a record is
/// malformed for its advertised tool.
[[nodiscard]] std::string run_report_markdown(const std::string& journal_path);

/// The same analysis as JSON (stable key order, %.17g doubles; non-finite
/// scores rendered as JSON strings).
[[nodiscard]] std::string run_report_json(const std::string& journal_path);

#else  // !HETERO_OBS_ENABLED

[[nodiscard]] inline std::string run_report_markdown(const std::string&) {
  return "run report unavailable: observability disabled (HETERO_OBS_ENABLED=OFF)\n";
}

[[nodiscard]] inline std::string run_report_json(const std::string&) {
  return "{\"error\":\"observability disabled\"}\n";
}

#endif  // HETERO_OBS_ENABLED

}  // namespace hetero::report
