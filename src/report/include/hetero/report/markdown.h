#pragma once

// Markdown emission and unicode sparklines — compact result summaries that
// paste straight into docs like EXPERIMENTS.md.

#include <string>
#include <vector>

namespace hetero::report {

/// GitHub-flavored markdown table.  Throws std::invalid_argument on an empty
/// header or ragged rows.
[[nodiscard]] std::string markdown_table(const std::vector<std::string>& headers,
                                         const std::vector<std::vector<std::string>>& rows);

/// Eight-level block-character sparkline of nonnegative values, scaled to
/// the data maximum (or to `y_max` when positive): "▁▂▄█…".  Non-finite or
/// negative values throw std::invalid_argument.
[[nodiscard]] std::string sparkline(const std::vector<double>& values, double y_max = 0.0);

}  // namespace hetero::report
