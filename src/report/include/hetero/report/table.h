#pragma once

// Column-aligned text tables — every numbered table in the paper is
// regenerated through this formatter.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace hetero::report {

enum class Align { kLeft, kRight };

/// Fixed-precision double formatting ("%.*f") without iostream state.
[[nodiscard]] std::string format_fixed(double value, int precision);
/// Scientific formatting ("%.*e").
[[nodiscard]] std::string format_scientific(double value, int precision);

/// A simple text table: header row + data rows, box-drawn with ASCII.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Throws std::invalid_argument when the cell count mismatches the header.
  void add_row(std::vector<std::string> cells);
  void set_alignment(std::size_t column, Align align);
  void set_title(std::string title) { title_ = std::move(title); }

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
  [[nodiscard]] std::string to_string() const;
  friend std::ostream& operator<<(std::ostream& os, const TextTable& table);

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<Align> alignment_;
};

}  // namespace hetero::report
