#pragma once

// ASCII action/time (Gantt) diagrams from simulation traces — the Figure 1
// and Figure 2 views of a worksharing episode.

#include <string>

#include "hetero/sim/trace.h"

namespace hetero::sim {
class Trace;
}

namespace hetero::report {

struct GanttOptions {
  std::size_t width = 100;     ///< columns of the plot area
  bool show_legend = true;
  double t_end = 0.0;          ///< 0 = auto (trace horizon)
};

/// Renders the trace as one row per actor (server first, then workers in
/// index order), each activity drawn with a distinct fill character:
///   P server-package, > work transit, u worker-unpack, C compute,
///   p worker-package, < result transit, U server-unpack.
/// Segments too short for one column are drawn as a single column so that
/// every phase stays visible (the paper's figures are "not to scale" too).
[[nodiscard]] std::string render_gantt(const sim::Trace& trace,
                                       const GanttOptions& options = GanttOptions{});

}  // namespace hetero::report
