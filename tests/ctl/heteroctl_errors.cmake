# Argument-error contract of the heteroctl CLI: every subcommand invoked with
# bad or missing arguments must exit non-zero and print the usage text.
#
# Run as:  cmake -DHETEROCTL=<path-to-heteroctl> -P heteroctl_errors.cmake
# (wired into ctest by tests/CMakeLists.txt; SEND_ERROR makes the script exit
# non-zero on the first violated expectation while still reporting the rest).

if(NOT DEFINED HETEROCTL)
  message(FATAL_ERROR "pass -DHETEROCTL=<path to heteroctl>")
endif()

# Expect non-zero exit AND the usage text on stdout+stderr.
function(expect_usage_error)
  execute_process(COMMAND "${HETEROCTL}" ${ARGN}
    RESULT_VARIABLE code
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  string(JOIN " " argv ${ARGN})
  if(code EQUAL 0)
    message(SEND_ERROR "heteroctl ${argv}: expected a non-zero exit, got 0")
  endif()
  if(NOT "${out}${err}" MATCHES "usage:")
    message(SEND_ERROR "heteroctl ${argv}: expected the usage text, got:\n${out}${err}")
  endif()
endfunction()

# Expect non-zero exit and an error report (runtime failures skip the usage
# reminder by design — the arguments were well-formed).
function(expect_runtime_error)
  execute_process(COMMAND "${HETEROCTL}" ${ARGN}
    RESULT_VARIABLE code
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  string(JOIN " " argv ${ARGN})
  if(code EQUAL 0)
    message(SEND_ERROR "heteroctl ${argv}: expected a non-zero exit, got 0")
  endif()
  if(NOT "${err}" MATCHES "error:")
    message(SEND_ERROR "heteroctl ${argv}: expected an error report, got:\n${out}${err}")
  endif()
endfunction()

# No command at all.
expect_usage_error()

# Unknown command.
expect_usage_error(frobnicate "<1, 1/2>")

# Missing required arguments, per subcommand.
expect_usage_error(power)
expect_usage_error(plan "<1, 1/2>")
expect_usage_error(rent "<1, 1/2>")
expect_usage_error(compare "<1, 1/2>")
expect_usage_error(upgrade "<1, 1/2>")
expect_usage_error(obs "<1, 1/2>")
expect_usage_error(faults "<1, 1/2>")
expect_usage_error(protocols "<1, 1/2>")
expect_usage_error(resume)
expect_usage_error(report)
expect_usage_error(serve)
expect_usage_error(query)
expect_usage_error(query 127.0.0.1:8080)

# Malformed values: unparsable profiles and numbers.
expect_usage_error(power "<1, oops>")
expect_usage_error(power "")
expect_usage_error(plan "<1, 1/2>" notanumber)
expect_usage_error(rent "<1, 1/2>" notanumber)
expect_usage_error(compare "<1, 1/2>" "<bogus")
expect_usage_error(upgrade "<1, 1/2>" notanumber)
expect_usage_error(obs "<1, 1/2>" notanumber)
expect_usage_error(faults "<1, 1/2>" notanumber)
expect_usage_error(faults "<1, 1/2>" 100 notaseed)
expect_usage_error(protocols "<1, oops>" 100)
expect_usage_error(protocols "<1, 1/2>" notanumber)
expect_usage_error(protocols "<1, 1/2>" 100 notaseed)

# Service subcommands: malformed ports, endpoints, and targets.
expect_usage_error(serve notaport)
expect_usage_error(serve 99999)
expect_usage_error(serve 0 -3)
expect_usage_error(query notahostport /healthz)
expect_usage_error(query 127.0.0.1:notaport /healthz)
expect_usage_error(query 127.0.0.1:99999 /healthz)
expect_usage_error(query 127.0.0.1:8080 healthz)

# Well-formed query against a port nothing listens on: a runtime (transport)
# failure, reported without the usage reminder.
expect_runtime_error(query 127.0.0.1:1 /healthz)

# Well-formed arguments that fail at runtime: a lifespan of zero makes the
# protocol grid degenerate (caught by the sweep's validation, not the CLI).
expect_runtime_error(protocols "<1, 1/2>" 0)

# A profile with a zero denominator is caught by the parser, not the math.
expect_usage_error(power "<1, 1/0>")

# Global flags with missing values.
expect_usage_error(--journal)

# Runtime failures still exit non-zero (without the usage reminder): resuming
# from or reporting on a file that is not a journal.
set(bogus_journal "${CMAKE_CURRENT_LIST_DIR}/heteroctl_errors.cmake")
expect_runtime_error(resume "${bogus_journal}")
expect_runtime_error(resume "/nonexistent/path/to.journal")
expect_runtime_error(report "${bogus_journal}")
expect_runtime_error(report "/nonexistent/path/to.journal")
