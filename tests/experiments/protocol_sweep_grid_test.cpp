// The paper-scale protocol-vs-fault grid (the heteroctl `protocols`
// defaults): slow by design, so its ctest entry carries LABELS slow and its
// own TIMEOUT.  Locks the headline acceptance claim of the protocol family:
// at least one *faulty* regime exists where a coded protocol reaches the
// work target strictly sooner than reactive replanning.

#include <gtest/gtest.h>

#include <vector>

#include "hetero/experiments/protocol_sweep.h"

namespace hetero::experiments {
namespace {

const core::Environment kEnv = core::Environment::paper_default();
const std::vector<double> kSpeeds{1.0, 0.5, 0.25, 0.125, 0.0625, 0.03125};
constexpr double kLifespan = 3600.0;

ProtocolSweepConfig paper_grid() {
  ProtocolSweepConfig config;
  config.lifespan = kLifespan;
  config.crash_rates = {0.0, 0.5 / kLifespan, 1.5 / kLifespan};
  config.straggler_factors = {1.0, 2.0, 4.0};
  config.trials = 3;
  config.seed = 7;
  return config;
}

TEST(ProtocolSweepGrid, SomeFaultRegimeFavorsCodedOverReactive) {
  const auto result = run_protocol_sweep(kSpeeds, kEnv, paper_grid());

  std::size_t coded_wins = 0;
  for (const ProtocolSweepCell& reactive : result.cells) {
    if (reactive.protocol != protocol::ProtocolKind::kReactiveFifo) continue;
    if (reactive.crash_rate == 0.0 && reactive.straggler_factor == 1.0) continue;  // calm
    for (const ProtocolSweepCell& coded : result.cells) {
      if (coded.protocol != protocol::ProtocolKind::kReplicated &&
          coded.protocol != protocol::ProtocolKind::kMds) {
        continue;
      }
      if (coded.crash_rate != reactive.crash_rate ||
          coded.straggler_factor != reactive.straggler_factor) {
        continue;
      }
      if (coded.mean_makespan < reactive.mean_makespan) ++coded_wins;
    }
  }
  EXPECT_GE(coded_wins, 1u)
      << "no faulty regime where redundancy beat replanning on makespan:\n"
      << format_protocol_sweep(result);

  // And redundancy is visibly paid for: the replicated rows issue more than
  // the target and cancel duplicates somewhere on the grid.
  double cancelled = 0.0;
  for (const ProtocolSweepCell& cell : result.cells) {
    if (cell.protocol == protocol::ProtocolKind::kReplicated) {
      EXPECT_GT(cell.mean_redundant_issued, 0.0);
      cancelled += cell.mean_redundant_cancelled;
    }
  }
  EXPECT_GT(cancelled, 0.0);
}

}  // namespace
}  // namespace hetero::experiments
