#include "hetero/experiments/fault_sweep.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "hetero/parallel/batch.h"
#include "hetero/parallel/thread_pool.h"
#include "hetero/protocol/fifo.h"

namespace hetero::experiments {
namespace {

const core::Environment kEnv = core::Environment::paper_default();
const std::vector<double> kSpeeds{1.0, 0.5, 0.25, 0.125};

FaultSweepConfig small_grid() {
  FaultSweepConfig config;
  config.lifespan = 100.0;
  config.crash_rates = {0.0, 0.01};
  config.straggler_factors = {1.0, 2.0};
  config.trials = 2;
  config.seed = 7;
  return config;
}

TEST(FaultSweep, GridShapeIsRowMajorCrashByFactor) {
  const auto result = run_fault_sweep(kSpeeds, kEnv, small_grid());
  ASSERT_EQ(result.cells.size(), 4u);
  EXPECT_DOUBLE_EQ(result.cells[0].crash_rate, 0.0);
  EXPECT_DOUBLE_EQ(result.cells[0].straggler_factor, 1.0);
  EXPECT_DOUBLE_EQ(result.cells[1].crash_rate, 0.0);
  EXPECT_DOUBLE_EQ(result.cells[1].straggler_factor, 2.0);
  EXPECT_DOUBLE_EQ(result.cells[2].crash_rate, 0.01);
  EXPECT_DOUBLE_EQ(result.cells[2].straggler_factor, 1.0);
  EXPECT_DOUBLE_EQ(result.cells[3].crash_rate, 0.01);
  EXPECT_DOUBLE_EQ(result.cells[3].straggler_factor, 2.0);
}

TEST(FaultSweep, FaultFreeCellShowsNoDegradation) {
  const auto result = run_fault_sweep(kSpeeds, kEnv, small_grid());
  const FaultSweepCell& calm = result.cells[0];  // rate 0, factor 1
  const double fault_free = protocol::fifo_total_work(kSpeeds, kEnv, 100.0);
  EXPECT_NEAR(calm.fault_free_work, fault_free, 1e-6);
  EXPECT_NEAR(calm.oblivious_work, fault_free, 1e-3);
  EXPECT_NEAR(calm.reactive_work, fault_free, 1e-3);
  EXPECT_NEAR(calm.oblivious_degradation, 0.0, 1e-6);
  EXPECT_NEAR(calm.reactive_degradation, 0.0, 1e-6);
  EXPECT_DOUBLE_EQ(calm.mean_crashes, 0.0);
  EXPECT_DOUBLE_EQ(calm.mean_replans, 0.0);
}

TEST(FaultSweep, ExecutorOverloadBitIdenticalToSerial) {
  // Cells fan out through a pool-backed BatchExecutor; seeds depend only on
  // (config.seed, cell index), so scheduling cannot change the numbers.
  const auto serial = run_fault_sweep(kSpeeds, kEnv, small_grid());
  parallel::ThreadPool pool{3};
  const auto batched =
      run_fault_sweep(kSpeeds, kEnv, small_grid(), parallel::pool_executor(pool));
  ASSERT_EQ(serial.cells.size(), batched.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    EXPECT_EQ(serial.cells[i].crash_rate, batched.cells[i].crash_rate);
    EXPECT_EQ(serial.cells[i].straggler_factor, batched.cells[i].straggler_factor);
    EXPECT_EQ(serial.cells[i].oblivious_work, batched.cells[i].oblivious_work);  // bitwise
    EXPECT_EQ(serial.cells[i].reactive_work, batched.cells[i].reactive_work);
    EXPECT_EQ(serial.cells[i].mean_crashes, batched.cells[i].mean_crashes);
    EXPECT_EQ(serial.cells[i].mean_replans, batched.cells[i].mean_replans);
  }
}

TEST(FaultSweep, SweepIsDeterministicInSeed) {
  const auto a = run_fault_sweep(kSpeeds, kEnv, small_grid());
  const auto b = run_fault_sweep(kSpeeds, kEnv, small_grid());
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(a.cells[i].oblivious_work, b.cells[i].oblivious_work);  // bitwise
    EXPECT_EQ(a.cells[i].reactive_work, b.cells[i].reactive_work);
    EXPECT_EQ(a.cells[i].mean_crashes, b.cells[i].mean_crashes);
    EXPECT_EQ(a.cells[i].mean_replans, b.cells[i].mean_replans);
  }
}

TEST(FaultSweep, DegradationsAreConsistentWithWork) {
  const auto result = run_fault_sweep(kSpeeds, kEnv, small_grid());
  for (const FaultSweepCell& cell : result.cells) {
    EXPECT_GT(cell.fault_free_work, 0.0);
    EXPECT_NEAR(cell.oblivious_degradation, 1.0 - cell.oblivious_work / cell.fault_free_work,
                1e-12);
    EXPECT_NEAR(cell.reactive_degradation, 1.0 - cell.reactive_work / cell.fault_free_work,
                1e-12);
    EXPECT_LE(cell.oblivious_work, cell.fault_free_work + 1e-6);
    EXPECT_LE(cell.reactive_work, cell.fault_free_work + 1e-6);
  }
}

TEST(FaultSweep, RejectsDegenerateConfigs) {
  FaultSweepConfig config = small_grid();
  config.lifespan = 0.0;
  EXPECT_THROW((void)run_fault_sweep(kSpeeds, kEnv, config), std::invalid_argument);
  config = small_grid();
  config.crash_rates.clear();
  EXPECT_THROW((void)run_fault_sweep(kSpeeds, kEnv, config), std::invalid_argument);
  config = small_grid();
  config.trials = 0;
  EXPECT_THROW((void)run_fault_sweep(kSpeeds, kEnv, config), std::invalid_argument);
  EXPECT_THROW((void)run_fault_sweep(std::vector<double>{}, kEnv, small_grid()),
               std::invalid_argument);
}

TEST(FaultSweep, FormatterListsEveryCell) {
  const auto result = run_fault_sweep(kSpeeds, kEnv, small_grid());
  const std::string table = format_fault_sweep(result);
  EXPECT_NE(table.find("crash"), std::string::npos);
  EXPECT_NE(table.find("oblivious"), std::string::npos);
  EXPECT_NE(table.find("reactive"), std::string::npos);
  std::size_t lines = 0;
  for (char c : table) lines += c == '\n';
  EXPECT_GE(lines, result.cells.size());  // at least one row per cell
}

}  // namespace
}  // namespace hetero::experiments
