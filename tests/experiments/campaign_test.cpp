#include "hetero/experiments/campaign.h"

#include <gtest/gtest.h>

#include <cmath>

#include "hetero/core/hetero.h"

namespace hetero::experiments {
namespace {

const core::Environment kEnv = core::Environment::paper_default();
const std::vector<double> kFleet{1.0, 0.5, 0.25, 0.125};

TEST(Campaign, NoChurnMatchesTheorem2AcrossRoundSplits) {
  // FIFO work production is linear in L, so without churn the campaign's
  // total is independent of the round split and equals the one-episode ideal.
  for (double round_length : {1000.0, 250.0, 100.0}) {
    const CampaignConfig config{.total_time = 1000.0, .round_length = round_length};
    const auto result = run_campaign(kFleet, kEnv, config, {});
    EXPECT_EQ(result.rounds, static_cast<std::size_t>(1000.0 / round_length));
    EXPECT_NEAR(result.completed_work, result.ideal_work, 1e-6 * result.ideal_work)
        << round_length;
    EXPECT_EQ(result.machines_lost, 0u);
  }
}

TEST(Campaign, CrashRemovesTheMachineFromLaterRounds) {
  CampaignConfig config{.total_time = 400.0, .round_length = 100.0};
  // Machine 3 (the fastest) dies early in round 2.
  const std::vector<CampaignFailure> failures{{3, 110.0}};
  const auto result = run_campaign(kFleet, kEnv, config, failures);
  EXPECT_EQ(result.machines_lost, 1u);
  ASSERT_EQ(result.work_by_round.size(), 4u);
  // Round 1 is unaffected; round 2 loses machine 3's load mid-flight; rounds
  // 3-4 re-plan over the 3 survivors (equal to each other, less than round 1).
  EXPECT_GT(result.work_by_round[0], result.work_by_round[1]);
  EXPECT_NEAR(result.work_by_round[2], result.work_by_round[3],
              1e-6 * result.work_by_round[2]);
  EXPECT_LT(result.work_by_round[2], result.work_by_round[0]);
  // Round 3's fleet is {1, 0.5, 0.25}: work matches Theorem 2 for that fleet.
  const double survivors = core::work_production(
      100.0, core::Profile{{1.0, 0.5, 0.25}}, kEnv);
  EXPECT_NEAR(result.work_by_round[2], survivors, 1e-6 * survivors);
}

TEST(Campaign, ShorterRoundsLoseLessToAMidRoundCrash) {
  const std::vector<CampaignFailure> failures{{3, 450.0}};
  const CampaignConfig long_rounds{.total_time = 1000.0, .round_length = 500.0};
  const CampaignConfig short_rounds{.total_time = 1000.0, .round_length = 100.0};
  const auto coarse = run_campaign(kFleet, kEnv, long_rounds, failures);
  const auto fine = run_campaign(kFleet, kEnv, short_rounds, failures);
  // Same crash, same horizon: the fine-grained campaign completes more
  // because only a 100-unit round's allocation is in flight at crash time.
  EXPECT_GT(fine.completed_work, coarse.completed_work);
}

TEST(Campaign, AllMachinesCrashingEndsTheCampaign) {
  CampaignConfig config{.total_time = 300.0, .round_length = 100.0};
  std::vector<CampaignFailure> failures;
  for (std::size_t m = 0; m < kFleet.size(); ++m) failures.push_back({m, 50.0});
  const auto result = run_campaign(kFleet, kEnv, config, failures);
  EXPECT_EQ(result.machines_lost, kFleet.size());
  EXPECT_EQ(result.rounds, 1u);  // round 2's fleet is empty
  EXPECT_LT(result.completed_work, result.ideal_work / 3.0);
}

TEST(Campaign, MessageLatencyForwardsToTheSimulator) {
  CampaignConfig with_latency{.total_time = 200.0, .round_length = 100.0,
                              .message_latency = 0.5};
  CampaignConfig without{.total_time = 200.0, .round_length = 100.0};
  const auto slow = run_campaign(kFleet, kEnv, with_latency, {});
  const auto fast = run_campaign(kFleet, kEnv, without, {});
  EXPECT_LT(slow.completed_work, fast.completed_work);
}

TEST(Campaign, Validation) {
  CampaignConfig config{.total_time = 100.0, .round_length = 100.0};
  EXPECT_THROW((void)run_campaign({}, kEnv, config, {}), std::invalid_argument);
  EXPECT_THROW((void)run_campaign(kFleet, kEnv,
                                  CampaignConfig{.total_time = 10.0, .round_length = 20.0}, {}),
               std::invalid_argument);
  EXPECT_THROW((void)run_campaign(kFleet, kEnv, config, {{99, 1.0}}), std::invalid_argument);
}

TEST(Campaign, FaultModelCrashesDriveMachinesLost) {
  // machines_lost is wired to the sampled fault plan's crashes, not to the
  // explicit failure list alone.
  CampaignConfig config{.total_time = 400.0, .round_length = 100.0};
  config.fault_model.crash_rate = 0.004;  // expected ~0.8 crashes over 400
  config.fault_seed = 11;
  const auto result = run_campaign(kFleet, kEnv, config, {});
  const auto plan = sim::FaultPlan::sample(config.fault_model, kFleet.size(), 400.0, 11);
  EXPECT_EQ(result.machines_lost, plan.crashes.size());
  const auto calm = run_campaign(kFleet, kEnv,
                                 CampaignConfig{.total_time = 400.0, .round_length = 100.0}, {});
  if (!plan.crashes.empty()) {
    EXPECT_LT(result.completed_work, calm.completed_work);
  }
}

TEST(Campaign, FaultModelStragglersDegradeWithoutAttrition) {
  CampaignConfig config{.total_time = 200.0, .round_length = 100.0};
  config.fault_model.straggler_probability = 1.0;  // every machine straggles
  config.fault_model.straggler_factor = 4.0;
  config.fault_seed = 3;
  const auto result = run_campaign(kFleet, kEnv, config, {});
  const auto calm = run_campaign(kFleet, kEnv,
                                 CampaignConfig{.total_time = 200.0, .round_length = 100.0}, {});
  EXPECT_EQ(result.machines_lost, 0u);  // slow, not dead
  EXPECT_LT(result.completed_work, calm.completed_work);
  EXPECT_GT(result.faults.slowdown_onsets, 0u);
}

TEST(Campaign, FaultStatsAccumulateAcrossRoundsInAbsoluteTime) {
  CampaignConfig config{.total_time = 300.0, .round_length = 100.0};
  const std::vector<CampaignFailure> failures{{3, 150.0}};
  const auto result = run_campaign(kFleet, kEnv, config, failures);
  EXPECT_EQ(result.machines_lost, 1u);
  EXPECT_GE(result.faults.crashes, 1u);
}

TEST(ExponentialFailures, RateControlsAttritionAndSeedsReproduce) {
  const auto none = exponential_failures(100, 0.0, 1000.0, 1);
  EXPECT_TRUE(none.empty());
  const auto light = exponential_failures(1000, 1e-4, 1000.0, 2);
  const auto heavy = exponential_failures(1000, 1e-2, 1000.0, 2);
  EXPECT_LT(light.size(), heavy.size());
  // Expected attrition: 1 - exp(-rate * horizon); heavy ~ 1000 machines.
  EXPECT_NEAR(static_cast<double>(light.size()), 1000 * (1.0 - std::exp(-0.1)), 40.0);
  const auto replay = exponential_failures(1000, 1e-4, 1000.0, 2);
  ASSERT_EQ(replay.size(), light.size());
  for (std::size_t i = 0; i < replay.size(); ++i) {
    EXPECT_EQ(replay[i].machine, light[i].machine);
    EXPECT_EQ(replay[i].time, light[i].time);
  }
  EXPECT_THROW((void)exponential_failures(10, -1.0, 100.0, 1), std::invalid_argument);
  EXPECT_THROW((void)exponential_failures(10, 1.0, 0.0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace hetero::experiments
