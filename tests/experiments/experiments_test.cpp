#include "hetero/experiments/experiments.h"

#include <gtest/gtest.h>

namespace hetero::experiments {
namespace {

const core::Environment kEnv = core::Environment::paper_default();

TEST(HecrTable, ReproducesTable3Shape) {
  const auto rows = hecr_table({8, 16, 32}, kEnv);
  ASSERT_EQ(rows.size(), 3u);
  // Paper's Table 3: linear 0.366/0.298/0.251, harmonic 0.216/0.116/0.060.
  // Our model-exact values are within a few thousandths.
  EXPECT_NEAR(rows[0].hecr_linear, 0.366, 0.01);
  EXPECT_NEAR(rows[1].hecr_linear, 0.298, 0.01);
  EXPECT_NEAR(rows[2].hecr_linear, 0.251, 0.01);
  EXPECT_NEAR(rows[0].hecr_harmonic, 0.216, 0.01);
  EXPECT_NEAR(rows[1].hecr_harmonic, 0.116, 0.01);
  EXPECT_NEAR(rows[2].hecr_harmonic, 0.060, 0.01);
  // The harmonic cluster's advantage grows with n (~1.7x -> ~2.6x -> >4x).
  EXPECT_GT(rows[0].ratio, 1.5);
  EXPECT_GT(rows[1].ratio, rows[0].ratio);
  EXPECT_GT(rows[2].ratio, 4.0);
}

TEST(AdditiveSpeedupTable, ReproducesTable4Shape) {
  const core::Profile base{{1.0, 0.5, 1.0 / 3.0, 0.25}};
  const auto rows = additive_speedup_table(base, 1.0 / 16.0, kEnv);
  ASSERT_EQ(rows.size(), 4u);
  // Every upgrade helps (Prop. 2)...
  for (const auto& row : rows) EXPECT_GT(row.work_ratio, 1.0);
  // ...and gains increase toward the fastest machine (Theorem 3).
  for (std::size_t k = 0; k + 1 < rows.size(); ++k) {
    EXPECT_LT(rows[k].work_ratio, rows[k + 1].work_ratio);
  }
  // Table 4's profiles: speeding up machine 3 gives <1, 1/2, 1/3, 3/16>.
  EXPECT_DOUBLE_EQ(rows[3].profile_after[3], 3.0 / 16.0);
  EXPECT_DOUBLE_EQ(rows[0].profile_after[0], 15.0 / 16.0);
}

TEST(MultiplicativeExperiment, Phase1UpgradesFastestSixteenRounds) {
  // Figure 3's setup: tau raised to 200 usec against millisecond-scale
  // tasks (normalized tau = 0.2), start <1,1,1,1>, psi = 1/2.  This puts the
  // Theorem-4 threshold A*tau*delta/B^2 ~= 0.04 inside (1/32, 1/16), which is
  // exactly what makes the paper's narrated regime switch happen at rho = 1/16.
  const core::Environment env{core::Environment::Params{.tau = 0.2, .pi = 0.01, .delta = 1.0}};
  const auto rounds = multiplicative_speedup_experiment({1.0, 1.0, 1.0, 1.0}, 0.5, 16, env);
  ASSERT_EQ(rounds.size(), 16u);
  // The experiment's cycle: the tie-break picks machine 3, condition (1)
  // keeps it until it is "very fast", then the next machine, etc.  After 16
  // rounds everything sits at 1/16.
  for (double v : rounds.back().speeds_after) EXPECT_DOUBLE_EQ(v, 1.0 / 16.0);
  // Each machine must have been upgraded exactly 4 times (1 -> 1/16).
  std::vector<int> upgrades(4, 0);
  for (const auto& r : rounds) ++upgrades[r.machine];
  for (int count : upgrades) EXPECT_EQ(count, 4);
  // X improves monotonically.
  for (std::size_t k = 1; k < rounds.size(); ++k) {
    EXPECT_GT(rounds[k].x_after, rounds[k - 1].x_after);
  }
}

TEST(MultiplicativeExperiment, Phase2UpgradesSlowest) {
  // Figure 4: from <1/16,...>, condition (2) applies — each round upgrades a
  // *slowest* machine, sweeping the cluster level by level.
  const core::Environment env{core::Environment::Params{.tau = 0.2, .pi = 0.01, .delta = 1.0}};
  const auto rounds =
      multiplicative_speedup_experiment(std::vector<double>(4, 1.0 / 16.0), 0.5, 4, env);
  ASSERT_EQ(rounds.size(), 4u);
  // Condition (2) regime: psi * rho_i * rho_j <= threshold for these speeds.
  // (First round is a tie-break on a homogeneous cluster.)
  for (std::size_t k = 1; k < rounds.size(); ++k) {
    EXPECT_FALSE(rounds[k].condition1_regime) << k;
  }
  // After 4 rounds each machine was upgraded exactly once: all at 1/32.
  for (double v : rounds.back().speeds_after) EXPECT_DOUBLE_EQ(v, 1.0 / 32.0);
}

TEST(MultiplicativeExperiment, RegimeFlagTracksTheorem4Threshold) {
  const core::Environment env{core::Environment::Params{.tau = 0.2, .pi = 0.01, .delta = 1.0}};
  const auto rounds = multiplicative_speedup_experiment({1.0, 0.5}, 0.5, 1, env);
  ASSERT_EQ(rounds.size(), 1u);
  EXPECT_TRUE(rounds[0].condition1_regime);  // 0.5*1*0.5 >> threshold
}

TEST(VariancePredictor, MostPairsAreGoodAndBadGapsAreSmall) {
  parallel::ThreadPool pool{2};
  const auto result = variance_predictor_experiment(8, 400, /*seed=*/2024, kEnv, pool);
  EXPECT_EQ(result.trials, 400u);
  EXPECT_EQ(result.good + result.bad + result.skipped, 400u);
  // Paper: variance is right ~76% of the time (never worse than chance).
  EXPECT_GT(static_cast<double>(result.good), static_cast<double>(result.bad));
  EXPECT_LT(result.bad_fraction(), 0.45);
  // Paper: bad pairs have "rather small" HECR differences.
  if (result.bad > 0 && result.good > 0) {
    EXPECT_LT(result.hecr_gap_when_bad.mean(), result.hecr_gap_when_good.mean());
  }
}

TEST(VariancePredictor, DeterministicForFixedSeed) {
  parallel::ThreadPool pool{3};
  const auto a = variance_predictor_experiment(4, 100, 7, kEnv, pool);
  const auto b = variance_predictor_experiment(4, 100, 7, kEnv, pool);
  EXPECT_EQ(a.good, b.good);
  EXPECT_EQ(a.bad, b.bad);
  EXPECT_THROW((void)variance_predictor_experiment(1, 10, 7, kEnv, pool), std::invalid_argument);
}

TEST(ThresholdSearch, AccuracyReaches100PercentAtLargeGaps) {
  parallel::ThreadPool pool{2};
  const auto result = variance_threshold_search(8, 300, 6, 0.12, /*seed=*/11, kEnv, pool);
  ASSERT_EQ(result.bins.size(), 6u);
  // Every populated bin from the empirical theta on must be perfect, and
  // there must be populated bins past the small-gap region.
  std::size_t populated_past_small_gaps = 0;
  for (const auto& bin : result.bins) {
    if (bin.trials == 0) continue;
    if (bin.gap_lo >= result.smallest_perfect_gap) EXPECT_EQ(bin.correct, bin.trials);
    if (bin.gap_lo >= 0.04) ++populated_past_small_gaps;
  }
  EXPECT_GT(populated_past_small_gaps, 0u);
  // The empirical theta must exist below the paper's 0.167 scale.
  EXPECT_LT(result.smallest_perfect_gap, 0.12);
  // The smallest-gap bin should show imperfection (that is the whole point
  // of the threshold: variance *can* err, but only at small gaps).
  EXPECT_GT(result.bins.front().trials, result.bins.front().correct);
  EXPECT_THROW((void)variance_threshold_search(8, 10, 0, 0.2, 1, kEnv, pool),
               std::invalid_argument);
}

TEST(FifoOptimality, Theorem1HoldsForSmallClusters) {
  const auto report = fifo_optimality_report({1.0, 0.5, 0.25}, kEnv, 60.0);
  EXPECT_EQ(report.order_pairs, 36u);
  EXPECT_TRUE(report.fifo_always_optimal);
  EXPECT_TRUE(report.fifo_order_independent);
  EXPECT_GE(report.optimal_pairs, 6u);  // at least every FIFO pair
  EXPECT_GT(report.best_work, 0.0);
}

}  // namespace
}  // namespace hetero::experiments
