// Resume-determinism contract of the journaled experiment overloads: a run
// interrupted at any unit boundary and resumed from its journal produces
// results bit-identical to an uninterrupted run, and the ctx overloads agree
// with their plain counterparts.  Interruption is simulated by copying a
// prefix of a completed journal's records into a fresh journal and resuming
// from that.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstddef>
#include <string>
#include <vector>

#include "hetero/core/hetero.h"
#include "hetero/experiments/campaign.h"
#include "hetero/experiments/experiments.h"
#include "hetero/experiments/fault_sweep.h"
#include "hetero/experiments/protocol_sweep.h"
#include "hetero/parallel/thread_pool.h"
#include "hetero/runner/journal.h"
#include "hetero/runner/runner.h"
#include "hetero/stats/moments.h"

namespace hetero::experiments {
namespace {

namespace runner = hetero::runner;

const core::Environment kEnv = core::Environment::paper_default();
const std::vector<double> kSpeeds{1.0, 0.5, 0.25, 0.125};

FaultSweepConfig sweep_config() {
  FaultSweepConfig config;
  config.lifespan = 100.0;
  config.crash_rates = {0.0, 0.01};
  config.straggler_factors = {1.0, 2.0};
  config.trials = 2;
  config.seed = 7;
  return config;
}

void expect_same_moments(const stats::OnlineMoments& a, const stats::OnlineMoments& b) {
  const auto sa = a.state();
  const auto sb = b.state();
  EXPECT_EQ(sa.count, sb.count);
  EXPECT_EQ(sa.mean, sb.mean);  // bitwise
  EXPECT_EQ(sa.m2, sb.m2);
  EXPECT_EQ(sa.m3, sb.m3);
  EXPECT_EQ(sa.m4, sb.m4);
  EXPECT_EQ(sa.min, sb.min);
  EXPECT_EQ(sa.max, sb.max);
}

class ResumeTest : public testing::Test {
 protected:
  void TearDown() override {
    std::remove(full_path_.c_str());
    std::remove(partial_path_.c_str());
  }

  /// Fresh journal holding only the first `keep` records of `donor` — the
  /// state a run killed after `keep` finished units leaves behind.
  runner::Journal partial_copy(const runner::Journal& donor, std::size_t keep) {
    std::remove(partial_path_.c_str());
    runner::Journal partial = runner::Journal::create(partial_path_, donor.header());
    std::size_t copied = 0;
    for (const auto& [key, payload] : donor.records()) {
      if (copied++ == keep) break;
      partial.append(key, payload);
    }
    return partial;
  }

  std::string full_path_ = testing::TempDir() + "resume_full_" +
                           testing::UnitTest::GetInstance()->current_test_info()->name() +
                           "." + std::to_string(::getpid()) + ".journal";
  std::string partial_path_ = testing::TempDir() + "resume_partial_" +
                              testing::UnitTest::GetInstance()->current_test_info()->name() +
                              "." + std::to_string(::getpid()) + ".journal";
};

TEST_F(ResumeTest, FaultSweepPooledCtxMatchesSerialByteForByte) {
  const auto config = sweep_config();
  const std::string serial_csv = fault_sweep_csv(run_fault_sweep(kSpeeds, kEnv, config));

  parallel::ThreadPool pool{4};
  runner::RunContext ctx;
  ctx.pool = &pool;
  const std::string pooled_csv =
      fault_sweep_csv(run_fault_sweep(kSpeeds, kEnv, config, ctx));
  EXPECT_EQ(pooled_csv, serial_csv);
}

TEST_F(ResumeTest, FaultSweepResumeRecomputesOnlyMissingCells) {
  const auto config = sweep_config();
  const std::string golden_csv = fault_sweep_csv(run_fault_sweep(kSpeeds, kEnv, config));
  const runner::JournalHeader header = fault_sweep_journal_header(kSpeeds, kEnv, config);

  runner::Journal full = runner::Journal::open_or_resume(full_path_, header);
  {
    runner::RunContext ctx;
    ctx.journal = &full;
    (void)run_fault_sweep(kSpeeds, kEnv, config, ctx);
  }
  ASSERT_EQ(full.records().size(), 4u);

  runner::Journal partial = partial_copy(full, 2);
  runner::RunContext ctx;
  ctx.journal = &partial;
  std::size_t recomputed = 0;
  ctx.before_unit = [&recomputed](std::size_t, std::size_t) { ++recomputed; };
  const auto resumed = run_fault_sweep(kSpeeds, kEnv, config, ctx);

  EXPECT_EQ(recomputed, 2u);  // exactly the missing cells, no duplicates
  EXPECT_EQ(partial.records().size(), 4u);
  EXPECT_EQ(fault_sweep_csv(resumed), golden_csv);
}

TEST_F(ResumeTest, ProtocolSweepResumeReproducesTheCsvByteForByte) {
  ProtocolSweepConfig config;
  config.lifespan = 100.0;
  config.crash_rates = {0.0, 0.01};
  config.straggler_factors = {1.0, 2.0};
  config.trials = 2;
  config.seed = 7;
  const std::string golden_csv = protocol_sweep_csv(run_protocol_sweep(kSpeeds, kEnv, config));
  const runner::JournalHeader header = protocol_sweep_journal_header(kSpeeds, kEnv, config);

  runner::Journal full = runner::Journal::open_or_resume(full_path_, header);
  {
    runner::RunContext ctx;
    ctx.journal = &full;
    (void)run_protocol_sweep(kSpeeds, kEnv, config, ctx);
  }
  ASSERT_EQ(full.records().size(), 16u);  // 4 protocols x 2 rates x 2 factors

  // A run killed mid-grid leaves a journal prefix; resuming recomputes only
  // the missing cells and the CSV comes out byte-identical.
  for (std::size_t keep : {0u, 5u, 15u}) {
    runner::Journal partial = partial_copy(full, keep);
    runner::RunContext ctx;
    ctx.journal = &partial;
    std::size_t recomputed = 0;
    ctx.before_unit = [&recomputed](std::size_t, std::size_t) { ++recomputed; };
    const auto resumed = run_protocol_sweep(kSpeeds, kEnv, config, ctx);
    EXPECT_EQ(recomputed, 16u - keep);
    EXPECT_EQ(protocol_sweep_csv(resumed), golden_csv);
  }

  // The pooled ctx overload agrees too.
  parallel::ThreadPool pool{4};
  runner::RunContext pooled;
  pooled.pool = &pool;
  EXPECT_EQ(protocol_sweep_csv(run_protocol_sweep(kSpeeds, kEnv, config, pooled)), golden_csv);
}

TEST_F(ResumeTest, HecrTableResumesWithoutRecomputation) {
  const std::vector<std::size_t> sizes{4, 6, 8};
  const auto plain = hecr_table(sizes, kEnv);
  const runner::JournalHeader header = hecr_journal_header(sizes, kEnv);

  runner::Journal journal = runner::Journal::open_or_resume(full_path_, header);
  {
    runner::RunContext ctx;
    ctx.journal = &journal;
    const auto rows = hecr_table(sizes, kEnv, ctx);
    ASSERT_EQ(rows.size(), plain.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(rows[i].n, plain[i].n);
      EXPECT_EQ(rows[i].hecr_linear, plain[i].hecr_linear);  // bitwise
      EXPECT_EQ(rows[i].hecr_harmonic, plain[i].hecr_harmonic);
      EXPECT_EQ(rows[i].ratio, plain[i].ratio);
    }
  }

  runner::Journal again = runner::Journal::open_or_resume(full_path_, header);
  runner::RunContext ctx;
  ctx.journal = &again;
  std::size_t recomputed = 0;
  ctx.before_unit = [&recomputed](std::size_t, std::size_t) { ++recomputed; };
  const auto rows = hecr_table(sizes, kEnv, ctx);
  EXPECT_EQ(recomputed, 0u);  // everything came from the journal
  ASSERT_EQ(rows.size(), plain.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].hecr_linear, plain[i].hecr_linear);
    EXPECT_EQ(rows[i].hecr_harmonic, plain[i].hecr_harmonic);
  }
}

TEST_F(ResumeTest, VariancePredictorResumeIsBitIdentical) {
  constexpr std::size_t kN = 6;
  constexpr std::size_t kTrials = 300;
  constexpr std::uint64_t kSeed = 11;
  constexpr std::size_t kBatch = 64;  // 5 batches
  const runner::JournalHeader header =
      variance_predictor_journal_header(kN, kTrials, kSeed, kEnv, kBatch);

  runner::Journal full = runner::Journal::open_or_resume(full_path_, header);
  VariancePredictorResult uninterrupted;
  {
    runner::RunContext ctx;
    ctx.journal = &full;
    uninterrupted = variance_predictor_experiment(kN, kTrials, kSeed, kEnv, ctx, kBatch);
  }
  ASSERT_EQ(full.records().size(), 5u);

  runner::Journal partial = partial_copy(full, 2);
  runner::RunContext ctx;
  ctx.journal = &partial;
  const auto resumed = variance_predictor_experiment(kN, kTrials, kSeed, kEnv, ctx, kBatch);

  EXPECT_EQ(resumed.trials, uninterrupted.trials);
  EXPECT_EQ(resumed.good, uninterrupted.good);
  EXPECT_EQ(resumed.bad, uninterrupted.bad);
  EXPECT_EQ(resumed.skipped, uninterrupted.skipped);
  expect_same_moments(resumed.hecr_gap_when_good, uninterrupted.hecr_gap_when_good);
  expect_same_moments(resumed.hecr_gap_when_bad, uninterrupted.hecr_gap_when_bad);

  // Integer tallies also agree with the classic thread-pool implementation.
  parallel::ThreadPool pool{4};
  const auto classic = variance_predictor_experiment(kN, kTrials, kSeed, kEnv, pool);
  EXPECT_EQ(resumed.good, classic.good);
  EXPECT_EQ(resumed.bad, classic.bad);
  EXPECT_EQ(resumed.skipped, classic.skipped);
}

TEST_F(ResumeTest, ThresholdSearchResumeIsBitIdentical) {
  constexpr std::size_t kN = 6;
  constexpr std::size_t kTrialsPerBin = 40;
  constexpr std::size_t kBins = 5;
  constexpr double kGapMax = 0.05;
  constexpr std::uint64_t kSeed = 13;
  constexpr std::size_t kBatch = 50;
  const runner::JournalHeader header =
      variance_threshold_journal_header(kN, kTrialsPerBin, kBins, kGapMax, kSeed, kEnv, kBatch);

  runner::Journal full = runner::Journal::open_or_resume(full_path_, header);
  ThresholdSearchResult uninterrupted;
  {
    runner::RunContext ctx;
    ctx.journal = &full;
    uninterrupted =
        variance_threshold_search(kN, kTrialsPerBin, kBins, kGapMax, kSeed, kEnv, ctx, kBatch);
  }
  ASSERT_GE(full.records().size(), 2u);

  runner::Journal partial = partial_copy(full, 1);
  runner::RunContext ctx;
  ctx.journal = &partial;
  const auto resumed =
      variance_threshold_search(kN, kTrialsPerBin, kBins, kGapMax, kSeed, kEnv, ctx, kBatch);

  EXPECT_EQ(resumed.smallest_perfect_gap, uninterrupted.smallest_perfect_gap);
  ASSERT_EQ(resumed.bins.size(), uninterrupted.bins.size());
  for (std::size_t i = 0; i < resumed.bins.size(); ++i) {
    EXPECT_EQ(resumed.bins[i].gap_lo, uninterrupted.bins[i].gap_lo);
    EXPECT_EQ(resumed.bins[i].gap_hi, uninterrupted.bins[i].gap_hi);
    EXPECT_EQ(resumed.bins[i].trials, uninterrupted.bins[i].trials);
    EXPECT_EQ(resumed.bins[i].correct, uninterrupted.bins[i].correct);
  }
}

TEST_F(ResumeTest, CampaignResumeContinuesFromTheExactFleetState) {
  const CampaignConfig config{.total_time = 400.0, .round_length = 100.0};
  const std::vector<CampaignFailure> failures{{3, 110.0}, {1, 250.0}};
  const auto plain = run_campaign(kSpeeds, kEnv, config, failures);
  const runner::JournalHeader header =
      campaign_journal_header(kSpeeds, kEnv, config, failures);

  runner::Journal full = runner::Journal::open_or_resume(full_path_, header);
  {
    runner::RunContext ctx;
    ctx.journal = &full;
    (void)run_campaign(kSpeeds, kEnv, config, failures, ctx);
  }
  ASSERT_EQ(full.records().size(), 4u);

  // Interrupt after two rounds; the resumed campaign must replay rounds 0-1
  // (restoring the post-crash fleet) and re-simulate rounds 2-3 identically.
  runner::Journal partial = partial_copy(full, 2);
  runner::RunContext ctx;
  ctx.journal = &partial;
  const auto resumed = run_campaign(kSpeeds, kEnv, config, failures, ctx);

  EXPECT_EQ(resumed.completed_work, plain.completed_work);  // bitwise
  EXPECT_EQ(resumed.ideal_work, plain.ideal_work);
  EXPECT_EQ(resumed.rounds, plain.rounds);
  EXPECT_EQ(resumed.machines_lost, plain.machines_lost);
  ASSERT_EQ(resumed.work_by_round.size(), plain.work_by_round.size());
  for (std::size_t r = 0; r < plain.work_by_round.size(); ++r) {
    EXPECT_EQ(resumed.work_by_round[r], plain.work_by_round[r]);
  }
  EXPECT_EQ(resumed.faults.crashes, plain.faults.crashes);
  EXPECT_EQ(resumed.faults.retries, plain.faults.retries);
  EXPECT_EQ(resumed.faults.timeouts, plain.faults.timeouts);
  ASSERT_EQ(resumed.faults.detections.size(), plain.faults.detections.size());
  for (std::size_t i = 0; i < plain.faults.detections.size(); ++i) {
    EXPECT_EQ(resumed.faults.detections[i].at, plain.faults.detections[i].at);
    EXPECT_EQ(resumed.faults.detections[i].machine, plain.faults.detections[i].machine);
  }
  ASSERT_EQ(resumed.faults.recovery_latencies.size(), plain.faults.recovery_latencies.size());
  for (std::size_t i = 0; i < plain.faults.recovery_latencies.size(); ++i) {
    EXPECT_EQ(resumed.faults.recovery_latencies[i], plain.faults.recovery_latencies[i]);
  }
}

}  // namespace
}  // namespace hetero::experiments
