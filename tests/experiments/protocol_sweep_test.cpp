#include "hetero/experiments/protocol_sweep.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "hetero/parallel/batch.h"
#include "hetero/parallel/thread_pool.h"
#include "hetero/protocol/fifo.h"

namespace hetero::experiments {
namespace {

const core::Environment kEnv = core::Environment::paper_default();
const std::vector<double> kSpeeds{1.0, 0.5, 0.25, 0.125};

ProtocolSweepConfig small_grid() {
  ProtocolSweepConfig config;
  config.lifespan = 100.0;
  config.crash_rates = {0.0, 0.01};
  config.straggler_factors = {1.0, 2.0};
  config.trials = 2;
  config.seed = 7;
  return config;
}

TEST(ProtocolSweep, GridIsRowMajorProtocolByCrashByFactor) {
  const auto result = run_protocol_sweep(kSpeeds, kEnv, small_grid());
  ASSERT_EQ(result.cells.size(), 4u * 2u * 2u);
  std::size_t i = 0;
  for (protocol::ProtocolKind kind :
       {protocol::ProtocolKind::kFifo, protocol::ProtocolKind::kReactiveFifo,
        protocol::ProtocolKind::kReplicated, protocol::ProtocolKind::kMds}) {
    for (double rate : {0.0, 0.01}) {
      for (double factor : {1.0, 2.0}) {
        EXPECT_EQ(result.cells[i].protocol, kind);
        EXPECT_DOUBLE_EQ(result.cells[i].crash_rate, rate);
        EXPECT_DOUBLE_EQ(result.cells[i].straggler_factor, factor);
        EXPECT_EQ(result.cells[i].work_target, result.work_target);
        ++i;
      }
    }
  }
  EXPECT_NEAR(result.work_target,
              0.6 * protocol::fifo_total_work(kSpeeds, kEnv, 100.0), 1e-9);
}

TEST(ProtocolSweep, SizingsAreReportedAndValid) {
  const auto result = run_protocol_sweep(kSpeeds, kEnv, small_grid());
  std::string why;
  EXPECT_TRUE(result.replicated.allocation.valid(kSpeeds.size(), &why)) << why;
  EXPECT_TRUE(result.mds.allocation.valid(kSpeeds.size(), &why)) << why;
  EXPECT_EQ(result.replicated.allocation.kind, protocol::ProtocolKind::kReplicated);
  EXPECT_EQ(result.mds.allocation.kind, protocol::ProtocolKind::kMds);
}

TEST(ProtocolSweep, CellInvariantsHold) {
  const auto config = small_grid();
  const auto result = run_protocol_sweep(kSpeeds, kEnv, config);
  for (const ProtocolSweepCell& cell : result.cells) {
    EXPECT_GE(cell.hit_rate, 0.0);
    EXPECT_LE(cell.hit_rate, 1.0);
    EXPECT_GT(cell.mean_makespan, 0.0);
    EXPECT_LE(cell.mean_makespan, config.lifespan * (1.0 + 1e-9));
    EXPECT_GE(cell.mean_completed_work, 0.0);
    if (cell.protocol == protocol::ProtocolKind::kFifo ||
        cell.protocol == protocol::ProtocolKind::kReactiveFifo) {
      EXPECT_EQ(cell.mean_redundant_issued, 0.0);  // no redundancy issued
    }
    if (cell.protocol != protocol::ProtocolKind::kReactiveFifo) {
      EXPECT_EQ(cell.mean_replans, 0.0);
    }
  }
  // In the calm cell (no crashes, no stragglers) fifo and reactive coincide:
  // nothing to detect means nothing to replan.
  const ProtocolSweepCell& fifo_calm = result.cells[0];
  const ProtocolSweepCell& reactive_calm = result.cells[4];
  EXPECT_EQ(fifo_calm.mean_makespan, reactive_calm.mean_makespan);  // bitwise
  EXPECT_EQ(fifo_calm.mean_completed_work, reactive_calm.mean_completed_work);
}

TEST(ProtocolSweep, DeterministicAndExecutorBitIdentical) {
  const auto serial = run_protocol_sweep(kSpeeds, kEnv, small_grid());
  const auto again = run_protocol_sweep(kSpeeds, kEnv, small_grid());
  parallel::ThreadPool pool{3};
  const auto batched =
      run_protocol_sweep(kSpeeds, kEnv, small_grid(), parallel::pool_executor(pool));
  ASSERT_EQ(serial.cells.size(), again.cells.size());
  ASSERT_EQ(serial.cells.size(), batched.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    for (const auto* other : {&again.cells[i], &batched.cells[i]}) {
      EXPECT_EQ(serial.cells[i].mean_makespan, other->mean_makespan);  // bitwise
      EXPECT_EQ(serial.cells[i].hit_rate, other->hit_rate);
      EXPECT_EQ(serial.cells[i].mean_completed_work, other->mean_completed_work);
      EXPECT_EQ(serial.cells[i].mean_redundant_issued, other->mean_redundant_issued);
      EXPECT_EQ(serial.cells[i].mean_redundant_cancelled, other->mean_redundant_cancelled);
      EXPECT_EQ(serial.cells[i].mean_redundant_wasted, other->mean_redundant_wasted);
      EXPECT_EQ(serial.cells[i].mean_replans, other->mean_replans);
      EXPECT_EQ(serial.cells[i].mean_crashes, other->mean_crashes);
    }
  }
  EXPECT_EQ(protocol_sweep_csv(serial), protocol_sweep_csv(batched));  // byte-identical
}

TEST(ProtocolSweep, ProtocolAxisIsConfigurable) {
  auto config = small_grid();
  config.protocols = {protocol::ProtocolKind::kReplicated};
  const auto result = run_protocol_sweep(kSpeeds, kEnv, config);
  ASSERT_EQ(result.cells.size(), 4u);
  for (const auto& cell : result.cells) {
    EXPECT_EQ(cell.protocol, protocol::ProtocolKind::kReplicated);
  }
  // Same fault cells as the full axis: the replicated rows of the full sweep
  // are bit-identical (fault seeds do not depend on the protocol axis).
  const auto full = run_protocol_sweep(kSpeeds, kEnv, small_grid());
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(result.cells[i].mean_makespan, full.cells[8 + i].mean_makespan);  // bitwise
    EXPECT_EQ(result.cells[i].mean_completed_work, full.cells[8 + i].mean_completed_work);
  }
}

TEST(ProtocolSweep, RejectsDegenerateConfigs) {
  auto config = small_grid();
  config.lifespan = 0.0;
  EXPECT_THROW((void)run_protocol_sweep(kSpeeds, kEnv, config), std::invalid_argument);
  config = small_grid();
  config.work_fraction = 0.0;
  EXPECT_THROW((void)run_protocol_sweep(kSpeeds, kEnv, config), std::invalid_argument);
  config = small_grid();
  config.work_fraction = 1.5;
  EXPECT_THROW((void)run_protocol_sweep(kSpeeds, kEnv, config), std::invalid_argument);
  config = small_grid();
  config.protocols.clear();
  EXPECT_THROW((void)run_protocol_sweep(kSpeeds, kEnv, config), std::invalid_argument);
  config = small_grid();
  config.crash_rates.clear();
  EXPECT_THROW((void)run_protocol_sweep(kSpeeds, kEnv, config), std::invalid_argument);
  config = small_grid();
  config.trials = 0;
  EXPECT_THROW((void)run_protocol_sweep(kSpeeds, kEnv, config), std::invalid_argument);
  EXPECT_THROW((void)run_protocol_sweep(std::vector<double>{}, kEnv, small_grid()),
               std::invalid_argument);
}

TEST(ProtocolSweep, CsvHasStableHeaderAndOneRowPerCell) {
  const auto result = run_protocol_sweep(kSpeeds, kEnv, small_grid());
  const std::string csv = protocol_sweep_csv(result);
  EXPECT_EQ(csv.rfind("protocol,crash_rate,straggler_factor,work_target,mean_makespan,"
                      "hit_rate,mean_completed_work,mean_redundant_issued,"
                      "mean_redundant_cancelled,mean_redundant_wasted,mean_replans,"
                      "mean_crashes\n",
                      0),
            0u);
  std::size_t lines = 0;
  for (char c : csv) lines += c == '\n';
  EXPECT_EQ(lines, result.cells.size() + 1);
  const std::string table = format_protocol_sweep(result);
  EXPECT_NE(table.find("replicated"), std::string::npos);
  EXPECT_NE(table.find("mds"), std::string::npos);
}

}  // namespace
}  // namespace hetero::experiments
