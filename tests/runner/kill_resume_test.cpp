// Golden determinism test for the crash-safe harness: run a fault sweep in a
// child process, SIGKILL it mid-grid, resume from the journal, and require
// the merged CSV to be byte-identical to an uninterrupted run — no lost and
// no duplicated work units.
//
// The child is this same gtest binary re-executed with a filter that selects
// only the (otherwise skipped) worker test; the journal path travels via an
// environment variable.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "hetero/core/environment.h"
#include "hetero/experiments/fault_sweep.h"
#include "hetero/runner/journal.h"
#include "hetero/runner/runner.h"

namespace core = hetero::core;
namespace experiments = hetero::experiments;
namespace runner = hetero::runner;
using namespace std::chrono_literals;

namespace {

constexpr const char* kJournalEnv = "HETERO_KILL_RESUME_JOURNAL";

const std::vector<double> kSpeeds{1.0, 0.5, 0.25, 0.125};

experiments::FaultSweepConfig sweep_config() {
  experiments::FaultSweepConfig config;
  config.lifespan = 100.0;
  config.crash_rates = {0.0, 0.005, 0.01};
  config.straggler_factors = {1.0, 2.0};
  config.trials = 2;
  config.seed = 2026;
  return config;
}

std::size_t grid_cells() {
  const auto config = sweep_config();
  return config.crash_rates.size() * config.straggler_factors.size();
}

/// Number of complete (newline-terminated) lines after the header line.
std::size_t journaled_lines(const std::string& path) {
  std::ifstream in{path};
  if (!in) return 0;
  const std::string content{std::istreambuf_iterator<char>{in},
                            std::istreambuf_iterator<char>{}};
  std::size_t newlines = 0;
  for (char c : content) newlines += c == '\n';
  return newlines > 0 ? newlines - 1 : 0;  // minus the header line
}

std::string self_exe() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return {};
  buf[n] = '\0';
  return std::string{buf};
}

}  // namespace

// The worker role: runs the journaled sweep serially, slowed down enough for
// the parent to land a SIGKILL between cells.  Skipped in a normal test run.
TEST(KillResume, Worker) {
  const char* journal_path = std::getenv(kJournalEnv);
  if (journal_path == nullptr) GTEST_SKIP() << "worker role only";

  const core::Environment env = core::Environment::paper_default();
  const auto config = sweep_config();
  runner::JournalHeader header =
      experiments::fault_sweep_journal_header(kSpeeds, env, config);
  runner::Journal journal = runner::Journal::open_or_resume(journal_path, header);
  runner::RunContext ctx;
  ctx.journal = &journal;
  ctx.before_unit = [](std::size_t, std::size_t) {
    std::this_thread::sleep_for(100ms);  // stretch each cell for the killer
  };
  (void)experiments::run_fault_sweep(kSpeeds, env, config, ctx);
}

TEST(KillResume, ResumedSweepIsByteIdenticalToUninterruptedRun) {
  if (std::getenv(kJournalEnv) != nullptr) GTEST_SKIP() << "parent role only";
  const std::string exe = self_exe();
  ASSERT_FALSE(exe.empty()) << "cannot resolve /proc/self/exe";

  const core::Environment env = core::Environment::paper_default();
  const auto config = sweep_config();
  const std::size_t cells = grid_cells();

  // Golden: the uninterrupted serial sweep.
  const std::string golden_csv =
      experiments::fault_sweep_csv(experiments::run_fault_sweep(kSpeeds, env, config));

  // Launch the worker and kill it mid-grid.  Timing-dependent, so retry the
  // kill if the worker ever finishes the whole grid before the signal lands.
  std::string journal_path;
  std::size_t survivors = 0;
  bool interrupted = false;
  for (int attempt = 0; attempt < 5 && !interrupted; ++attempt) {
    journal_path = testing::TempDir() + "kill_resume_" + std::to_string(::getpid()) +
                   "_" + std::to_string(attempt) + ".journal";
    std::remove(journal_path.c_str());

    const pid_t child = ::fork();
    ASSERT_NE(child, -1);
    if (child == 0) {
      ::setenv(kJournalEnv, journal_path.c_str(), 1);
      std::string filter = "--gtest_filter=KillResume.Worker";
      char* const argv[] = {const_cast<char*>(exe.c_str()),
                            const_cast<char*>(filter.c_str()), nullptr};
      ::execv(exe.c_str(), argv);
      ::_exit(127);  // exec failed
    }

    // Wait until at least one cell is journaled, then pull the plug.
    const auto give_up = std::chrono::steady_clock::now() + 30s;
    while (journaled_lines(journal_path) < 2 &&
           std::chrono::steady_clock::now() < give_up) {
      std::this_thread::sleep_for(5ms);
    }
    ::kill(child, SIGKILL);
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);

    runner::JournalHeader header =
        experiments::fault_sweep_journal_header(kSpeeds, env, config);
    runner::Journal probe = runner::Journal::open_or_resume(journal_path, header);
    survivors = probe.records().size();
    interrupted = survivors >= 1 && survivors < cells;
    if (interrupted) {
      EXPECT_TRUE(WIFSIGNALED(status)) << "worker should have died by SIGKILL";
    } else {
      std::remove(journal_path.c_str());
    }
  }
  ASSERT_TRUE(interrupted) << "could not interrupt the worker mid-grid";

  // Resume from the torn journal and finish the sweep.
  runner::JournalHeader header =
      experiments::fault_sweep_journal_header(kSpeeds, env, config);
  runner::Journal journal = runner::Journal::open_or_resume(journal_path, header);
  runner::RunContext ctx;
  ctx.journal = &journal;
  const experiments::FaultSweepResult resumed =
      experiments::run_fault_sweep(kSpeeds, env, config, ctx);

  // No lost units, no duplicated units: every journaled cell was reused and
  // exactly the missing ones were recomputed.
  runner::Journal reloaded = runner::Journal::open(journal_path);
  EXPECT_EQ(reloaded.records().size(), cells);
  EXPECT_EQ(reloaded.dropped_records(), 0u);

  // And the merged result is byte-identical to the uninterrupted run.
  EXPECT_EQ(experiments::fault_sweep_csv(resumed), golden_csv);

  std::remove(journal_path.c_str());
}
