#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "hetero/core/cancel.h"
#include "hetero/core/errors.h"
#include "hetero/parallel/thread_pool.h"
#include "hetero/runner/journal.h"
#include "hetero/runner/runner.h"

namespace core = hetero::core;
namespace parallel = hetero::parallel;
namespace runner = hetero::runner;
using namespace std::chrono_literals;

namespace {

std::string payload_for(std::size_t unit) { return "payload-" + std::to_string(unit); }

std::string deterministic_compute(std::size_t unit, const core::CancelToken&) {
  return payload_for(unit);
}

runner::JournalHeader test_header() {
  runner::JournalHeader header;
  header.tool = "runner_test";
  header.seed = 1;
  header.fingerprint = runner::fingerprint_of("runner test config");
  return header;
}

class RunnerTest : public testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = testing::TempDir() + "runner_test_" +
                      testing::UnitTest::GetInstance()->current_test_info()->name() + "." +
                      std::to_string(::getpid()) + ".journal";
};

}  // namespace

TEST_F(RunnerTest, SerialRunProducesAllPayloadsInOrder) {
  runner::RunContext ctx;
  runner::RunStats stats;
  const auto payloads = runner::run_units(ctx, "unit", 5, deterministic_compute, &stats);
  ASSERT_EQ(payloads.size(), 5u);
  for (std::size_t unit = 0; unit < 5; ++unit) EXPECT_EQ(payloads[unit], payload_for(unit));
  EXPECT_EQ(stats.units_total, 5u);
  EXPECT_EQ(stats.units_run, 5u);
  EXPECT_EQ(stats.units_resumed, 0u);
}

TEST_F(RunnerTest, ParallelRunMatchesSerial) {
  parallel::ThreadPool pool{4};
  runner::RunContext ctx;
  ctx.pool = &pool;
  const auto payloads = runner::run_units(ctx, "unit", 32, deterministic_compute);
  ASSERT_EQ(payloads.size(), 32u);
  for (std::size_t unit = 0; unit < 32; ++unit) EXPECT_EQ(payloads[unit], payload_for(unit));
}

TEST_F(RunnerTest, JournaledRunRecordsEveryUnit) {
  runner::Journal journal = runner::Journal::open_or_resume(path_, test_header());
  parallel::ThreadPool pool{4};
  runner::RunContext ctx;
  ctx.pool = &pool;
  ctx.journal = &journal;
  (void)runner::run_units(ctx, "unit", 8, deterministic_compute);
  EXPECT_EQ(journal.records().size(), 8u);
  ASSERT_NE(journal.find("unit:3"), nullptr);
  EXPECT_EQ(*journal.find("unit:3"), payload_for(3));
}

TEST_F(RunnerTest, ResumeSkipsJournaledUnitsEntirely) {
  {
    runner::Journal journal = runner::Journal::open_or_resume(path_, test_header());
    runner::RunContext ctx;
    ctx.journal = &journal;
    (void)runner::run_units(ctx, "unit", 6, deterministic_compute);
  }
  runner::Journal journal = runner::Journal::open_or_resume(path_, test_header());
  runner::RunContext ctx;
  ctx.journal = &journal;
  runner::RunStats stats;
  std::atomic<int> computed{0};
  const auto payloads = runner::run_units(
      ctx, "unit", 6,
      [&](std::size_t unit, const core::CancelToken&) {
        ++computed;
        return payload_for(unit);
      },
      &stats);
  EXPECT_EQ(computed.load(), 0);
  EXPECT_EQ(stats.units_resumed, 6u);
  EXPECT_EQ(stats.units_run, 0u);
  for (std::size_t unit = 0; unit < 6; ++unit) EXPECT_EQ(payloads[unit], payload_for(unit));
}

TEST_F(RunnerTest, PartialResumeComputesOnlyMissingUnits) {
  {
    runner::Journal journal = runner::Journal::open_or_resume(path_, test_header());
    journal.append("unit:0", payload_for(0));
    journal.append("unit:2", payload_for(2));
  }
  runner::Journal journal = runner::Journal::open_or_resume(path_, test_header());
  runner::RunContext ctx;
  ctx.journal = &journal;
  runner::RunStats stats;
  std::vector<std::size_t> computed;
  const auto payloads = runner::run_units(
      ctx, "unit", 4,
      [&](std::size_t unit, const core::CancelToken&) {
        computed.push_back(unit);
        return payload_for(unit);
      },
      &stats);
  EXPECT_EQ(computed, (std::vector<std::size_t>{1, 3}));
  EXPECT_EQ(stats.units_resumed, 2u);
  EXPECT_EQ(stats.units_run, 2u);
  for (std::size_t unit = 0; unit < 4; ++unit) EXPECT_EQ(payloads[unit], payload_for(unit));
  EXPECT_EQ(journal.records().size(), 4u);
}

TEST_F(RunnerTest, PreCancelledRunThrowsCancelled) {
  core::CancelSource source;
  source.cancel();
  runner::RunContext ctx;
  ctx.cancel = source.token();
  EXPECT_THROW((void)runner::run_units(ctx, "unit", 3, deterministic_compute), core::Cancelled);
}

TEST_F(RunnerTest, MidRunCancellationStopsParallelRun) {
  core::CancelSource source;
  parallel::ThreadPool pool{2};
  runner::RunContext ctx;
  ctx.pool = &pool;
  ctx.cancel = source.token();
  ctx.speculation.enabled = false;
  std::atomic<int> started{0};
  EXPECT_THROW(
      (void)runner::run_units(ctx, "unit", 64,
                              [&](std::size_t unit, const core::CancelToken& token) {
                                if (++started == 4) source.cancel();
                                for (int i = 0; i < 100; ++i) {
                                  if (token.stop_requested()) token.check();
                                  std::this_thread::sleep_for(1ms);
                                }
                                return payload_for(unit);
                              }),
      core::Cancelled);
}

TEST_F(RunnerTest, TransientFailuresAreRetriedWithBackoff) {
  runner::RunContext ctx;
  ctx.retry = core::Backoff{1e-4, 2.0, 3, 0.0};
  runner::RunStats stats;
  std::atomic<int> attempts{0};
  const auto payloads = runner::run_units(
      ctx, "unit", 1,
      [&](std::size_t unit, const core::CancelToken&) -> std::string {
        if (attempts++ < 2) throw core::TransientError{"flaky backend"};
        return payload_for(unit);
      },
      &stats);
  EXPECT_EQ(payloads[0], payload_for(0));
  EXPECT_EQ(attempts.load(), 3);
  EXPECT_EQ(stats.retries, 2u);
}

TEST_F(RunnerTest, FatalFailuresAbortWithoutRetry) {
  runner::RunContext ctx;
  ctx.retry = core::Backoff{1e-4, 2.0, 5, 0.0};
  std::atomic<int> attempts{0};
  EXPECT_THROW((void)runner::run_units(ctx, "unit", 1,
                                       [&](std::size_t, const core::CancelToken&) -> std::string {
                                         ++attempts;
                                         throw std::runtime_error{"deterministic bug"};
                                       }),
               std::runtime_error);
  EXPECT_EQ(attempts.load(), 1);  // foreign exceptions classify as fatal
}

// The acceptance scenario: one unit is a 10x straggler; the watchdog must
// flag it, launch a speculative copy, and the sweep must complete with
// unchanged results.
TEST_F(RunnerTest, WatchdogFlagsStragglerAndSpeculativeCopyCompletesTheRun) {
  parallel::ThreadPool pool{4};
  runner::Journal journal = runner::Journal::open_or_resume(path_, test_header());
  runner::RunContext ctx;
  ctx.pool = &pool;
  ctx.journal = &journal;
  ctx.speculation.min_samples = 3;
  ctx.speculation.min_overdue = 50ms;
  ctx.watchdog.poll = 5ms;
  // Fault injection: the primary attempt of unit 3 straggles ~10x past the
  // soft threshold; its speculative twin (attempt 1) runs at full speed.
  ctx.before_unit = [](std::size_t unit, std::size_t attempt) {
    if (unit == 3 && attempt == 0) std::this_thread::sleep_for(600ms);
  };
  runner::RunStats stats;
  const auto payloads = runner::run_units(
      ctx, "unit", 8,
      [](std::size_t unit, const core::CancelToken&) {
        std::this_thread::sleep_for(2ms);  // normal unit cost
        return payload_for(unit);
      },
      &stats);

  ASSERT_EQ(payloads.size(), 8u);
  for (std::size_t unit = 0; unit < 8; ++unit) EXPECT_EQ(payloads[unit], payload_for(unit));
  EXPECT_GE(stats.overdue, 1u);
  EXPECT_GE(stats.speculative_launches, 1u);
  EXPECT_GE(stats.speculative_wins, 1u);
  EXPECT_EQ(stats.units_run, 8u);
  // The straggler's unit landed in the journal exactly once, with the right
  // payload (first-result-wins, deterministic payloads).
  ASSERT_NE(journal.find("unit:3"), nullptr);
  EXPECT_EQ(*journal.find("unit:3"), payload_for(3));
  EXPECT_EQ(journal.records().size(), 8u);
}

TEST_F(RunnerTest, HardUnitDeadlineFailsTheRun) {
  parallel::ThreadPool pool{2};
  runner::RunContext ctx;
  ctx.pool = &pool;
  ctx.speculation.enabled = false;
  ctx.unit_deadline = 50ms;
  ctx.watchdog.poll = 5ms;
  EXPECT_THROW(
      (void)runner::run_units(ctx, "unit", 2,
                              [](std::size_t unit, const core::CancelToken&) {
                                if (unit == 1) std::this_thread::sleep_for(400ms);
                                return payload_for(unit);
                              }),
      core::DeadlineExceeded);
}
