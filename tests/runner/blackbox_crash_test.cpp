// Crash-path guarantees of the flight-recorder black box: a process that
// dies from a fatal signal (via FlightRecorder::arm) or is SIGKILLed after a
// checkpoint dump leaves a parseable, CRC-valid black box behind, and a
// fatal error inside run_units dumps the box before the exception escapes.
//
// Workers are this same gtest binary re-executed with a filter selecting the
// (otherwise skipped) worker tests; the box path travels via an environment
// variable — the kill_resume_tests pattern.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>

#include "hetero/core/cancel.h"
#include "hetero/core/errors.h"
#include "hetero/obs/flight_recorder.h"
#include "hetero/runner/runner.h"

#if HETERO_OBS_ENABLED

namespace core = hetero::core;
namespace obs = hetero::obs;
namespace runner = hetero::runner;
using namespace std::chrono_literals;

namespace {

constexpr const char* kBoxEnv = "HETERO_BLACKBOX_PATH";

std::string self_exe() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return {};
  buf[n] = '\0';
  return std::string{buf};
}

/// Forks + execs this binary filtered down to one worker test, with the box
/// path in the environment.  Returns the child pid.
pid_t spawn_worker(const std::string& exe, const char* worker, const std::string& box_path) {
  const pid_t child = ::fork();
  if (child == 0) {
    ::setenv(kBoxEnv, box_path.c_str(), 1);
    const std::string filter = std::string{"--gtest_filter=BlackBoxCrash."} + worker;
    char* const argv[] = {const_cast<char*>(exe.c_str()), const_cast<char*>(filter.c_str()),
                          nullptr};
    ::execv(exe.c_str(), argv);
    ::_exit(127);  // exec failed
  }
  return child;
}

bool wait_for_file(const std::string& path, std::chrono::seconds budget) {
  const auto give_up = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < give_up) {
    if (std::ifstream{path}) return true;
    std::this_thread::sleep_for(5ms);
  }
  return false;
}

class BlackBoxCrashTest : public testing::Test {
 protected:
  void SetUp() override {
    if (std::getenv(kBoxEnv) != nullptr) GTEST_SKIP() << "parent role only";
    exe_ = self_exe();
    ASSERT_FALSE(exe_.empty()) << "cannot resolve /proc/self/exe";
  }
  void TearDown() override {
    std::remove(box_.c_str());
    std::remove((box_ + ".ready").c_str());
  }

  std::string exe_;
  std::string box_ = testing::TempDir() + "blackbox_crash_" +
                     testing::UnitTest::GetInstance()->current_test_info()->name() + "." +
                     std::to_string(::getpid()) + ".blackbox";
};

}  // namespace

// Worker: arm the recorder, fill the ring with recognizable events, and die
// from an abort — the armed handler must dump the box, then re-raise.
TEST(BlackBoxCrash, SignalWorker) {
  const char* box = std::getenv(kBoxEnv);
  if (box == nullptr) GTEST_SKIP() << "worker role only";
  obs::FlightRecorder::arm(box);
  for (std::uint64_t i = 0; i < 16; ++i) {
    obs::FlightRecorder::global().record(obs::EventKind::kWatchdog, "pre-crash", i, i * 2,
                                         0.5 * static_cast<double>(i));
  }
  ::raise(SIGABRT);
}

// Worker: checkpoint-dump the box, announce readiness, then spin until the
// parent SIGKILLs us.  SIGKILL cannot be handled, so the guarantee under
// test is that the *previous* atomic dump survives the kill intact.
TEST(BlackBoxCrash, SigkillWorker) {
  const char* box = std::getenv(kBoxEnv);
  if (box == nullptr) GTEST_SKIP() << "worker role only";
  for (std::uint64_t i = 0; i < 8; ++i) {
    obs::FlightRecorder::global().record(obs::EventKind::kJournalAppend, "checkpointed", i);
  }
  ASSERT_TRUE(obs::FlightRecorder::global().dump(box, "checkpoint"));
  { std::ofstream ready{std::string{box} + ".ready"}; }
  for (;;) std::this_thread::sleep_for(50ms);
}

TEST_F(BlackBoxCrashTest, FatalSignalLeavesParseableBox) {
  const pid_t child = spawn_worker(exe_, "SignalWorker", box_);
  ASSERT_NE(child, -1);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status)) << "worker should die from the re-raised signal";
  EXPECT_EQ(WTERMSIG(status), SIGABRT);

  const obs::BlackBox loaded = obs::load_black_box(box_);
  EXPECT_EQ(loaded.reason, "signal " + std::to_string(SIGABRT));
  EXPECT_EQ(loaded.torn_lines, 0u);
  // The 16 pre-crash events must all be there, in order and bit-exact.
  std::size_t seen = 0;
  for (const auto& event : loaded.events) {
    if (std::string{event.name} != "pre-crash") continue;
    EXPECT_EQ(event.kind, obs::EventKind::kWatchdog);
    EXPECT_EQ(event.a, seen);
    EXPECT_EQ(event.b, seen * 2);
    EXPECT_DOUBLE_EQ(event.d, 0.5 * static_cast<double>(seen));
    ++seen;
  }
  EXPECT_EQ(seen, 16u);
}

TEST_F(BlackBoxCrashTest, SigkillKeepsTheCheckpointDumpIntact) {
  const pid_t child = spawn_worker(exe_, "SigkillWorker", box_);
  ASSERT_NE(child, -1);
  ASSERT_TRUE(wait_for_file(box_ + ".ready", 30s)) << "worker never checkpointed";
  ::kill(child, SIGKILL);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGKILL);

  const obs::BlackBox loaded = obs::load_black_box(box_);
  EXPECT_EQ(loaded.reason, "checkpoint");
  EXPECT_EQ(loaded.torn_lines, 0u);
  std::size_t seen = 0;
  for (const auto& event : loaded.events) {
    seen += std::string{event.name} == "checkpointed";
  }
  EXPECT_EQ(seen, 8u);
}

// In-process: a fatal compute error must dump the box via RunContext::
// black_box before run_units rethrows.
TEST_F(BlackBoxCrashTest, FatalErrorInRunUnitsDumpsBox) {
  obs::FlightRecorder::global().clear();
  runner::RunContext ctx;
  ctx.black_box = box_;
  EXPECT_THROW(static_cast<void>(runner::run_units(
                   ctx, "unit", 3,
                   [](std::size_t unit, const core::CancelToken&) -> std::string {
                     if (unit == 1) throw std::runtime_error{"deterministic bug"};
                     return "ok";
                   })),
               std::runtime_error);

  const obs::BlackBox loaded = obs::load_black_box(box_);
  EXPECT_EQ(loaded.reason, "fault");
  EXPECT_EQ(loaded.torn_lines, 0u);
  EXPECT_FALSE(loaded.events.empty());
}

// A crash-era box with a damaged tail (torn write, disk-full truncation)
// still yields its CRC-valid prefix.
TEST_F(BlackBoxCrashTest, DamagedTailKeepsValidPrefix) {
  obs::FlightRecorder::global().clear();
  for (std::uint64_t i = 0; i < 4; ++i) {
    obs::FlightRecorder::global().record(obs::EventKind::kNote, "survivor", i);
  }
  ASSERT_TRUE(obs::FlightRecorder::global().dump(box_.c_str(), "torn"));
  {
    std::ofstream append{box_, std::ios::app};
    append << "{\"s\":99,\"t\":0,\"k\":\"note\",\"n\":\"forged\",\"a\"";  // torn line
  }
  const obs::BlackBox loaded = obs::load_black_box(box_);
  EXPECT_EQ(loaded.reason, "torn");
  EXPECT_EQ(loaded.torn_lines, 1u);
  std::size_t survivors = 0;
  for (const auto& event : loaded.events) survivors += std::string{event.name} == "survivor";
  EXPECT_EQ(survivors, 4u);
}

#else  // !HETERO_OBS_ENABLED

TEST(BlackBoxCrash, SkippedWhenObsDisabled) { GTEST_SKIP() << "obs disabled"; }

#endif  // HETERO_OBS_ENABLED
