// Causal observability of run_units: every attempt becomes a span in a
// deterministic tree, winners append "!obs:" telemetry sidecar records, and
// the Chrome-trace exporter turns the parent links into flow pairs.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "hetero/core/errors.h"
#include "hetero/obs/chrome_trace.h"
#include "hetero/obs/scope.h"
#include "hetero/obs/trace_context.h"
#include "hetero/runner/codec.h"
#include "hetero/runner/journal.h"
#include "hetero/runner/runner.h"

#if HETERO_OBS_ENABLED

namespace core = hetero::core;
namespace obs = hetero::obs;
namespace runner = hetero::runner;

namespace {

std::string compute(std::size_t unit, const core::CancelToken&) {
  return "payload-" + std::to_string(unit);
}

runner::JournalHeader test_header(std::uint64_t seed) {
  runner::JournalHeader header;
  header.tool = "runner_trace_test";
  header.seed = seed;
  header.fingerprint = runner::fingerprint_of("runner trace test config");
  return header;
}

/// Spans recorded by one run, with the global collector isolated around it.
std::vector<obs::Span> spans_of_run(runner::RunContext& ctx, std::size_t count,
                                    const std::function<std::string(std::size_t,
                                                                    const core::CancelToken&)>& fn,
                                    runner::RunStats* stats = nullptr) {
  obs::SpanCollector::global().clear();
  const auto payloads = runner::run_units(ctx, "unit", count, fn, stats);
  EXPECT_EQ(payloads.size(), count);
  return obs::SpanCollector::global().snapshot();
}

const obs::Span* find_span(const std::vector<obs::Span>& spans, const char* name,
                           std::size_t unit) {
  for (const auto& span : spans) {
    if (span.name == name && span.unit == unit) return &span;
  }
  return nullptr;
}

class RunnerTraceTest : public testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = testing::TempDir() + "runner_trace_test_" +
                      testing::UnitTest::GetInstance()->current_test_info()->name() + "." +
                      std::to_string(::getpid()) + ".journal";
};

}  // namespace

TEST_F(RunnerTraceTest, PrimariesHangOffDeterministicRoot) {
  runner::Journal journal = runner::Journal::open_or_resume(path_, test_header(42));
  runner::RunContext ctx;
  ctx.journal = &journal;
  const auto spans = spans_of_run(ctx, 4, compute);

  const obs::TraceContext root = obs::trace_root(42);
  // Exactly one run-root span, carrying the seed-derived ids.
  const auto is_root = [&](const obs::Span& s) { return s.name == std::string("runner.run"); };
  ASSERT_EQ(std::count_if(spans.begin(), spans.end(), is_root), 1);
  const auto root_span = std::find_if(spans.begin(), spans.end(), is_root);
  EXPECT_EQ(root_span->trace_id, root.trace_id);
  EXPECT_EQ(root_span->span_id, root.span_id);

  for (std::size_t unit = 0; unit < 4; ++unit) {
    const obs::Span* attempt = find_span(spans, "runner.attempt", unit);
    ASSERT_NE(attempt, nullptr) << "unit " << unit;
    EXPECT_EQ(attempt->trace_id, root.trace_id);
    EXPECT_EQ(attempt->span_id, obs::derive_span_id(root, unit));
    EXPECT_EQ(attempt->parent_id, root.span_id);
    EXPECT_EQ(attempt->attempt, 0u);
    EXPECT_STREQ(attempt->outcome, obs::outcome::kOk);
    EXPECT_GE(attempt->end_ns, attempt->start_ns);
  }
}

TEST_F(RunnerTraceTest, SpanIdsAreIdenticalAcrossReruns) {
  const auto ids_of = [&](const std::string& journal_path) {
    runner::Journal journal = runner::Journal::open_or_resume(journal_path, test_header(7));
    runner::RunContext ctx;
    ctx.journal = &journal;
    const auto spans = spans_of_run(ctx, 6, compute);
    std::set<std::uint64_t> ids;
    for (const auto& span : spans) ids.insert(span.span_id);
    return ids;
  };
  const auto first = ids_of(path_);
  std::remove(path_.c_str());
  const auto second = ids_of(path_);
  EXPECT_EQ(first, second);
}

TEST_F(RunnerTraceTest, WinnersAppendTelemetrySidecarRecords) {
  runner::Journal journal = runner::Journal::open_or_resume(path_, test_header(42));
  runner::RunContext ctx;
  ctx.journal = &journal;
  (void)spans_of_run(ctx, 3, compute);

  // Unit records and telemetry live in disjoint views of the same file.
  EXPECT_EQ(journal.records().size(), 3u);
  const auto sidecar = journal.sidecar();
  ASSERT_EQ(sidecar.size(), 3u);
  for (std::size_t unit = 0; unit < 3; ++unit) {
    const std::string key = "!obs:unit:" + std::to_string(unit);
    const auto it = sidecar.find(key);
    ASSERT_NE(it, sidecar.end()) << key;
    runner::FieldReader reader{it->second};
    EXPECT_EQ(reader.u64(), unit);
    EXPECT_GE(reader.d(), 0.0);             // wall seconds
    EXPECT_EQ(reader.u64(), 1u);            // attempts
    EXPECT_EQ(reader.u64(), 0u);            // retries
    EXPECT_EQ(reader.u64(), obs::outcome::code(obs::outcome::kOk));
    reader.expect_done();
  }
}

TEST_F(RunnerTraceTest, RetriedUnitIsTaggedRetry) {
  runner::Journal journal = runner::Journal::open_or_resume(path_, test_header(42));
  runner::RunContext ctx;
  ctx.journal = &journal;
  ctx.retry = core::Backoff{1e-4, 2.0, 3, 0.0};
  int attempts = 0;
  runner::RunStats stats;
  const auto spans = spans_of_run(
      ctx, 2,
      [&](std::size_t unit, const core::CancelToken& token) {
        if (unit == 1 && attempts++ < 2) throw core::TransientError{"flaky backend"};
        return compute(unit, token);
      },
      &stats);
  EXPECT_EQ(stats.retries, 2u);

  const obs::Span* healthy = find_span(spans, "runner.attempt", 0);
  ASSERT_NE(healthy, nullptr);
  EXPECT_STREQ(healthy->outcome, obs::outcome::kOk);
  const obs::Span* flaky = find_span(spans, "runner.attempt", 1);
  ASSERT_NE(flaky, nullptr);
  EXPECT_STREQ(flaky->outcome, obs::outcome::kRetry);

  runner::FieldReader reader{*journal.find("!obs:unit:1")};
  EXPECT_EQ(reader.u64(), 1u);
  (void)reader.d();
  (void)reader.u64();
  EXPECT_EQ(reader.u64(), 2u);  // retries
  EXPECT_EQ(reader.u64(), obs::outcome::code(obs::outcome::kRetry));
}

TEST_F(RunnerTraceTest, NestedScopesJoinTheAttemptTree) {
  runner::RunContext ctx;  // unjournaled: root derives from the key prefix
  const auto spans = spans_of_run(ctx, 2, [](std::size_t unit, const core::CancelToken&) {
    HETERO_OBS_SCOPE("inner.work");
    return compute(unit, {});
  });
  for (std::size_t unit = 0; unit < 2; ++unit) {
    const obs::Span* attempt = find_span(spans, "runner.attempt", unit);
    ASSERT_NE(attempt, nullptr);
    const auto nested = std::find_if(spans.begin(), spans.end(), [&](const obs::Span& s) {
      return s.name == std::string("inner.work") && s.parent_id == attempt->span_id;
    });
    ASSERT_NE(nested, spans.end()) << "unit " << unit;
    EXPECT_EQ(nested->trace_id, attempt->trace_id);
  }
}

TEST_F(RunnerTraceTest, FlowExportDrawsOneArrowPerAttempt) {
  runner::Journal journal = runner::Journal::open_or_resume(path_, test_header(42));
  runner::RunContext ctx;
  ctx.journal = &journal;
  const auto spans = spans_of_run(ctx, 5, compute);

  const auto flows = obs::flow_events_from_spans(spans);
  // Each of the 5 primaries links to the run root: an 's' and an 'f' each.
  std::size_t starts = 0;
  std::size_t finishes = 0;
  std::set<std::uint64_t> flow_ids;
  for (const auto& event : flows) {
    ASSERT_TRUE(event.phase == 's' || event.phase == 'f');
    ASSERT_NE(event.flow_id, 0u);
    flow_ids.insert(event.flow_id);
    (event.phase == 's' ? starts : finishes)++;
  }
  EXPECT_EQ(starts, 5u);
  EXPECT_EQ(finishes, 5u);
  EXPECT_EQ(flow_ids.size(), 5u);
}

#endif  // HETERO_OBS_ENABLED
