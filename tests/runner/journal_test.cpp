#include <gtest/gtest.h>

#include <unistd.h>

#include <bit>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "hetero/core/errors.h"
#include "hetero/runner/codec.h"
#include "hetero/runner/journal.h"

namespace core = hetero::core;
namespace runner = hetero::runner;

namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "journal_test_" + name + "." +
         std::to_string(::getpid()) + ".journal";
}

runner::JournalHeader test_header() {
  runner::JournalHeader header;
  header.tool = "journal_test";
  header.seed = 42;
  header.fingerprint = runner::fingerprint_of("canonical config v1");
  header.invocation = "faults\n<1, 1/2>\n100";
  return header;
}

std::string read_file(const std::string& path) {
  std::ifstream in{path};
  return std::string{std::istreambuf_iterator<char>{in}, std::istreambuf_iterator<char>{}};
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out{path, std::ios::trunc};
  out << content;
}

class JournalTest : public testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = temp_path(testing::UnitTest::GetInstance()->current_test_info()->name());
};

}  // namespace

TEST(Crc32, MatchesTheIeeeCheckValue) {
  // The standard CRC-32 check string.
  EXPECT_EQ(runner::crc32("123456789"), 0xcbf43926u);
  EXPECT_EQ(runner::crc32(""), 0u);
}

TEST_F(JournalTest, CreateAppendReload) {
  {
    runner::Journal journal = runner::Journal::create(path_, test_header());
    journal.append("cell:0", "payload zero");
    journal.append("cell:1", "payload one");
  }
  runner::Journal reloaded = runner::Journal::open(path_);
  EXPECT_EQ(reloaded.header().tool, "journal_test");
  EXPECT_EQ(reloaded.header().seed, 42u);
  EXPECT_EQ(reloaded.header().invocation, "faults\n<1, 1/2>\n100");
  ASSERT_EQ(reloaded.records().size(), 2u);
  ASSERT_NE(reloaded.find("cell:0"), nullptr);
  EXPECT_EQ(*reloaded.find("cell:0"), "payload zero");
  EXPECT_EQ(*reloaded.find("cell:1"), "payload one");
  EXPECT_EQ(reloaded.find("cell:2"), nullptr);
  EXPECT_EQ(reloaded.dropped_records(), 0u);
}

TEST_F(JournalTest, CreateRefusesExistingFile) {
  { runner::Journal journal = runner::Journal::create(path_, test_header()); }
  EXPECT_THROW((void)runner::Journal::create(path_, test_header()), core::FatalError);
}

TEST_F(JournalTest, OpenOrResumeCreatesThenResumes) {
  {
    runner::Journal journal = runner::Journal::open_or_resume(path_, test_header());
    journal.append("cell:0", "done");
  }
  runner::Journal resumed = runner::Journal::open_or_resume(path_, test_header());
  EXPECT_EQ(resumed.records().size(), 1u);
}

TEST_F(JournalTest, OpenOrResumeRefusesMismatchedConfig) {
  { runner::Journal journal = runner::Journal::create(path_, test_header()); }
  runner::JournalHeader other = test_header();
  other.fingerprint = runner::fingerprint_of("canonical config v2");
  EXPECT_THROW((void)runner::Journal::open_or_resume(path_, other), core::FatalError);
  other = test_header();
  other.seed = 43;
  EXPECT_THROW((void)runner::Journal::open_or_resume(path_, other), core::FatalError);
  other = test_header();
  other.tool = "someone_else";
  EXPECT_THROW((void)runner::Journal::open_or_resume(path_, other), core::FatalError);
}

TEST_F(JournalTest, CorruptRecordDropsTheTail) {
  {
    runner::Journal journal = runner::Journal::create(path_, test_header());
    journal.append("cell:0", "keep me");
    journal.append("cell:1", "about to be damaged");
    journal.append("cell:2", "behind the damage");
  }
  // Flip one payload byte of the middle record; its CRC no longer matches,
  // and everything from there on is untrusted.
  std::string content = read_file(path_);
  const std::size_t pos = content.find("about");
  ASSERT_NE(pos, std::string::npos);
  content[pos] = 'X';
  write_file(path_, content);

  runner::Journal reloaded = runner::Journal::open(path_);
  EXPECT_EQ(reloaded.records().size(), 1u);
  ASSERT_NE(reloaded.find("cell:0"), nullptr);
  EXPECT_EQ(reloaded.dropped_records(), 2u);
}

TEST_F(JournalTest, TornTailIsTolerated) {
  {
    runner::Journal journal = runner::Journal::create(path_, test_header());
    journal.append("cell:0", "complete");
    journal.append("cell:1", "will be torn");
  }
  // Simulate a crash mid-append: cut the file in the middle of the last line.
  std::string content = read_file(path_);
  write_file(path_, content.substr(0, content.size() - 9));

  {
    runner::Journal reloaded = runner::Journal::open(path_);
    EXPECT_EQ(reloaded.records().size(), 1u);
    EXPECT_EQ(reloaded.dropped_records(), 1u);
    // And the journal is still appendable after the torn load.
    reloaded.append("cell:1", "rewritten");
    EXPECT_EQ(reloaded.records().size(), 2u);
  }
  // open() must have truncated the torn bytes on disk, so a second open
  // (a second crash/resume cycle) still sees BOTH records — not just the
  // ones from before the first crash.
  runner::Journal reopened = runner::Journal::open(path_);
  EXPECT_EQ(reopened.dropped_records(), 0u);
  ASSERT_EQ(reopened.records().size(), 2u);
  ASSERT_NE(reopened.find("cell:0"), nullptr);
  EXPECT_EQ(*reopened.find("cell:0"), "complete");
  ASSERT_NE(reopened.find("cell:1"), nullptr);
  EXPECT_EQ(*reopened.find("cell:1"), "rewritten");
}

TEST_F(JournalTest, TailCutExactlyBeforeTheNewlineKeepsTheRecord) {
  {
    runner::Journal journal = runner::Journal::create(path_, test_header());
    journal.append("cell:0", "complete");
    journal.append("cell:1", "newline lost");
  }
  // Crash after the record bytes but before the trailing '\n': the record is
  // whole, only its terminator is missing.
  std::string content = read_file(path_);
  ASSERT_EQ(content.back(), '\n');
  write_file(path_, content.substr(0, content.size() - 1));

  {
    runner::Journal reloaded = runner::Journal::open(path_);
    EXPECT_EQ(reloaded.records().size(), 2u);
    EXPECT_EQ(reloaded.dropped_records(), 0u);
    // The next append must not be glued onto the unterminated line.
    reloaded.append("cell:2", "after repair");
  }
  runner::Journal reopened = runner::Journal::open(path_);
  EXPECT_EQ(reopened.dropped_records(), 0u);
  ASSERT_EQ(reopened.records().size(), 3u);
  EXPECT_EQ(*reopened.find("cell:1"), "newline lost");
  EXPECT_EQ(*reopened.find("cell:2"), "after repair");
}

TEST_F(JournalTest, MidFileCorruptionIsHealedOnOpen) {
  {
    runner::Journal journal = runner::Journal::create(path_, test_header());
    journal.append("cell:0", "keep me");
    journal.append("cell:1", "about to be damaged");
  }
  std::string content = read_file(path_);
  const std::size_t pos = content.find("about");
  ASSERT_NE(pos, std::string::npos);
  content[pos] = 'X';
  write_file(path_, content);

  {
    runner::Journal reloaded = runner::Journal::open(path_);
    EXPECT_EQ(reloaded.records().size(), 1u);
    EXPECT_EQ(reloaded.dropped_records(), 1u);
    // Re-running the dropped unit appends after the healed tail...
    reloaded.append("cell:1", "recomputed");
  }
  // ...and the re-appended record is visible on every later open: the
  // journal self-heals instead of permanently dropping post-damage appends.
  runner::Journal reopened = runner::Journal::open(path_);
  EXPECT_EQ(reopened.dropped_records(), 0u);
  ASSERT_EQ(reopened.records().size(), 2u);
  EXPECT_EQ(*reopened.find("cell:0"), "keep me");
  EXPECT_EQ(*reopened.find("cell:1"), "recomputed");
}

TEST_F(JournalTest, CorruptHeaderRefusesToOpen) {
  { runner::Journal journal = runner::Journal::create(path_, test_header()); }
  std::string content = read_file(path_);
  const std::size_t pos = content.find("journal_test");
  ASSERT_NE(pos, std::string::npos);
  content[pos] = 'J';  // breaks the header CRC
  write_file(path_, content);
  EXPECT_THROW((void)runner::Journal::open(path_), core::FatalError);
}

TEST_F(JournalTest, DuplicateKeysKeepTheFirstOccurrence) {
  {
    runner::Journal journal = runner::Journal::create(path_, test_header());
    journal.append("cell:0", "first");
  }
  {
    // A speculative twin finishing late appends the same key again.
    runner::Journal journal = runner::Journal::open(path_);
    journal.append("cell:0", "second");
  }
  runner::Journal reloaded = runner::Journal::open(path_);
  ASSERT_EQ(reloaded.records().size(), 1u);
  EXPECT_EQ(*reloaded.find("cell:0"), "first");
}

TEST_F(JournalTest, EscapedCharactersRoundTrip) {
  const std::string nasty = "quote\" backslash\\ tab\t cr\r bell\x07 end";
  {
    runner::Journal journal = runner::Journal::create(path_, test_header());
    journal.append("weird", nasty);
  }
  runner::Journal reloaded = runner::Journal::open(path_);
  ASSERT_NE(reloaded.find("weird"), nullptr);
  EXPECT_EQ(*reloaded.find("weird"), nasty);
}

TEST_F(JournalTest, NewlinesInKeysAreRejected) {
  runner::Journal journal = runner::Journal::create(path_, test_header());
  EXPECT_THROW(journal.append("bad\nkey", "payload"), core::FatalError);
  EXPECT_THROW(journal.append("key", "bad\npayload"), core::FatalError);
}

TEST(Codec, DoubleBitsRoundTripExactly) {
  const double values[] = {0.0,          -0.0,         1.0,
                           -1.0,         0.1,          3.141592653589793,
                           1e-308,       1.7976931348623157e308, 5e-324};
  for (double v : values) {
    const std::string hex = runner::encode_double_bits(v);
    EXPECT_EQ(hex.size(), 16u);
    const double back = runner::decode_double_bits(hex);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back), std::bit_cast<std::uint64_t>(v));
  }
  // NaN round-trips bit-exactly too (payload preserved).
  const double nan = std::bit_cast<double>(0x7ff8000000001234ull);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(runner::decode_double_bits(
                runner::encode_double_bits(nan))),
            0x7ff8000000001234ull);
}

TEST(Codec, WriterReaderRoundTrip) {
  runner::FieldWriter w;
  w.add_u64(7);
  w.add_double(0.25);
  const std::vector<double> xs{1.5, -2.5, 0.0};
  w.add_doubles(xs);
  runner::FieldReader r{w.str()};
  EXPECT_EQ(r.u64(), 7u);
  EXPECT_DOUBLE_EQ(r.d(), 0.25);
  std::vector<double> back;
  r.doubles(back);
  EXPECT_EQ(back, xs);
  EXPECT_NO_THROW(r.expect_done());
}

TEST(Codec, MalformedPayloadsThrowFatal) {
  runner::FieldReader short_read{"12"};
  EXPECT_EQ(short_read.u64(), 12u);
  EXPECT_THROW((void)short_read.u64(), core::FatalError);

  runner::FieldReader bad_int{"12x"};
  EXPECT_THROW((void)bad_int.u64(), core::FatalError);

  runner::FieldReader bad_double{"not16hexchars"};
  EXPECT_THROW((void)bad_double.d(), core::FatalError);

  runner::FieldReader trailing{"1 2"};
  EXPECT_EQ(trailing.u64(), 1u);
  EXPECT_THROW(trailing.expect_done(), core::FatalError);
}
