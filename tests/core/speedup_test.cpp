#include "hetero/core/speedup.h"

#include <gtest/gtest.h>

#include <random>

#include "hetero/core/power.h"

namespace hetero::core {
namespace {

const Environment kEnv = Environment::paper_default();

TEST(AdditiveSpeedup, Theorem3FastestMachineAlwaysWins) {
  // The paper's Table-4 cluster plus random clusters: the best additive
  // upgrade target must always be the fastest machine (largest power index).
  const Profile table4{{1.0, 0.5, 1.0 / 3.0, 0.25}};
  const auto eval = evaluate_additive_upgrades(table4, 1.0 / 16.0, kEnv);
  EXPECT_EQ(eval.best_power_index, table4.size() - 1);

  std::mt19937_64 gen{31};
  std::uniform_real_distribution<double> dist{0.2, 1.0};
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<double> rho(5);
    for (double& v : rho) v = dist(gen);
    const Profile p{rho};
    const double phi = 0.5 * p.fastest();
    const auto random_eval = evaluate_additive_upgrades(p, phi, kEnv);
    EXPECT_EQ(random_eval.best_power_index, p.size() - 1) << p;
  }
}

TEST(AdditiveSpeedup, XGainsAreMonotoneInMachineSpeed) {
  // Stronger form of Theorem 3 visible in Table 4: gains rise with speed.
  const Profile p{{1.0, 0.5, 1.0 / 3.0, 0.25}};
  const auto eval = evaluate_additive_upgrades(p, 1.0 / 16.0, kEnv);
  for (std::size_t k = 0; k + 1 < eval.x_by_target.size(); ++k) {
    EXPECT_LT(eval.x_by_target[k], eval.x_by_target[k + 1]) << k;
  }
}

TEST(AdditiveSpeedup, ValidatesPhi) {
  const Profile p{{1.0, 0.25}};
  EXPECT_THROW((void)evaluate_additive_upgrades(p, 0.25, kEnv), std::invalid_argument);
  EXPECT_THROW((void)evaluate_additive_upgrades(p, 0.0, kEnv), std::invalid_argument);
  EXPECT_NO_THROW(evaluate_additive_upgrades(p, 0.2, kEnv));
}

TEST(MultiplicativeSpeedup, Theorem4PredicateMatchesDefinition) {
  // With Table-1 parameters the threshold is ~1.1e-11, so ordinary speeds
  // always favor the faster machine...
  EXPECT_TRUE(theorem4_favors_faster(1.0, 0.5, 0.5, kEnv));
  // ...until machines are "very fast" or the factor "very aggressive".
  EXPECT_FALSE(theorem4_favors_faster(1e-6, 5e-7, 0.5, kEnv));
  EXPECT_THROW((void)theorem4_favors_faster(0.5, 0.5, 0.5, kEnv), std::invalid_argument);
  EXPECT_THROW((void)theorem4_favors_faster(0.4, 0.5, 0.5, kEnv), std::invalid_argument);
  EXPECT_THROW((void)theorem4_favors_faster(1.0, 0.5, 1.0, kEnv), std::invalid_argument);
}

TEST(MultiplicativeSpeedup, PredicateAgreesWithDirectXComparison) {
  // Theorem 4 is an iff: check its verdict against brute-force X comparison
  // across both regimes.  Use a 2-machine cluster so i and j are the only
  // machines (the theorem's Y, Z terms cancel for any cluster, but this
  // makes the comparison crisp).
  struct Case {
    double rho_i, rho_j, psi;
  };
  const Environment env{Environment::Params{.tau = 0.2, .pi = 0.01, .delta = 1.0}};
  const double threshold = env.theorem4_threshold();
  const std::vector<Case> cases{
      {1.0, 0.5, 0.5},      // far above threshold
      {0.2, 0.1, 0.9},      // above
      {0.05, 0.02, 0.04},   // near/below
      {0.02, 0.01, 0.05},   // below
  };
  for (const Case& c : cases) {
    const Profile p{{c.rho_i, c.rho_j}};
    const double x_speed_slower =
        x_measure(std::vector<double>{c.rho_i * c.psi, c.rho_j}, env);
    const double x_speed_faster =
        x_measure(std::vector<double>{c.rho_i, c.rho_j * c.psi}, env);
    const bool faster_wins = x_speed_faster > x_speed_slower;
    EXPECT_EQ(faster_wins, c.psi * c.rho_i * c.rho_j > threshold)
        << c.rho_i << " " << c.rho_j << " " << c.psi;
    EXPECT_EQ(theorem4_favors_faster(c.rho_i, c.rho_j, c.psi, env), faster_wins);
  }
}

TEST(MultiplicativeSpeedup, EvaluateUpgradesPicksExpectedTarget) {
  const Profile p{{1.0, 0.5, 0.25}};
  const auto eval = evaluate_multiplicative_upgrades(p, 0.5, kEnv);
  // Normal regime: the fastest machine is the best multiplicative target.
  EXPECT_EQ(eval.best_power_index, p.size() - 1);
  EXPECT_THROW((void)evaluate_multiplicative_upgrades(p, 1.0, kEnv), std::invalid_argument);
}

TEST(GreedyPlan, TracksMachineIdentityAcrossRounds) {
  auto plan = greedy_upgrade_plan({1.0, 1.0, 1.0, 1.0}, UpgradeKind::kMultiplicative, 0.5, 3,
                                  kEnv);
  ASSERT_EQ(plan.size(), 3u);
  // Round 1 is a 4-way tie, broken to the largest machine index (paper's rule).
  EXPECT_EQ(plan[0].machine, 3u);
  EXPECT_DOUBLE_EQ(plan[0].speeds_after[3], 0.5);
  // Condition (1) then keeps choosing the same (fastest) machine.
  EXPECT_EQ(plan[1].machine, 3u);
  EXPECT_EQ(plan[2].machine, 3u);
  EXPECT_DOUBLE_EQ(plan[2].speeds_after[3], 0.125);
  // X must improve monotonically.
  EXPECT_LT(plan[0].x_after, plan[1].x_after);
  EXPECT_LT(plan[1].x_after, plan[2].x_after);
}

TEST(GreedyPlan, AdditiveStopsWhenPhiNoLongerFits) {
  // phi = 0.4 fits each machine at most twice; after every machine drops
  // below 0.4 the plan must stop early rather than create nonpositive rho.
  auto plan = greedy_upgrade_plan({0.5, 0.5}, UpgradeKind::kAdditive, 0.4, 10, kEnv);
  ASSERT_FALSE(plan.empty());
  EXPECT_LT(plan.size(), 10u);
  for (const auto& step : plan) {
    for (double v : step.speeds_after) EXPECT_GT(v, 0.0);
  }
}

TEST(GreedyPlan, ZeroRoundsIsEmpty) {
  EXPECT_TRUE(greedy_upgrade_plan({1.0}, UpgradeKind::kMultiplicative, 0.5, 0, kEnv).empty());
  EXPECT_THROW((void)greedy_upgrade_plan({1.0}, UpgradeKind::kMultiplicative, 0.5, -1, kEnv),
               std::invalid_argument);
}

TEST(GreedyPlan, AdditivePrefersFastestEachRound) {
  auto plan = greedy_upgrade_plan({1.0, 0.5, 0.25}, UpgradeKind::kAdditive, 0.05, 4, kEnv);
  ASSERT_EQ(plan.size(), 4u);
  // Machine 2 (the fastest) should be chosen every round (Theorem 3).
  for (const auto& step : plan) EXPECT_EQ(step.machine, 2u);
}

}  // namespace
}  // namespace hetero::core
