// core::batch_evaluate: every measure bit-identical to its single-profile
// entry point, serial or through a ThreadPool executor, fused or not; the
// in-order FIFO closed form bit-identical to protocol::fifo_allocations.

#include "hetero/core/batch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstddef>
#include <functional>
#include <stdexcept>
#include <vector>

#include "hetero/core/power.h"
#include "hetero/parallel/batch.h"
#include "hetero/parallel/thread_pool.h"
#include "hetero/protocol/fifo.h"
#include "hetero/random/rng.h"

namespace hetero::core {
namespace {

const Environment kEnv = Environment::paper_default();

// Profiles are generated pre-sorted into Profile's canonical nonincreasing
// order, so the span-based and Profile-based paths see the same value
// sequence and bit-identity comparisons are meaningful.
std::vector<std::vector<double>> random_profiles(std::size_t count, std::size_t n) {
  auto rng = random::Xoshiro256StarStar::for_stream(0xba7c4ba7c4ull, 7);
  std::vector<std::vector<double>> profiles(count);
  for (auto& rho : profiles) {
    rho.resize(n);
    for (double& r : rho) r = rng.uniform(0.1, 10.0);
    std::sort(rho.begin(), rho.end(), std::greater<>{});
  }
  return profiles;
}

std::vector<std::span<const double>> views_of(const std::vector<std::vector<double>>& profiles) {
  std::vector<std::span<const double>> views;
  views.reserve(profiles.size());
  for (const auto& rho : profiles) views.emplace_back(rho);
  return views;
}

TEST(BatchEvaluate, AllMeasuresBitIdenticalToSingleProfileCalls) {
  const auto profiles = random_profiles(17, 9);
  const auto views = views_of(profiles);
  BatchRequest request;
  request.x = true;
  request.work_rate = true;
  request.hecr = true;
  request.fifo_lifespan = 50.0;
  const auto measures = batch_evaluate(std::span{views}, kEnv, request);
  ASSERT_EQ(measures.size(), profiles.size());
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const Profile profile{profiles[i]};
    EXPECT_EQ(measures[i].x, x_measure(profile, kEnv));
    EXPECT_EQ(measures[i].work_rate, work_rate(profile, kEnv));
    EXPECT_EQ(measures[i].hecr, hecr(profile, kEnv));
    const std::vector<double> fifo = protocol::fifo_allocations(profiles[i], kEnv, 50.0);
    ASSERT_EQ(measures[i].fifo.size(), fifo.size());
    for (std::size_t k = 0; k < fifo.size(); ++k) EXPECT_EQ(measures[i].fifo[k], fifo[k]);
  }
}

TEST(BatchEvaluate, FusedAndSeparateSweepsAgreeBitForBit) {
  // x+hecr together runs the fused kernel; alone they run the standalone
  // kernels.  All three must agree exactly.
  const auto profiles = random_profiles(8, 23);
  const auto views = views_of(profiles);
  BatchRequest both;
  both.x = true;
  both.hecr = true;
  BatchRequest x_only;
  x_only.x = true;
  BatchRequest hecr_only;
  hecr_only.x = false;
  hecr_only.hecr = true;
  const auto fused = batch_evaluate(std::span{views}, kEnv, both);
  const auto xs = batch_evaluate(std::span{views}, kEnv, x_only);
  const auto hecrs = batch_evaluate(std::span{views}, kEnv, hecr_only);
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    EXPECT_EQ(fused[i].x, xs[i].x);
    EXPECT_EQ(fused[i].hecr, hecrs[i].hecr);
  }
}

TEST(BatchEvaluate, PoolExecutorMatchesSerialBitForBit) {
  const auto profiles = random_profiles(64, 12);
  const auto views = views_of(profiles);
  BatchRequest request;
  request.x = true;
  request.work_rate = true;
  request.hecr = true;
  const auto serial = batch_evaluate(std::span{views}, kEnv, request);
  parallel::ThreadPool pool{4};
  const auto parallel_out =
      batch_evaluate(std::span{views}, kEnv, request, parallel::pool_executor(pool));
  ASSERT_EQ(serial.size(), parallel_out.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].x, parallel_out[i].x);
    EXPECT_EQ(serial[i].work_rate, parallel_out[i].work_rate);
    EXPECT_EQ(serial[i].hecr, parallel_out[i].hecr);
  }
}

TEST(BatchEvaluate, ProfileOverloadMatchesSpanOverload) {
  const auto raw = random_profiles(5, 6);
  std::vector<Profile> profiles;
  for (const auto& rho : raw) profiles.emplace_back(rho);
  BatchRequest request;
  request.x = true;
  request.hecr = true;
  const auto by_profile = batch_evaluate(std::span<const Profile>{profiles}, kEnv, request);
  // Profile sorts into canonical order; compare against its own values().
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    EXPECT_EQ(by_profile[i].x, x_measure(profiles[i], kEnv));
    EXPECT_EQ(by_profile[i].hecr, hecr(profiles[i], kEnv));
  }
}

TEST(BatchEvaluate, IntoVariantRejectsSizeMismatchAndAvoidsAllocation) {
  const auto profiles = random_profiles(3, 4);
  const auto views = views_of(profiles);
  std::array<ProfileMeasures, 2> too_small;
  EXPECT_THROW(batch_evaluate_into(views, kEnv, BatchRequest{}, too_small),
               std::invalid_argument);
  std::array<ProfileMeasures, 3> out;
  batch_evaluate_into(views, kEnv, BatchRequest{}, out);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(out[i].x, x_measure(Profile{profiles[i]}, kEnv));
    EXPECT_TRUE(out[i].fifo.empty());  // no FIFO request: slot untouched
  }
}

TEST(BatchEvaluate, EmptyBatchIsFine) {
  const auto measures =
      batch_evaluate(std::span<const std::span<const double>>{}, kEnv, BatchRequest{});
  EXPECT_TRUE(measures.empty());
}

TEST(FifoAllocationsInOrder, MatchesProtocolClosedFormBitForBit) {
  const auto profiles = random_profiles(6, 8);
  for (const auto& rho : profiles) {
    const std::vector<double> want = protocol::fifo_allocations(rho, kEnv, 75.0);
    const std::vector<double> got = fifo_allocations_in_order(rho, kEnv, 75.0);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t k = 0; k < got.size(); ++k) EXPECT_EQ(got[k], want[k]);
  }
}

TEST(FifoAllocationsInOrder, ValidatesInputs) {
  EXPECT_THROW(fifo_allocations_in_order({}, kEnv, 1.0), std::invalid_argument);
  const std::vector<double> speeds{1.0, 2.0};
  EXPECT_THROW(fifo_allocations_in_order(speeds, kEnv, 0.0), std::invalid_argument);
  const std::vector<double> bad{1.0, -2.0};
  EXPECT_THROW(fifo_allocations_in_order(bad, kEnv, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace hetero::core
