#include <gtest/gtest.h>

#include <chrono>

#include "hetero/core/cancel.h"

namespace core = hetero::core;
using namespace std::chrono_literals;

TEST(CancelToken, DefaultTokenIsInert) {
  const core::CancelToken token;
  EXPECT_FALSE(token.stop_requested());
  EXPECT_FALSE(token.expired());
  EXPECT_FALSE(token.has_deadline());
  EXPECT_NO_THROW(token.check());
}

TEST(CancelToken, SourceCancelReachesEveryToken) {
  core::CancelSource source;
  const core::CancelToken a = source.token();
  const core::CancelToken b = source.token();
  EXPECT_FALSE(a.stop_requested());
  source.cancel();
  EXPECT_TRUE(source.cancelled());
  EXPECT_TRUE(a.stop_requested());
  EXPECT_TRUE(b.stop_requested());
  EXPECT_THROW(a.check(), core::Cancelled);
}

TEST(CancelToken, ChildTokensShareTheStopFlag) {
  core::CancelSource source;
  const core::CancelToken child = source.token().with_timeout(1h);
  EXPECT_FALSE(child.stop_requested());
  source.cancel();
  EXPECT_TRUE(child.stop_requested());
}

TEST(CancelToken, PastDeadlineExpires) {
  core::CancelSource source;
  const core::CancelToken token =
      source.token().with_deadline(core::CancelToken::Clock::now() - 1ms);
  EXPECT_TRUE(token.expired());
  EXPECT_THROW(token.check(), core::DeadlineExceeded);
  EXPECT_FALSE(token.stop_requested());  // deadline is not a cancellation
}

TEST(CancelToken, FutureDeadlineDoesNotExpire) {
  core::CancelSource source;
  const core::CancelToken token = source.token().with_timeout(1h);
  EXPECT_TRUE(token.has_deadline());
  EXPECT_FALSE(token.expired());
  EXPECT_NO_THROW(token.check());
}

TEST(CancelToken, ChildrenOnlyTightenDeadlines) {
  core::CancelSource source;
  const auto now = core::CancelToken::Clock::now();
  const core::CancelToken tight = source.token().with_deadline(now + 1s);
  const core::CancelToken loosened = tight.with_deadline(now + 1h);
  EXPECT_EQ(loosened.deadline(), tight.deadline());  // kept the earlier one
  const core::CancelToken tighter = tight.with_deadline(now + 1ms);
  EXPECT_LT(tighter.deadline(), tight.deadline());
}

TEST(CancelToken, CancellationWinsOverDeadlineInCheck) {
  core::CancelSource source;
  const core::CancelToken token =
      source.token().with_deadline(core::CancelToken::Clock::now() - 1ms);
  source.cancel();
  EXPECT_THROW(token.check(), core::Cancelled);  // stop flag checked first
}

TEST(CancelToken, RemainingBudgetTracksTheDeadline) {
  // No deadline: infinite budget.
  const core::CancelToken inert;
  EXPECT_EQ(inert.remaining(), core::CancelToken::Clock::duration::max());

  core::CancelSource source;
  const core::CancelToken token = source.token().with_timeout(1h);
  const auto remaining = token.remaining();
  EXPECT_GT(remaining, 59min);
  EXPECT_LE(remaining, 1h);

  // Expired: clamps to zero, never negative.
  const core::CancelToken expired =
      source.token().with_deadline(core::CancelToken::Clock::now() - 1ms);
  EXPECT_EQ(expired.remaining(), core::CancelToken::Clock::duration::zero());
}
