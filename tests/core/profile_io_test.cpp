#include "hetero/core/profile_io.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace hetero::core {
namespace {

TEST(ParseProfile, AcceptsThePapersAngleBracketNotation) {
  const Profile p = parse_profile("<1, 1/2, 1/3, 1/4>");
  ASSERT_EQ(p.size(), 4u);
  EXPECT_DOUBLE_EQ(p.rho(0), 1.0);
  EXPECT_DOUBLE_EQ(p.rho(1), 0.5);
  EXPECT_DOUBLE_EQ(p.rho(2), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(p.rho(3), 0.25);
}

TEST(ParseProfile, AcceptsDecimalsAndMixedSeparators) {
  EXPECT_EQ(parse_profile("1 0.5 0.25"), (Profile{{1.0, 0.5, 0.25}}));
  EXPECT_EQ(parse_profile("1,0.5,0.25"), (Profile{{1.0, 0.5, 0.25}}));
  EXPECT_EQ(parse_profile("0.99, 0.02"), (Profile{{0.99, 0.02}}));
  EXPECT_EQ(parse_profile("  <1/2>  "), Profile{{0.5}});
  EXPECT_EQ(parse_profile("3/4 1/2"), (Profile{{0.75, 0.5}}));
}

TEST(ParseProfile, RejectsMalformedInput) {
  EXPECT_THROW((void)parse_profile(""), std::invalid_argument);
  EXPECT_THROW((void)parse_profile("<>"), std::invalid_argument);
  EXPECT_THROW((void)parse_profile("1, abc"), std::invalid_argument);
  EXPECT_THROW((void)parse_profile("1/0"), std::invalid_argument);
  EXPECT_THROW((void)parse_profile("1/"), std::invalid_argument);
  EXPECT_THROW((void)parse_profile("/2"), std::invalid_argument);
  EXPECT_THROW((void)parse_profile("1.5x"), std::invalid_argument);
  EXPECT_THROW((void)parse_profile("-0.5, 1"), std::invalid_argument);  // Profile validation
  EXPECT_THROW((void)parse_profile("0, 1"), std::invalid_argument);
}

TEST(ParseProfile, RoundTripsThroughFormat) {
  const Profile original{{1.0, 0.5, 1.0 / 3.0, 0.25}};
  const std::string text = format_profile(original, 17);
  EXPECT_EQ(parse_profile(text), original);
}

TEST(FormatProfile, UsesAngleBracketsAndPrecision) {
  const Profile p{{1.0, 1.0 / 3.0}};
  EXPECT_EQ(format_profile(p, 3), "<1, 0.333>");
  EXPECT_EQ(format_profile(Profile{{0.5}}, 6), "<0.5>");
}

TEST(ParseProfile, NeverCrashesOnRandomJunk) {
  // Fuzz-ish robustness: arbitrary byte soup either parses into a valid
  // Profile or throws std::invalid_argument — never crashes or returns
  // an invalid profile.
  std::mt19937_64 gen{2468};
  const std::string alphabet = "0123456789./,<> eE+-abc\t";
  for (int trial = 0; trial < 2000; ++trial) {
    std::string text;
    const std::size_t length = gen() % 24;
    for (std::size_t i = 0; i < length; ++i) {
      text.push_back(alphabet[gen() % alphabet.size()]);
    }
    try {
      const Profile parsed = parse_profile(text);
      for (double v : parsed.values()) {
        EXPECT_GT(v, 0.0) << text;
        EXPECT_TRUE(std::isfinite(v)) << text;
      }
    } catch (const std::invalid_argument&) {
      // expected for malformed input
    } catch (const std::out_of_range&) {
      // stod overflow on absurd exponents: acceptable rejection
    }
  }
}

TEST(ParseProfile, CanonicalizesOrderLikeProfile) {
  EXPECT_EQ(parse_profile("0.25, 1, 0.5"), (Profile{{1.0, 0.5, 0.25}}));
}

}  // namespace
}  // namespace hetero::core
