#include "hetero/core/power.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "hetero/numeric/stable.h"

namespace hetero::core {
namespace {

const Environment kEnv = Environment::paper_default();

TEST(XMeasure, SingleMachineClosedForm) {
  // Formula (1) for n = 1 is just 1/(B rho + A).
  const Profile p{{0.5}};
  EXPECT_DOUBLE_EQ(x_measure(p, kEnv), 1.0 / (kEnv.b() * 0.5 + kEnv.a()));
}

TEST(XMeasure, TwoMachineHandExpansion) {
  const double r1 = 1.0;
  const double r2 = 0.5;
  const Profile p{{r1, r2}};
  const double a = kEnv.a();
  const double b = kEnv.b();
  const double td = kEnv.tau_delta();
  const double expected =
      1.0 / (b * r1 + a) + (b * r1 + td) / ((b * r1 + a) * (b * r2 + a));
  EXPECT_NEAR(x_measure(p, kEnv), expected, 1e-15 * expected);
}

TEST(XMeasure, IsPermutationInvariant) {
  // Theorem 1(2): work production — hence X — does not depend on the
  // startup order in which machines are plugged into formula (1).
  std::vector<double> rho{1.0, 0.8, 0.33, 0.21, 0.1, 0.05};
  const double base = x_measure(rho, kEnv);
  std::mt19937_64 gen{23};
  for (int trial = 0; trial < 50; ++trial) {
    std::shuffle(rho.begin(), rho.end(), gen);
    EXPECT_NEAR(x_measure(rho, kEnv), base, 1e-12 * base);
  }
}

TEST(XMeasure, StableFormMatchesDirectForm) {
  for (std::size_t n : {1u, 2u, 8u, 64u, 1024u}) {
    const Profile p = Profile::harmonic(n);
    const double direct = x_measure(p, kEnv);
    const double stable = x_measure_stable(p, kEnv);
    EXPECT_LT(numeric::relative_difference(direct, stable), 1e-11) << n;
  }
}

TEST(XMeasure, HomogeneousClosedFormMatchesGeneralFormula) {
  for (std::size_t n : {1u, 2u, 7u, 32u}) {
    for (double rho : {1.0, 0.5, 0.0625}) {
      const double general = x_measure(Profile::homogeneous(n, rho), kEnv);
      const double closed = x_homogeneous(rho, n, kEnv);
      EXPECT_LT(numeric::relative_difference(general, closed), 1e-11) << n << " " << rho;
    }
  }
}

TEST(XMeasure, MonotoneInEverySpeedup) {
  // Proposition 2: making any machine faster strictly increases X.
  const Profile p{{1.0, 0.6, 0.3}};
  const double base = x_measure(p, kEnv);
  for (std::size_t k = 0; k < p.size(); ++k) {
    EXPECT_GT(x_measure(p.with_additive_speedup(k, 0.05), kEnv), base) << k;
    EXPECT_GT(x_measure(p.with_multiplicative_speedup(k, 0.9), kEnv), base) << k;
  }
}

TEST(XMeasure, GrowsWithClusterSize) {
  // Adding a machine can only add work capacity.
  double previous = 0.0;
  for (std::size_t n = 1; n <= 20; ++n) {
    const double x = x_measure(Profile::homogeneous(n, 0.5), kEnv);
    EXPECT_GT(x, previous);
    previous = x;
  }
}

TEST(XMeasure, TelescopingIdentityHolds) {
  // (A - tau delta) X = 1 - prod (B rho + tau delta)/(B rho + A).
  const Profile p{{1.0, 0.5, 1.0 / 3.0, 0.25}};
  double product = 1.0;
  for (double r : p.values()) {
    product *= (kEnv.b() * r + kEnv.tau_delta()) / (kEnv.b() * r + kEnv.a());
  }
  EXPECT_NEAR(kEnv.a_minus_tau_delta() * x_measure(p, kEnv), 1.0 - product, 1e-15);
}

TEST(WorkProduction, MatchesTheorem2Formula) {
  const Profile p{{1.0, 0.5}};
  const double x = x_measure(p, kEnv);
  const double lifespan = 3600.0;
  EXPECT_DOUBLE_EQ(work_production(lifespan, p, kEnv),
                   lifespan / (kEnv.tau_delta() + 1.0 / x));
  EXPECT_DOUBLE_EQ(work_production(0.0, p, kEnv), 0.0);
  EXPECT_THROW((void)work_production(-1.0, p, kEnv), std::invalid_argument);
}

TEST(WorkProduction, IsLinearInLifespan) {
  const Profile p = Profile::linear(8);
  const double w1 = work_production(100.0, p, kEnv);
  const double w2 = work_production(200.0, p, kEnv);
  EXPECT_NEAR(w2, 2.0 * w1, 1e-9 * w2);
}

TEST(WorkRatio, OrderedConsistentlyWithX) {
  const Profile faster{{1.0, 0.25}};
  const Profile slower{{1.0, 0.5}};
  EXPECT_GT(work_ratio(faster, slower, kEnv), 1.0);
  EXPECT_LT(work_ratio(slower, faster, kEnv), 1.0);
  EXPECT_DOUBLE_EQ(work_ratio(faster, faster, kEnv), 1.0);
}

TEST(Hecr, HomogeneousClusterIsItsOwnEquivalent) {
  // HECR of a homogeneous cluster must be its machines' common speed.
  for (double rho : {1.0, 0.5, 0.1}) {
    for (std::size_t n : {1u, 4u, 32u}) {
      EXPECT_NEAR(hecr(Profile::homogeneous(n, rho), kEnv), rho, 1e-9 * rho) << rho << " " << n;
    }
  }
}

TEST(Hecr, ClosedFormInvertsHomogeneousX) {
  const double x = x_homogeneous(0.37, 16, kEnv);
  EXPECT_NEAR(hecr_from_x(x, 16, kEnv), 0.37, 1e-9);
}

TEST(Hecr, MatchesNumericRootFinding) {
  for (const Profile& p : {Profile::linear(8), Profile::harmonic(16), Profile{{1.0, 0.02}}}) {
    const double closed = hecr(p, kEnv);
    const double numeric_root = hecr_numeric(p, kEnv);
    EXPECT_LT(numeric::relative_difference(closed, numeric_root), 1e-7);
  }
}

TEST(Hecr, EquivalenceProperty) {
  // X(homogeneous(hecr(P), n)) == X(P): the defining property.
  const Profile p = Profile::harmonic(12);
  const double rho_c = hecr(p, kEnv);
  const double x_match = x_homogeneous(rho_c, p.size(), kEnv);
  EXPECT_LT(numeric::relative_difference(x_match, x_measure(p, kEnv)), 1e-10);
}

TEST(Hecr, StaysFiniteAndStableForHugeClusters) {
  // The naive 1 - pow(1-eps, 1/n) would lose all precision here.
  const Profile p = Profile::homogeneous(1u << 16, 0.5);
  const double value = hecr(p, kEnv);
  EXPECT_TRUE(std::isfinite(value));
  EXPECT_NEAR(value, 0.5, 1e-6);
}

TEST(Hecr, FasterClusterHasSmallerHecr) {
  const Profile faster = Profile::harmonic(8);
  const Profile slower = Profile::linear(8);
  EXPECT_LT(hecr(faster, kEnv), hecr(slower, kEnv));
}

TEST(Hecr, RejectsOutOfRangeX) {
  EXPECT_THROW((void)hecr_from_x(0.0, 4, kEnv), std::invalid_argument);
  EXPECT_THROW((void)hecr_from_x(1.01 / kEnv.a_minus_tau_delta(), 4, kEnv),
               std::invalid_argument);
  EXPECT_THROW((void)hecr_from_x(1.0, 0, kEnv), std::invalid_argument);
}

TEST(XHomogeneous, RejectsNonPositiveRho) {
  EXPECT_THROW((void)x_homogeneous(0.0, 4, kEnv), std::invalid_argument);
  EXPECT_THROW((void)x_homogeneous(-1.0, 4, kEnv), std::invalid_argument);
}

// Parameterized sweep: HECR lies between the fastest and slowest machine
// speeds for any heterogeneous profile, across environments.
class HecrBoundsTest : public ::testing::TestWithParam<std::tuple<double, double, std::size_t>> {};

TEST_P(HecrBoundsTest, HecrBoundedByExtremeSpeeds) {
  const auto [tau, pi, n] = GetParam();
  const Environment env{Environment::Params{.tau = tau, .pi = pi, .delta = 1.0}};
  const Profile p = Profile::harmonic(n);
  const double value = hecr(p, env);
  EXPECT_GT(value, p.fastest());
  EXPECT_LT(value, p.slowest());
}

INSTANTIATE_TEST_SUITE_P(
    EnvironmentSweep, HecrBoundsTest,
    ::testing::Combine(::testing::Values(1e-6, 1e-4, 1e-2),
                       ::testing::Values(1e-5, 1e-3, 1e-1),
                       ::testing::Values(std::size_t{2}, std::size_t{8}, std::size_t{64})));

}  // namespace
}  // namespace hetero::core
