#include "hetero/core/budget.h"

#include <gtest/gtest.h>

#include "hetero/core/power.h"

namespace hetero::core {
namespace {

const Environment kEnv = Environment::paper_default();

TEST(BudgetedUpgrades, ZeroBudgetBuysNothing) {
  const std::vector<double> speeds{1.0, 0.5};
  const std::vector<UpgradeOption> menu{{0, 0.5, 10.0}, {1, 0.5, 10.0}};
  const BudgetedPlan exhaustive = best_upgrades_exhaustive(speeds, menu, 0.0, kEnv);
  const BudgetedPlan greedy = best_upgrades_greedy(speeds, menu, 0.0, kEnv);
  for (const BudgetedPlan* plan : {&exhaustive, &greedy}) {
    EXPECT_TRUE(plan->chosen.empty());
    EXPECT_EQ(plan->speeds_after, speeds);
    EXPECT_DOUBLE_EQ(plan->total_cost, 0.0);
  }
}

TEST(BudgetedUpgrades, SingleAffordableUpgradeMatchesTheorem3) {
  // One upgrade affordable per machine, equal prices: the exhaustive plan
  // must pick the fastest machine (Theorem 3's multiplicative analog in the
  // normal regime), and greedy must agree.
  const std::vector<double> speeds{1.0, 0.5, 0.25};
  const std::vector<UpgradeOption> menu{{0, 0.5, 10.0}, {1, 0.5, 10.0}, {2, 0.5, 10.0}};
  const auto exhaustive = best_upgrades_exhaustive(speeds, menu, 10.0, kEnv);
  const auto greedy = best_upgrades_greedy(speeds, menu, 10.0, kEnv);
  ASSERT_EQ(exhaustive.chosen.size(), 1u);
  EXPECT_EQ(menu[exhaustive.chosen[0]].machine, 2u);
  EXPECT_EQ(greedy.chosen, exhaustive.chosen);
}

TEST(BudgetedUpgrades, ExhaustiveNeverLosesToGreedy) {
  const std::vector<double> speeds{1.0, 0.7, 0.4, 0.2};
  const std::vector<UpgradeOption> menu{
      {0, 0.5, 8.0}, {1, 0.6, 5.0}, {2, 0.5, 7.0}, {3, 0.5, 12.0},
      {3, 0.7, 4.0}, {1, 0.4, 9.0},
  };
  for (double budget : {4.0, 9.0, 15.0, 25.0, 45.0}) {
    const auto exhaustive = best_upgrades_exhaustive(speeds, menu, budget, kEnv);
    const auto greedy = best_upgrades_greedy(speeds, menu, budget, kEnv);
    EXPECT_GE(exhaustive.x_after, greedy.x_after * (1.0 - 1e-12)) << budget;
    EXPECT_LE(exhaustive.total_cost, budget);
    EXPECT_LE(greedy.total_cost, budget);
  }
}

TEST(BudgetedUpgrades, UnlimitedBudgetBuysEverything) {
  const std::vector<double> speeds{1.0, 0.5};
  const std::vector<UpgradeOption> menu{{0, 0.5, 1.0}, {1, 0.5, 1.0}, {1, 0.8, 1.0}};
  const auto plan = best_upgrades_exhaustive(speeds, menu, 100.0, kEnv);
  EXPECT_EQ(plan.chosen.size(), menu.size());  // every option strictly helps
  // Options on the same machine compose multiplicatively.
  EXPECT_DOUBLE_EQ(plan.speeds_after[1], 0.5 * 0.5 * 0.8);
  EXPECT_DOUBLE_EQ(plan.speeds_after[0], 0.5);
  EXPECT_NEAR(plan.x_after, x_measure(plan.speeds_after, kEnv), 1e-12);
}

TEST(BudgetedUpgrades, PrefersCheaperPlanOnTies) {
  // Two identical upgrades at different prices: only the cheap one is taken.
  const std::vector<double> speeds{1.0, 0.5};
  const std::vector<UpgradeOption> menu{{1, 0.5, 3.0}, {1, 0.5, 9.0}};
  const auto plan = best_upgrades_exhaustive(speeds, menu, 9.0, kEnv);
  ASSERT_EQ(plan.chosen.size(), 1u);
  EXPECT_EQ(plan.chosen[0], 0u);
  EXPECT_DOUBLE_EQ(plan.total_cost, 3.0);
}

TEST(BudgetedUpgrades, GreedyCanBeFooledButStaysClose) {
  // A knapsack trap: one expensive excellent option vs two cheap mediocre
  // ones.  Whatever greedy picks, it must stay within a modest factor of
  // the exhaustive optimum on the X *gain*.
  const std::vector<double> speeds{1.0, 0.5, 0.25};
  const std::vector<UpgradeOption> menu{
      {2, 0.25, 10.0},  // big win, whole budget
      {0, 0.55, 5.0},
      {1, 0.55, 5.0},
  };
  const double base = x_measure(speeds, kEnv);
  const auto exhaustive = best_upgrades_exhaustive(speeds, menu, 10.0, kEnv);
  const auto greedy = best_upgrades_greedy(speeds, menu, 10.0, kEnv);
  const double exact_gain = exhaustive.x_after - base;
  const double greedy_gain = greedy.x_after - base;
  EXPECT_GT(exact_gain, 0.0);
  EXPECT_GE(greedy_gain, 0.25 * exact_gain);
}

TEST(BudgetedUpgrades, Validation) {
  const std::vector<double> speeds{1.0};
  const std::vector<UpgradeOption> menu{{0, 0.5, 1.0}};
  EXPECT_THROW((void)best_upgrades_exhaustive({}, menu, 1.0, kEnv), std::invalid_argument);
  EXPECT_THROW((void)best_upgrades_exhaustive(speeds, {{5, 0.5, 1.0}}, 1.0, kEnv),
               std::invalid_argument);
  EXPECT_THROW((void)best_upgrades_exhaustive(speeds, {{0, 1.0, 1.0}}, 1.0, kEnv),
               std::invalid_argument);
  EXPECT_THROW((void)best_upgrades_exhaustive(speeds, {{0, 0.5, 0.0}}, 1.0, kEnv),
               std::invalid_argument);
  EXPECT_THROW((void)best_upgrades_exhaustive(speeds, menu, -1.0, kEnv), std::invalid_argument);
  EXPECT_THROW(
      (void)best_upgrades_exhaustive(speeds, std::vector<UpgradeOption>(21, {0, 0.5, 1.0}), 1.0,
                                     kEnv),
      std::invalid_argument);
  EXPECT_NO_THROW((void)best_upgrades_greedy(speeds, menu, 1.0, kEnv));
}

}  // namespace
}  // namespace hetero::core
