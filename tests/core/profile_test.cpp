#include "hetero/core/profile.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace hetero::core {
namespace {

TEST(Profile, SortsNonincreasingOnConstruction) {
  const Profile p{{0.25, 1.0, 0.5}};
  EXPECT_EQ(p.rho(0), 1.0);
  EXPECT_EQ(p.rho(1), 0.5);
  EXPECT_EQ(p.rho(2), 0.25);
  EXPECT_EQ(p.slowest(), 1.0);
  EXPECT_EQ(p.fastest(), 0.25);
}

TEST(Profile, RejectsInvalidValues) {
  EXPECT_THROW((Profile{std::vector<double>{}}), std::invalid_argument);
  EXPECT_THROW((Profile{{1.0, 0.0}}), std::invalid_argument);
  EXPECT_THROW((Profile{{1.0, -0.5}}), std::invalid_argument);
  EXPECT_THROW((Profile{{1.0, std::nan("")}}), std::invalid_argument);
  EXPECT_THROW((Profile{{1.0, INFINITY}}), std::invalid_argument);
}

TEST(Profile, LinearFamilyMatchesSection25) {
  // P1^(8) = <1, 7/8, ..., 1/8>.
  const Profile p = Profile::linear(8);
  ASSERT_EQ(p.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(p.rho(i), 1.0 - static_cast<double>(i) / 8.0);
  }
}

TEST(Profile, HarmonicFamilyMatchesSection25) {
  // P2^(8) = <1, 1/2, ..., 1/8>.
  const Profile p = Profile::harmonic(8);
  ASSERT_EQ(p.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(p.rho(i), 1.0 / static_cast<double>(i + 1));
  }
}

TEST(Profile, GeometricFamilyAndValidation) {
  const Profile p = Profile::geometric(4, 0.5);
  EXPECT_DOUBLE_EQ(p.rho(3), 0.125);
  EXPECT_THROW(Profile::geometric(4, 1.0), std::invalid_argument);
  EXPECT_THROW(Profile::geometric(4, 0.0), std::invalid_argument);
}

TEST(Profile, HomogeneousAndNormalization) {
  const Profile h = Profile::homogeneous(3, 0.5);
  EXPECT_TRUE(h.is_homogeneous());
  EXPECT_FALSE(h.is_normalized());
  const Profile n = h.normalized();
  EXPECT_TRUE(n.is_normalized());
  EXPECT_TRUE(n.is_homogeneous());
  EXPECT_EQ(n.rho(2), 1.0);
}

TEST(Profile, MeanVarianceGeometricMean) {
  const Profile p{{1.0, 0.5}};
  EXPECT_DOUBLE_EQ(p.mean(), 0.75);
  EXPECT_DOUBLE_EQ(p.variance(), 0.0625);  // ((0.25)^2 + (0.25)^2)/2
  EXPECT_DOUBLE_EQ(p.geometric_mean(), std::sqrt(0.5));
  EXPECT_DOUBLE_EQ(Profile::homogeneous(5, 0.3).variance(), 0.0);
}

TEST(Profile, VarianceMatchesPaperEquation7) {
  // VAR = (1/n) sum rho^2 - mean^2.
  const Profile p{{0.9, 0.4, 0.7, 0.2}};
  const double n = 4.0;
  double sum_sq = 0.0;
  double sum = 0.0;
  for (double v : p.values()) {
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(p.variance(), sum_sq / n - (sum / n) * (sum / n), 1e-15);
}

TEST(Profile, MinorizationIsStrictPartialOrder) {
  const Profile fast{{0.9, 0.4}};
  const Profile slow{{1.0, 0.5}};
  EXPECT_TRUE(fast.minorizes(slow));
  EXPECT_FALSE(slow.minorizes(fast));
  EXPECT_FALSE(fast.minorizes(fast));  // needs one strict inequality
  const Profile crossed{{0.95, 0.55}};
  EXPECT_FALSE(fast.minorizes(crossed) && crossed.minorizes(fast));
  EXPECT_THROW((void)fast.minorizes(Profile{{1.0, 0.5, 0.1}}), std::invalid_argument);
}

TEST(Profile, AdditiveSpeedupValidation) {
  const Profile p{{1.0, 0.5, 0.25}};
  const Profile sped = p.with_additive_speedup(2, 1.0 / 16.0);
  EXPECT_DOUBLE_EQ(sped.fastest(), 0.25 - 1.0 / 16.0);
  EXPECT_THROW((void)p.with_additive_speedup(2, 0.25), std::invalid_argument);
  EXPECT_THROW((void)p.with_additive_speedup(2, 0.3), std::invalid_argument);
  EXPECT_THROW((void)p.with_additive_speedup(2, 0.0), std::invalid_argument);
  EXPECT_THROW((void)p.with_additive_speedup(2, -0.1), std::invalid_argument);
}

TEST(Profile, MultiplicativeSpeedupValidation) {
  const Profile p{{1.0, 0.5}};
  const Profile sped = p.with_multiplicative_speedup(0, 0.25);
  // Speeding the slowest below the other machine re-sorts the profile.
  EXPECT_DOUBLE_EQ(sped.rho(0), 0.5);
  EXPECT_DOUBLE_EQ(sped.rho(1), 0.25);
  EXPECT_THROW((void)p.with_multiplicative_speedup(0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)p.with_multiplicative_speedup(0, 0.0), std::invalid_argument);
}

TEST(Profile, SpeedupsKeepOtherMachinesUntouched) {
  const Profile p{{1.0, 0.75, 0.5, 0.25}};
  const Profile sped = p.with_additive_speedup(1, 0.05);
  EXPECT_EQ(sped.rho(0), 1.0);
  EXPECT_EQ(sped.rho(2), 0.5);
  EXPECT_EQ(sped.rho(3), 0.25);
  EXPECT_DOUBLE_EQ(sped.rho(1), 0.70);
}

TEST(Profile, EqualityAndStreaming) {
  EXPECT_EQ(Profile({0.5, 1.0}), Profile({1.0, 0.5}));  // canonical sorting
  EXPECT_NE(Profile({1.0, 0.5}), Profile({1.0, 0.4}));
  std::ostringstream out;
  out << Profile({1.0, 0.5});
  EXPECT_EQ(out.str(), "<1, 0.5>");
}

TEST(Profile, SingleMachineProfile) {
  const Profile p{{0.7}};
  EXPECT_EQ(p.size(), 1u);
  EXPECT_TRUE(p.is_homogeneous());
  EXPECT_DOUBLE_EQ(p.variance(), 0.0);
}

}  // namespace
}  // namespace hetero::core
