#include <gtest/gtest.h>

#include <cmath>
#include <optional>

#include "hetero/core/hetero.h"

namespace hetero::core {
namespace {

const Environment kEnv = Environment::paper_default();

// Constructs a 3-machine profile with the given mean and variance,
// parameterized by its largest rho-value x: the other two machines are the
// roots of the induced quadratic.  Sweeping x traces out the whole
// equal-mean, equal-variance family, which differs only in third moment.
std::optional<Profile> three_machine_family(double mean, double variance, double x) {
  const double s = 3.0 * mean - x;                                // y + z
  const double q = 3.0 * (variance + mean * mean) - x * x;        // y^2 + z^2
  const double yz = 0.5 * (s * s - q);
  const double discriminant = s * s - 4.0 * yz;
  if (discriminant < 0.0) return std::nullopt;
  const double y = 0.5 * (s + std::sqrt(discriminant));
  const double z = 0.5 * (s - std::sqrt(discriminant));
  if (!(y > 0.0) || !(z > 0.0) || y > 1.0 || z > 1.0 || x > 1.0 || !(x > 0.0)) {
    return std::nullopt;
  }
  return Profile{{x, y, z}};
}

TEST(ThirdCentralMoment, MatchesHandComputation) {
  const Profile p{{0.9, 0.5, 0.1}};  // symmetric about 0.5
  EXPECT_NEAR(p.third_central_moment(), 0.0, 1e-15);
  const Profile skewed{{0.9, 0.1, 0.1, 0.1}};  // long slow tail
  EXPECT_GT(skewed.third_central_moment(), 0.0);
  const Profile fast_tail{{0.9, 0.9, 0.9, 0.1}};  // long fast tail
  EXPECT_LT(fast_tail.third_central_moment(), 0.0);
}

TEST(MomentHierarchy, FallsBackToVarianceFirst) {
  const Profile high_var{{0.8, 0.2}};
  const Profile low_var{{0.6, 0.4}};
  EXPECT_EQ(moment_hierarchy_predictor(high_var, low_var), Prediction::kFirstWins);
  EXPECT_EQ(moment_hierarchy_predictor(low_var, high_var), Prediction::kSecondWins);
  EXPECT_THROW((void)moment_hierarchy_predictor(high_var, Profile{{0.9, 0.2}}),
               std::invalid_argument);
}

TEST(MomentHierarchy, ThirdMomentDecidesTiesExactlyForThreeMachines) {
  // Equal mean AND equal variance: at n = 3 the smaller-third-moment cluster
  // must win, and the prediction must match the X ground truth every time.
  const double mean = 0.5;
  const double variance = 0.03;
  std::vector<Profile> family;
  for (double x = 0.55; x <= 0.95; x += 0.02) {
    const auto member = three_machine_family(mean, variance, x);
    if (member) family.push_back(*member);
  }
  ASSERT_GE(family.size(), 5u);
  int compared = 0;
  for (std::size_t i = 0; i < family.size(); ++i) {
    for (std::size_t j = i + 1; j < family.size(); ++j) {
      const Profile& p1 = family[i];
      const Profile& p2 = family[j];
      ASSERT_NEAR(p1.mean(), p2.mean(), 1e-9);
      ASSERT_NEAR(p1.variance(), p2.variance(), 1e-9);
      const double m3_gap = p1.third_central_moment() - p2.third_central_moment();
      if (std::fabs(m3_gap) < 1e-9) continue;
      ++compared;
      const Prediction predicted =
          moment_hierarchy_predictor(p1, p2, /*mean_tolerance=*/1e-8,
                                     /*variance_tolerance=*/1e-9,
                                     /*third_moment_tolerance=*/1e-10);
      EXPECT_EQ(predicted, x_value_ground_truth(p1, p2, kEnv)) << p1 << " vs " << p2;
      // And the direction is "smaller third moment wins".
      EXPECT_EQ(predicted,
                m3_gap < 0.0 ? Prediction::kFirstWins : Prediction::kSecondWins);
    }
  }
  EXPECT_GT(compared, 10);
}

TEST(MomentHierarchy, IdenticalProfilesAreInconclusive) {
  const Profile p{{0.7, 0.5, 0.3}};
  EXPECT_EQ(moment_hierarchy_predictor(p, p), Prediction::kInconclusive);
}

TEST(MomentHierarchy, FastTailBeatsSlowTailAtEqualMeanAndVariance) {
  // The qualitative headline of the extension: among clusters with the same
  // mean and variance, the one whose spread comes from a few very fast
  // machines (negative skew) beats the one with a few very slow stragglers.
  const auto fast_tail = three_machine_family(0.5, 0.03, 0.62);   // small x: mass above
  const auto slow_tail = three_machine_family(0.5, 0.03, 0.74);
  ASSERT_TRUE(fast_tail.has_value());
  ASSERT_TRUE(slow_tail.has_value());
  ASSERT_LT(fast_tail->third_central_moment(), slow_tail->third_central_moment());
  EXPECT_GT(x_measure(*fast_tail, kEnv), x_measure(*slow_tail, kEnv));
}

}  // namespace
}  // namespace hetero::core
