#include "hetero/core/predictors.h"

#include <gtest/gtest.h>

#include <random>

#include "hetero/core/power.h"
#include "hetero/numeric/stable.h"

namespace hetero::core {
namespace {

const Environment kEnv = Environment::paper_default();

TEST(MinorizationPredictor, DetectsDominance) {
  const Profile fast{{0.9, 0.4}};
  const Profile slow{{1.0, 0.5}};
  EXPECT_EQ(minorization_predictor(fast, slow), Prediction::kFirstWins);
  EXPECT_EQ(minorization_predictor(slow, fast), Prediction::kSecondWins);
  EXPECT_EQ(minorization_predictor(fast, fast), Prediction::kInconclusive);
}

TEST(MinorizationPredictor, SufficientButNotNecessary) {
  // Section 4's example: <0.99, 0.02> beats <0.5, 0.5> although neither
  // profile minorizes the other.
  const Profile p1{{0.99, 0.02}};
  const Profile p2{{0.5, 0.5}};
  EXPECT_EQ(minorization_predictor(p1, p2), Prediction::kInconclusive);
  EXPECT_GT(x_measure(p1, kEnv), x_measure(p2, kEnv));
}

TEST(SymmetricFunctionPredictor, SufficientConditionCanFailToFire) {
  // On the paper's counterexample <0.99, 0.02> vs <0.5, 0.5> the Prop.-3
  // system fails in both directions (F_1 and F_2 pull opposite ways), even
  // though the X-values are strictly ordered — the condition is sufficient,
  // not necessary.
  const Profile p1{{0.99, 0.02}};
  const Profile p2{{0.5, 0.5}};
  EXPECT_EQ(symmetric_function_predictor(p1, p2), Prediction::kInconclusive);
  EXPECT_EQ(x_value_ground_truth(p1, p2, kEnv), Prediction::kFirstWins);
}

TEST(SymmetricFunctionPredictor, FiresOnEqualMeanPairs) {
  // With equal F_1 the system reduces to the F_2 comparison and decides:
  // <0.75, 0.25> (variance 1/16) beats <0.5, 0.5> (variance 0).  The values
  // are dyadic so the means are *exactly* equal as doubles — the exact
  // predictor judges the actual inputs, and 0.8 + 0.2 != 1 in binary.
  const Profile p1{{0.75, 0.25}};
  const Profile p2{{0.5, 0.5}};
  EXPECT_EQ(symmetric_function_predictor(p1, p2), Prediction::kFirstWins);
  EXPECT_EQ(symmetric_function_predictor(p2, p1), Prediction::kSecondWins);
}

TEST(SymmetricFunctionPredictor, VerdictAlwaysMatchesGroundTruth) {
  // Prop. 3's condition is sufficient: whenever it fires, the X-comparison
  // must agree.  Randomized audit.
  std::mt19937_64 gen{41};
  std::uniform_real_distribution<double> dist{0.05, 1.0};
  int decided = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<double> r1(3);
    std::vector<double> r2(3);
    for (double& v : r1) v = dist(gen);
    for (double& v : r2) v = dist(gen);
    const Profile p1{r1};
    const Profile p2{r2};
    const Prediction predicted = symmetric_function_predictor(p1, p2);
    if (predicted == Prediction::kInconclusive) continue;
    ++decided;
    EXPECT_EQ(predicted, x_value_ground_truth(p1, p2, kEnv)) << p1 << " vs " << p2;
  }
  EXPECT_GT(decided, 0);
}

TEST(SymmetricFunctionPredictor, IdenticalProfilesAreInconclusive) {
  const Profile p{{1.0, 0.5, 0.25}};
  EXPECT_EQ(symmetric_function_predictor(p, p), Prediction::kInconclusive);
  EXPECT_THROW((void)symmetric_function_predictor(p, Profile{{1.0, 0.5}}), std::invalid_argument);
}

TEST(VariancePredictor, TwoMachineBiconditional) {
  // Theorem 5(2): for n = 2 with equal means, larger variance <=> more
  // powerful.  Exhaustive-ish grid.
  for (double mean : {0.3, 0.5, 0.7}) {
    for (double d1 : {0.05, 0.1, 0.2}) {
      for (double d2 : {0.01, 0.15, 0.25}) {
        if (mean - d1 <= 0.0 || mean - d2 <= 0.0) continue;
        const Profile p1{{mean + d1, mean - d1}};
        const Profile p2{{mean + d2, mean - d2}};
        if (d1 == d2) continue;
        const Prediction by_variance = variance_predictor(p1, p2);
        const Prediction by_x = x_value_ground_truth(p1, p2, kEnv);
        EXPECT_EQ(by_variance, by_x) << mean << " " << d1 << " " << d2;
      }
    }
  }
}

TEST(VariancePredictor, Corollary1HeterogeneityLendsPower) {
  // A heterogeneous 2-cluster beats the homogeneous 2-cluster of the same
  // mean speed.
  const Profile heterogeneous{{0.8, 0.2}};
  const Profile homogeneous{{0.5, 0.5}};
  EXPECT_EQ(variance_predictor(heterogeneous, homogeneous), Prediction::kFirstWins);
  EXPECT_GT(x_measure(heterogeneous, kEnv), x_measure(homogeneous, kEnv));
  EXPECT_LT(hecr(heterogeneous, kEnv), hecr(homogeneous, kEnv));
}

TEST(VariancePredictor, RequiresEqualMeans) {
  EXPECT_THROW((void)variance_predictor(Profile{{1.0, 0.5}}, Profile{{0.9, 0.5}}),
               std::invalid_argument);
  EXPECT_THROW((void)variance_predictor(Profile{{1.0, 0.5}}, Profile{{1.0, 0.5, 0.2}}),
               std::invalid_argument);
}

TEST(VariancePredictor, MinGapGatesTheVerdict) {
  const Profile p1{{0.8, 0.2}};   // variance 0.09
  const Profile p2{{0.6, 0.4}};   // variance 0.01
  EXPECT_EQ(variance_predictor(p1, p2), Prediction::kFirstWins);
  EXPECT_EQ(variance_predictor(p1, p2, /*min_variance_gap=*/0.1), Prediction::kInconclusive);
  EXPECT_EQ(variance_predictor(p1, p2, /*min_variance_gap=*/0.05), Prediction::kFirstWins);
}

TEST(Lemma1, CoefficientsMatchHandExpansionForN2) {
  const auto coeffs = lemma1_coefficients(2, kEnv);
  const double a = kEnv.a();
  const double b = kEnv.b();
  const double td = kEnv.tau_delta();
  ASSERT_EQ(coeffs.alpha.size(), 2u);
  ASSERT_EQ(coeffs.beta.size(), 3u);
  EXPECT_NEAR(coeffs.alpha[0], a + td, 1e-18);
  EXPECT_NEAR(coeffs.alpha[1], b, 1e-12);
  EXPECT_NEAR(coeffs.beta[0], a * a, 1e-22);
  EXPECT_NEAR(coeffs.beta[1], a * b, 1e-16);
  EXPECT_NEAR(coeffs.beta[2], b * b, 1e-12);
}

TEST(Lemma1, ClaimOneAlphaBetaCrossInequality) {
  // Claim 1 in the proof of Prop. 3: alpha_i beta_j > alpha_j beta_i for i < j.
  const auto coeffs = lemma1_coefficients(5, kEnv);
  for (std::size_t i = 0; i < coeffs.alpha.size(); ++i) {
    for (std::size_t j = i + 1; j < coeffs.alpha.size(); ++j) {
      EXPECT_GT(coeffs.alpha[i] * coeffs.beta[j], coeffs.alpha[j] * coeffs.beta[i])
          << i << "," << j;
    }
  }
}

TEST(Lemma1, RationalFormReproducesX) {
  // X computed through Lemma 1's symmetric-function form must equal
  // formula (1) for modest n.
  for (std::size_t n : {1u, 2u, 4u, 8u, 12u}) {
    const Profile p = Profile::harmonic(n);
    const double via_lemma = x_via_symmetric_functions(p, kEnv);
    const double direct = x_measure(p, kEnv);
    EXPECT_LT(numeric::relative_difference(via_lemma, direct), 1e-9) << n;
  }
}

TEST(PredictionToString, CoversAllValues) {
  EXPECT_STREQ(to_string(Prediction::kFirstWins), "first-wins");
  EXPECT_STREQ(to_string(Prediction::kSecondWins), "second-wins");
  EXPECT_STREQ(to_string(Prediction::kInconclusive), "inconclusive");
}

TEST(ProfileSymmetricFunctions, F1AndF2RelateToMeanAndVariance) {
  // F_1 = n*mean and equation (8): F_2 = (F_1^2 - sum rho^2)/2.
  const Profile p{{0.9, 0.6, 0.3}};
  const auto f = profile_symmetric_functions(p);
  EXPECT_NEAR(f[1].to_double(), 3.0 * p.mean(), 1e-12);
  double sum_sq = 0.0;
  for (double v : p.values()) sum_sq += v * v;
  const double f1 = f[1].to_double();
  EXPECT_NEAR(f[2].to_double(), 0.5 * (f1 * f1 - sum_sq), 1e-12);
}

}  // namespace
}  // namespace hetero::core
