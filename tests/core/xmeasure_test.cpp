#include "hetero/core/xmeasure.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "hetero/core/power.h"

// The incremental evaluator's contract is *exact* agreement with
// x_measure_serial: after any sequence of committed single-machine
// perturbations, value() must be bit-identical (EXPECT_EQ on doubles, no
// tolerance) to a from-scratch serial evaluation over the same speed vector.
// The vectorized x_measure sums in lane order, so it only has to agree to a
// few ulp (checked separately below).

namespace hetero::core {
namespace {

const Environment kEnv = Environment::paper_default();

std::vector<double> random_speeds(std::size_t n, std::mt19937_64& gen) {
  std::uniform_real_distribution<double> dist{0.05, 1.0};
  std::vector<double> speeds(n);
  for (double& v : speeds) v = dist(gen);
  return speeds;
}

TEST(XMeasure, MatchesXMeasureOnConstruction) {
  std::mt19937_64 gen{101};
  for (std::size_t n : {1u, 2u, 5u, 64u, 1000u}) {
    const auto speeds = random_speeds(n, gen);
    const XMeasure evaluator{speeds, kEnv};
    EXPECT_EQ(evaluator.value(), x_measure_serial(speeds, kEnv)) << n;
  }
}

TEST(XMeasure, ExactlyTracksArbitraryPerturbationSequences) {
  std::mt19937_64 gen{103};
  std::uniform_real_distribution<double> speed_dist{0.05, 1.0};
  for (const std::size_t n : {3u, 17u, 128u}) {
    std::vector<double> speeds = random_speeds(n, gen);
    XMeasure evaluator{speeds, kEnv};
    std::uniform_int_distribution<std::size_t> index_dist{0, n - 1};
    for (int step = 0; step < 300; ++step) {
      const std::size_t k = index_dist(gen);
      // Mix fresh draws with multiplicative nudges (the planner's pattern).
      const double r = (step % 3 == 0) ? speed_dist(gen) : speeds[k] * 0.9;
      speeds[k] = r;
      evaluator.set_rho(k, r);
      ASSERT_EQ(evaluator.value(), x_measure_serial(speeds, kEnv)) << n << " step " << step;
    }
    EXPECT_EQ(evaluator.speeds(), speeds);
  }
}

TEST(XMeasure, WithRhoApproximatesCommittedValue) {
  std::mt19937_64 gen{107};
  const auto speeds = random_speeds(200, gen);
  const XMeasure evaluator{speeds, kEnv};
  std::uniform_real_distribution<double> speed_dist{0.05, 1.0};
  std::uniform_int_distribution<std::size_t> index_dist{0, speeds.size() - 1};
  for (int probe = 0; probe < 200; ++probe) {
    const std::size_t k = index_dist(gen);
    const double r = speed_dist(gen);
    std::vector<double> perturbed = speeds;
    perturbed[k] = r;
    const double exact = x_measure(perturbed, kEnv);
    // O(1) query: one extra rounding in the tail scaling, far inside the
    // 1e-12 tie tolerance the argmax scans rely on.
    EXPECT_NEAR(evaluator.with_rho(k, r), exact, 1e-13 * exact) << k << " " << r;
  }
  // Queries must not mutate state.
  EXPECT_EQ(evaluator.value(), x_measure_serial(speeds, kEnv));
}

TEST(XMeasure, AssignRebuildsForANewVector) {
  std::mt19937_64 gen{109};
  XMeasure evaluator{random_speeds(8, gen), kEnv};
  const auto replacement = random_speeds(31, gen);
  evaluator.assign(replacement);
  EXPECT_EQ(evaluator.size(), replacement.size());
  EXPECT_EQ(evaluator.value(), x_measure_serial(replacement, kEnv));
}

TEST(XMeasure, ThrowsOnBadIndex) {
  const XMeasure evaluator{std::vector<double>{1.0, 0.5}, kEnv};
  EXPECT_THROW((void)evaluator.with_rho(2, 0.5), std::out_of_range);
  XMeasure mutable_evaluator = evaluator;
  EXPECT_THROW(mutable_evaluator.set_rho(2, 0.5), std::out_of_range);
}

}  // namespace
}  // namespace hetero::core
