#include <gtest/gtest.h>

#include <stdexcept>

#include "hetero/core/backoff.h"
#include "hetero/core/errors.h"

namespace core = hetero::core;

TEST(ErrorTaxonomy, TypedErrorsCarryTheirClass) {
  EXPECT_EQ(core::PoolStopped{}.error_class(), core::ErrorClass::kCancelled);
  EXPECT_EQ(core::Cancelled{}.error_class(), core::ErrorClass::kCancelled);
  EXPECT_EQ(core::DeadlineExceeded{}.error_class(), core::ErrorClass::kCancelled);
  EXPECT_EQ(core::TransientError{"io"}.error_class(), core::ErrorClass::kRetryable);
  EXPECT_EQ(core::FatalError{"corrupt"}.error_class(), core::ErrorClass::kFatal);
}

TEST(ErrorTaxonomy, ClassifySeesThroughExceptionBase) {
  const core::TransientError transient{"flaky"};
  const std::exception& as_base = transient;
  EXPECT_EQ(core::classify(as_base), core::ErrorClass::kRetryable);
  EXPECT_TRUE(core::is_retryable(as_base));
}

TEST(ErrorTaxonomy, ForeignExceptionsAreFatal) {
  const std::runtime_error plain{"who knows"};
  EXPECT_EQ(core::classify(plain), core::ErrorClass::kFatal);
  EXPECT_FALSE(core::is_retryable(plain));
  const std::logic_error logic{"bug"};
  EXPECT_EQ(core::classify(logic), core::ErrorClass::kFatal);
}

TEST(ErrorTaxonomy, CancelledIsNeverRetryable) {
  EXPECT_FALSE(core::is_retryable(core::Cancelled{}));
  EXPECT_FALSE(core::is_retryable(core::PoolStopped{}));
}

TEST(ErrorTaxonomy, ToStringCoversEveryClass) {
  EXPECT_STREQ(core::to_string(core::ErrorClass::kRetryable), "retryable");
  EXPECT_STREQ(core::to_string(core::ErrorClass::kFatal), "fatal");
  EXPECT_STREQ(core::to_string(core::ErrorClass::kCancelled), "cancelled");
}

TEST(Backoff, DelayIsGeometric) {
  const core::Backoff b{0.5, 3.0, 4, 0.0};
  EXPECT_DOUBLE_EQ(b.delay(0), 0.5);
  EXPECT_DOUBLE_EQ(b.delay(1), 1.5);
  EXPECT_DOUBLE_EQ(b.delay(2), 4.5);
  EXPECT_DOUBLE_EQ(b.total_delay(), 0.5 + 1.5 + 4.5 + 13.5);
}

TEST(Backoff, MaxDelayCaps) {
  const core::Backoff b{1.0, 2.0, 10, 3.0};
  EXPECT_DOUBLE_EQ(b.delay(0), 1.0);
  EXPECT_DOUBLE_EQ(b.delay(1), 2.0);
  EXPECT_DOUBLE_EQ(b.delay(2), 3.0);  // 4 capped to 3
  EXPECT_DOUBLE_EQ(b.delay(9), 3.0);
}

TEST(Backoff, ExhaustedAfterMaxRetries) {
  const core::Backoff b{1.0, 2.0, 2, 0.0};
  EXPECT_FALSE(b.exhausted(0));
  EXPECT_FALSE(b.exhausted(1));
  EXPECT_TRUE(b.exhausted(2));
  EXPECT_TRUE(b.exhausted(3));
}

TEST(Backoff, ValidateRejectsNonsense) {
  core::Backoff negative{-1.0, 2.0, 2, 0.0};
  EXPECT_THROW(negative.validate(), std::invalid_argument);
  core::Backoff shrinking{1.0, 0.5, 2, 0.0};
  EXPECT_THROW(shrinking.validate(), std::invalid_argument);
  core::Backoff bad_cap{1.0, 2.0, 2, -1.0};
  EXPECT_THROW(bad_cap.validate(), std::invalid_argument);
  core::Backoff fine{0.0, 1.0, 0, 0.0};
  EXPECT_NO_THROW(fine.validate());
}
