#include "hetero/core/environment.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace hetero::core {
namespace {

TEST(Environment, PaperDefaultMatchesTable1) {
  const Environment env = Environment::paper_default();
  EXPECT_DOUBLE_EQ(env.tau(), 1e-6);
  EXPECT_DOUBLE_EQ(env.pi(), 1e-5);
  EXPECT_DOUBLE_EQ(env.delta(), 1.0);
}

TEST(Environment, DerivedConstantsMatchDefinitions) {
  const Environment env{Environment::Params{.tau = 0.25, .pi = 0.5, .delta = 0.5}};
  EXPECT_DOUBLE_EQ(env.a(), 0.75);                    // A = pi + tau
  EXPECT_DOUBLE_EQ(env.b(), 1.0 + 1.5 * 0.5);         // B = 1 + (1+delta) pi
  EXPECT_DOUBLE_EQ(env.tau_delta(), 0.125);
  EXPECT_DOUBLE_EQ(env.a_minus_tau_delta(), 0.625);
  EXPECT_DOUBLE_EQ(env.theorem4_threshold(),
                   env.a() * env.tau_delta() / (env.b() * env.b()));
}

TEST(Environment, Table2SampleValues) {
  // Table 2: A = 11 usec per work unit with the Table-1 parameters.
  const Environment env = Environment::paper_default();
  EXPECT_NEAR(env.a(), 1.1e-5, 1e-20);
  // Coarse tasks (1 sec/task): B = 1 + 2e-5 of a task time.
  EXPECT_NEAR(env.b(), 1.0 + 2e-5, 1e-15);
}

TEST(Environment, FromWallClockNormalizesBySlowestComputeTime) {
  // 1 usec transit, 10 usec packaging, on 0.1-second tasks (Table 2's
  // "finer tasks" row): normalized tau = 1e-5, pi = 1e-4.
  const Environment env = Environment::from_wall_clock(1e-6, 1e-5, 1.0, 0.1);
  EXPECT_DOUBLE_EQ(env.tau(), 1e-5);
  EXPECT_DOUBLE_EQ(env.pi(), 1e-4);
}

TEST(Environment, RejectsInvalidParameters) {
  using P = Environment::Params;
  EXPECT_THROW((Environment{P{.tau = 0.0}}), std::invalid_argument);
  EXPECT_THROW((Environment{P{.tau = -1.0}}), std::invalid_argument);
  EXPECT_THROW((Environment{P{.pi = -1e-9}}), std::invalid_argument);
  EXPECT_THROW((Environment{P{.delta = 0.0}}), std::invalid_argument);
  EXPECT_THROW((Environment{P{.delta = 1.5}}), std::invalid_argument);
  EXPECT_THROW((Environment{P{.tau = std::nan("")}}), std::invalid_argument);
  EXPECT_THROW((void)Environment::from_wall_clock(1e-6, 1e-5, 1.0, 0.0), std::invalid_argument);
}

TEST(Environment, RejectsAGreaterThanB) {
  // tau = 2 makes A = 2 + pi > 1 + 2 pi = B for small pi: outside the model.
  EXPECT_THROW((Environment{Environment::Params{.tau = 2.0, .pi = 1e-5}}), std::invalid_argument);
}

TEST(Environment, StandingAssumptionHoldsForAllValidEnvironments) {
  for (double tau : {1e-6, 1e-3, 0.5}) {
    for (double pi : {0.0, 1e-5, 0.2}) {
      for (double delta : {0.1, 0.5, 1.0}) {
        const Environment::Params params{.tau = tau, .pi = pi, .delta = delta};
        if (tau + pi > 1.0 + (1.0 + delta) * pi) continue;  // rejected combos
        const Environment env{params};
        EXPECT_LE(env.tau_delta(), env.a());
        EXPECT_LE(env.a(), env.b());
      }
    }
  }
}

TEST(Environment, EqualityAndStreaming) {
  const Environment a = Environment::paper_default();
  const Environment b = Environment::paper_default();
  EXPECT_EQ(a, b);
  std::ostringstream out;
  out << a;
  EXPECT_NE(out.str().find("tau="), std::string::npos);
}

}  // namespace
}  // namespace hetero::core
