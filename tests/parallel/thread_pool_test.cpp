#include "hetero/parallel/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>

namespace hetero::parallel {
namespace {

TEST(ThreadPool, DefaultSizeIsAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool{2};
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ReturnsValuesThroughFutures) {
  ThreadPool pool{2};
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  ThreadPool pool{1};
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, WaitIdleBlocksUntilAllTasksDone) {
  ThreadPool pool{3};
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      done.fetch_add(1);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 20);
}

TEST(ThreadPool, DestructorDrainsRemainingTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool{1};
    for (int i = 0; i < 50; ++i) pool.submit([&done] { done.fetch_add(1); });
  }
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, ManyConcurrentSubmitters) {
  ThreadPool pool{4};
  std::atomic<int> counter{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&pool, &counter] {
      for (int i = 0; i < 250; ++i) pool.submit([&counter] { counter.fetch_add(1); });
    });
  }
  for (auto& t : submitters) t.join();
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPool, TasksCanSubmitMoreTasks) {
  ThreadPool pool{2};
  std::atomic<int> counter{0};
  auto outer = pool.submit([&pool, &counter] {
    auto inner = pool.submit([&counter] { counter.fetch_add(1); });
    inner.wait();
    counter.fetch_add(1);
  });
  outer.get();
  EXPECT_EQ(counter.load(), 2);
}

}  // namespace
}  // namespace hetero::parallel
