#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "hetero/core/cancel.h"
#include "hetero/core/errors.h"
#include "hetero/parallel/thread_pool.h"

namespace core = hetero::core;
namespace parallel = hetero::parallel;
using namespace std::chrono_literals;

// Regression: a task that keeps submitting while the pool is being destroyed
// must see the typed core::PoolStopped (historically this surfaced as a plain
// std::runtime_error, indistinguishable from a task failure).
TEST(PoolShutdown, SubmitDuringDestructionThrowsTypedPoolStopped) {
  std::atomic<bool> started{false};
  std::optional<core::ErrorClass> seen_class;
  std::atomic<bool> seen_pool_stopped{false};

  auto pool = std::make_unique<parallel::ThreadPool>(1);
  parallel::ThreadPool* raw = pool.get();
  auto prober = pool->submit([&] {
    started.store(true);
    // Keep probing until the destructor flips the pool into stopping; every
    // accepted no-op drains harmlessly (kDrain).
    const auto give_up = std::chrono::steady_clock::now() + 10s;
    while (std::chrono::steady_clock::now() < give_up) {
      try {
        (void)raw->submit([] {});
      } catch (const core::PoolStopped& stopped) {
        seen_class = stopped.error_class();
        seen_pool_stopped.store(true);
        return;
      }
      std::this_thread::sleep_for(1ms);
    }
  });
  while (!started.load()) std::this_thread::sleep_for(1ms);
  pool.reset();  // joins the prober, which must have seen PoolStopped

  EXPECT_TRUE(seen_pool_stopped.load());
  ASSERT_TRUE(seen_class.has_value());
  EXPECT_EQ(*seen_class, core::ErrorClass::kCancelled);
  EXPECT_NO_THROW(prober.get());
}

// kCancelPending: queued-but-unstarted tasks are discarded at shutdown and
// their futures report core::Cancelled — never a broken promise, and the
// discarded task bodies never run.
TEST(PoolShutdown, CancelPendingDiscardsQueuedTasks) {
  std::atomic<bool> blocker_started{false};
  std::atomic<bool> release{false};
  std::atomic<int> bodies_run{0};

  auto pool =
      std::make_unique<parallel::ThreadPool>(1, parallel::ShutdownMode::kCancelPending);
  auto blocker = pool->submit([&] {
    blocker_started.store(true);
    while (!release.load()) std::this_thread::sleep_for(1ms);
  });
  // The rest only queue once the blocker occupies the single worker, so the
  // destructor is guaranteed to find them still pending.
  while (!blocker_started.load()) std::this_thread::sleep_for(1ms);
  std::vector<std::future<void>> queued;
  for (int i = 0; i < 4; ++i) {
    queued.push_back(pool->submit([&] { ++bodies_run; }));
  }

  // Destroy on a helper thread: the destructor abandons the queue before
  // joining, so the discarded futures become ready while the blocker still
  // holds the only worker.
  std::thread destroyer{[&] { pool.reset(); }};
  for (auto& f : queued) {
    EXPECT_THROW(f.get(), core::Cancelled);
  }
  release.store(true);
  destroyer.join();

  EXPECT_NO_THROW(blocker.get());  // the running task finished normally
  EXPECT_EQ(bodies_run.load(), 0);
}

// Default mode still drains: every queued task runs before the destructor
// returns.
TEST(PoolShutdown, DrainModeRunsEverything) {
  std::atomic<int> bodies_run{0};
  {
    parallel::ThreadPool pool{2};
    for (int i = 0; i < 16; ++i) {
      (void)pool.submit([&] { ++bodies_run; });
    }
  }
  EXPECT_EQ(bodies_run.load(), 16);
}

// A token that fires before the worker dequeues the task suppresses the body
// and surfaces the precise taxonomy error through the future.
TEST(PoolShutdown, FiredTokenSkipsTaskBody) {
  std::atomic<bool> release{false};
  std::atomic<bool> body_ran{false};
  core::CancelSource source;

  parallel::ThreadPool pool{1};
  auto blocker = pool.submit([&] {
    while (!release.load()) std::this_thread::sleep_for(1ms);
  });
  auto doomed = pool.submit([&] { body_ran.store(true); }, source.token());
  source.cancel();
  release.store(true);

  EXPECT_THROW(doomed.get(), core::Cancelled);
  EXPECT_FALSE(body_ran.load());
  EXPECT_NO_THROW(blocker.get());
}

// An already-expired deadline reports core::DeadlineExceeded instead.
TEST(PoolShutdown, ExpiredDeadlineReportsDeadlineExceeded) {
  std::atomic<bool> release{false};
  core::CancelSource source;

  parallel::ThreadPool pool{1};
  auto blocker = pool.submit([&] {
    while (!release.load()) std::this_thread::sleep_for(1ms);
  });
  auto late = pool.submit([] {},
                          source.token().with_deadline(core::CancelToken::Clock::now() - 1ms));
  release.store(true);

  EXPECT_THROW(late.get(), core::DeadlineExceeded);
  EXPECT_NO_THROW(blocker.get());
}
