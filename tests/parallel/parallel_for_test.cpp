#include "hetero/parallel/parallel_for.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace hetero::parallel {
namespace {

TEST(ChunkRanges, CoverRangeExactlyOnce) {
  const auto ranges = chunk_ranges(10, 1000, 4);
  std::size_t covered = 0;
  std::size_t expected_next = 10;
  for (const auto& [lo, hi] : ranges) {
    EXPECT_EQ(lo, expected_next);
    EXPECT_LT(lo, hi);
    covered += hi - lo;
    expected_next = hi;
  }
  EXPECT_EQ(expected_next, 1000u);
  EXPECT_EQ(covered, 990u);
}

TEST(ChunkRanges, EmptyRange) {
  EXPECT_TRUE(chunk_ranges(5, 5, 4).empty());
  EXPECT_TRUE(chunk_ranges(7, 5, 4).empty());
}

TEST(ChunkRanges, RespectsMinChunk) {
  const auto ranges = chunk_ranges(0, 100, 16, ChunkingOptions{.min_chunk = 50});
  EXPECT_EQ(ranges.size(), 2u);
}

TEST(ChunkRanges, SingleElement) {
  const auto ranges = chunk_ranges(3, 4, 8);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].first, 3u);
  EXPECT_EQ(ranges[0].second, 4u);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool{4};
  std::vector<std::atomic<int>> visits(1000);
  parallel_for(pool, 0, visits.size(), [&visits](std::size_t i) { visits[i].fetch_add(1); });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool{2};
  std::atomic<int> calls{0};
  parallel_for(pool, 10, 10, [&calls](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, RethrowsTaskException) {
  ThreadPool pool{2};
  EXPECT_THROW((void)parallel_for(pool, 0, 100,
                            [](std::size_t i) {
                              if (i == 37) throw std::runtime_error("index 37");
                            }),
               std::runtime_error);
}

TEST(ParallelMapReduce, SumsDeterministically) {
  ThreadPool pool{4};
  const auto map = [](std::size_t i) { return static_cast<double>(i); };
  const auto reduce = [](double acc, double v) { return acc + v; };
  const double total = parallel_map_reduce(pool, 0, 1001, 0.0, map, reduce);
  EXPECT_DOUBLE_EQ(total, 500500.0);
  // Repeat runs agree exactly (chunk order is fixed).
  EXPECT_DOUBLE_EQ(parallel_map_reduce(pool, 0, 1001, 0.0, map, reduce), total);
}

TEST(ParallelMapReduce, WorksWithNonCommutativeStructure) {
  // Concatenation reduce: chunk order must be preserved for determinism.
  ThreadPool pool{4};
  const auto map = [](std::size_t i) { return std::vector<std::size_t>{i}; };
  const auto reduce = [](std::vector<std::size_t> acc, const std::vector<std::size_t>& v) {
    acc.insert(acc.end(), v.begin(), v.end());
    return acc;
  };
  const auto result =
      parallel_map_reduce(pool, 0, 500, std::vector<std::size_t>{}, map, reduce);
  ASSERT_EQ(result.size(), 500u);
  for (std::size_t i = 0; i < result.size(); ++i) EXPECT_EQ(result[i], i);
}

TEST(ParallelMapReduce, PropagatesExceptions) {
  ThreadPool pool{2};
  const auto map = [](std::size_t i) -> int {
    if (i == 3) throw std::logic_error("bad");
    return 1;
  };
  const auto reduce = [](int acc, int v) { return acc + v; };
  EXPECT_THROW((void)parallel_map_reduce(pool, 0, 10, 0, map, reduce), std::logic_error);
}

TEST(ParallelFor, WorksWithSingleThreadPool) {
  ThreadPool pool{1};
  std::atomic<long> sum{0};
  parallel_for(pool, 1, 101, [&sum](std::size_t i) { sum.fetch_add(static_cast<long>(i)); });
  EXPECT_EQ(sum.load(), 5050);
}

}  // namespace
}  // namespace hetero::parallel
