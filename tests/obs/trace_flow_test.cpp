// Chrome-trace flow arrows and metadata records: the causal-tree export on
// top of the byte-stable 'X' serialization (which chrome_trace_test pins
// with golden strings).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "hetero/obs/chrome_trace.h"
#include "hetero/sim/trace.h"
#include "hetero/sim/trace_export.h"

namespace obs = hetero::obs;
namespace sim = hetero::sim;

namespace {

obs::Span make_span(const char* name, std::uint64_t start, std::uint64_t end,
                    std::uint64_t trace, std::uint64_t id, std::uint64_t parent,
                    const char* outcome = "") {
  obs::Span span;
  span.name = name;
  span.start_ns = start;
  span.end_ns = end;
  span.trace_id = trace;
  span.span_id = id;
  span.parent_id = parent;
  span.outcome = outcome;
  return span;
}

}  // namespace

TEST(TraceFlow, FlowPairsLinkParentToChild) {
  const std::vector<obs::Span> spans = {
      make_span("runner.run", 0, 10'000, 9, 100, 0),
      make_span("runner.attempt", 1'000, 4'000, 9, 200, 100, obs::outcome::kOk),
  };
  const std::vector<obs::TraceEvent> flows = obs::flow_events_from_spans(spans);
  ASSERT_EQ(flows.size(), 2u);
  EXPECT_EQ(flows[0].phase, 's');
  EXPECT_EQ(flows[1].phase, 'f');
  EXPECT_EQ(flows[0].flow_id, flows[1].flow_id);
  EXPECT_NE(flows[0].flow_id, 0u);
  // The start record sits inside the parent interval, the finish record at
  // the child's start.
  EXPECT_GE(flows[0].ts_us, 0.0);
  EXPECT_LE(flows[0].ts_us, 10'000.0 / 1000.0);
  EXPECT_DOUBLE_EQ(flows[1].ts_us, 1.0);  // 1000 ns = 1 us
}

TEST(TraceFlow, OrphansAndPlainSpansProduceNoFlows) {
  const std::vector<obs::Span> spans = {
      make_span("plain.scope", 0, 100, 0, 0, 0),      // no trace at all
      make_span("runner.attempt", 0, 100, 9, 7, 42),  // parent 42 not exported
  };
  EXPECT_TRUE(obs::flow_events_from_spans(spans).empty());
}

TEST(TraceFlow, FlowIdsAreDeterministic) {
  const std::vector<obs::Span> spans = {
      make_span("runner.run", 0, 10'000, 9, 100, 0),
      make_span("runner.attempt", 1'000, 4'000, 9, 200, 100, obs::outcome::kOk),
      make_span("runner.attempt", 1'500, 3'000, 9, 300, 100, obs::outcome::kRetry),
  };
  const auto once = obs::flow_events_from_spans(spans);
  const auto twice = obs::flow_events_from_spans(spans);
  ASSERT_EQ(once.size(), twice.size());
  for (std::size_t i = 0; i < once.size(); ++i) {
    EXPECT_EQ(once[i].flow_id, twice[i].flow_id);
  }
  // Distinct children get distinct arrows.
  EXPECT_NE(once[0].flow_id, once[2].flow_id);
}

TEST(TraceFlow, CausalSpansCarryOutcomeArgs) {
  const std::vector<obs::Span> spans = {
      make_span("runner.attempt", 0, 1'000, 9, 200, 100, obs::outcome::kSpeculativeWin),
  };
  const auto events = obs::events_from_spans(spans);
  ASSERT_EQ(events.size(), 1u);
  bool saw_outcome = false;
  for (const auto& [key, value] : events[0].args) {
    if (key == "outcome") {
      saw_outcome = true;
      EXPECT_EQ(value, "speculative-win");
    }
  }
  EXPECT_TRUE(saw_outcome);
}

TEST(TraceFlow, SerializedFlowRecordsBindToEnclosingSlice) {
  const std::vector<obs::Span> spans = {
      make_span("runner.run", 0, 10'000, 9, 100, 0),
      make_span("runner.attempt", 1'000, 4'000, 9, 200, 100, obs::outcome::kOk),
  };
  const auto flows = obs::flow_events_from_spans(spans);
  const std::string json = obs::chrome_trace_json(flows);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"causal\""), std::string::npos);
}

TEST(TraceFlow, WallMetadataNamesProcessAndThreads) {
  std::vector<obs::Span> spans = {make_span("a", 0, 10, 0, 0, 0)};
  spans[0].tid = 3;
  const auto metadata = obs::wall_metadata_events(spans);
  ASSERT_GE(metadata.size(), 2u);
  EXPECT_EQ(metadata[0].phase, 'M');
  EXPECT_EQ(metadata[0].name, "process_name");
  bool saw_thread = false;
  for (const auto& event : metadata) {
    if (event.name == "thread_name" && event.tid == 3) saw_thread = true;
  }
  EXPECT_TRUE(saw_thread);

  const std::string json = obs::chrome_trace_json(metadata);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
}

TEST(TraceFlow, SimMetadataSharesActorTidMapping) {
  sim::Trace trace;
  trace.record(sim::TraceSegment{0.0, 1.0, sim::Activity::kServerPackage, sim::kServerActor, 0});
  trace.record(sim::TraceSegment{1.0, 5.0, sim::Activity::kWorkerCompute, 1, 1});

  const auto segments = sim::trace_events(trace);
  const auto metadata = sim::trace_metadata_events(trace);

  // Same pid for both; every tid appearing in the segments is named.
  ASSERT_FALSE(segments.empty());
  ASSERT_GE(metadata.size(), 3u);  // process + two threads
  EXPECT_EQ(metadata[0].pid, obs::kSimPid);
  EXPECT_EQ(metadata[0].name, "process_name");
  for (const auto& segment : segments) {
    bool named = false;
    for (const auto& event : metadata) {
      if (event.name == "thread_name" && event.tid == segment.tid) named = true;
    }
    EXPECT_TRUE(named) << "tid " << segment.tid << " has no thread_name record";
  }
  // Server row is named "server", worker rows "C<n>"-style worker labels.
  bool saw_server = false;
  for (const auto& event : metadata) {
    for (const auto& [key, value] : event.args) {
      if (key == "name" && value == "server") saw_server = true;
    }
  }
  EXPECT_TRUE(saw_server);
}
