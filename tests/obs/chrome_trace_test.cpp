#include "hetero/obs/chrome_trace.h"

#include <gtest/gtest.h>

#include "../support/mini_json.h"

namespace hetero::obs {
namespace {

using test_support::parse_json;

TEST(JsonEscapeTest, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("worker-compute"), "worker-compute");
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(json_escape(std::string{"\x01"}), "\\u0001");
}

TEST(ChromeTraceTest, EmptyEventListIsValidJson) {
  const std::string json = chrome_trace_json({});
  const auto doc = parse_json(json);
  ASSERT_TRUE(doc.is_object());
  EXPECT_TRUE(doc.at("traceEvents").array().empty());
  EXPECT_EQ(doc.at("displayTimeUnit").string(), "ms");
}

TEST(ChromeTraceTest, EventFieldsRoundTripThroughJson) {
  TraceEvent event;
  event.name = "worker \"quoted\" compute";
  event.category = "sim";
  event.ts_us = 1234.5;
  event.dur_us = 0.0625;
  event.pid = kSimPid;
  event.tid = 3;
  event.args.emplace_back("subject", "C2");

  const std::string json = chrome_trace_json(std::vector<TraceEvent>{event});
  const auto doc = parse_json(json);
  const auto& events = doc.at("traceEvents").array();
  ASSERT_EQ(events.size(), 1u);
  const auto& parsed = events[0];
  EXPECT_EQ(parsed.at("name").string(), "worker \"quoted\" compute");
  EXPECT_EQ(parsed.at("cat").string(), "sim");
  EXPECT_EQ(parsed.at("ph").string(), "X");
  EXPECT_DOUBLE_EQ(parsed.at("ts").number(), 1234.5);
  EXPECT_DOUBLE_EQ(parsed.at("dur").number(), 0.0625);
  EXPECT_DOUBLE_EQ(parsed.at("pid").number(), kSimPid);
  EXPECT_DOUBLE_EQ(parsed.at("tid").number(), 3.0);
  EXPECT_EQ(parsed.at("args").at("subject").string(), "C2");
}

TEST(ChromeTraceTest, OmitsArgsObjectWhenEmpty) {
  TraceEvent event;
  event.name = "bare";
  const std::string json = chrome_trace_json(std::vector<TraceEvent>{event});
  const auto doc = parse_json(json);
  EXPECT_FALSE(doc.at("traceEvents").array()[0].contains("args"));
}

TEST(ChromeTraceTest, SpansConvertWithNanosecondToMicrosecondScaling) {
  Span span;
  span.name = "scope.name";
  span.start_ns = 2000;
  span.end_ns = 5500;
  span.tid = 7;
  const auto events = events_from_spans(std::vector<Span>{span});
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "scope.name");
  EXPECT_EQ(events[0].category, "wall");
  EXPECT_DOUBLE_EQ(events[0].ts_us, 2.0);
  EXPECT_DOUBLE_EQ(events[0].dur_us, 3.5);
  EXPECT_EQ(events[0].pid, kWallClockPid);
  EXPECT_EQ(events[0].tid, 7);
}

TEST(ChromeTraceTest, ManyEventsStayValidJson) {
  std::vector<TraceEvent> events;
  for (int i = 0; i < 500; ++i) {
    TraceEvent event;
    event.name = "event-" + std::to_string(i);
    event.ts_us = static_cast<double>(i) * 0.5;
    event.dur_us = 0.25;
    event.tid = i % 7;
    events.push_back(std::move(event));
  }
  const auto doc = parse_json(chrome_trace_json(events));
  EXPECT_EQ(doc.at("traceEvents").array().size(), 500u);
}

}  // namespace
}  // namespace hetero::obs
