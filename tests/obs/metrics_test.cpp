#include "hetero/obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

namespace hetero::obs {
namespace {

TEST(HistogramBucketsTest, NonpositiveAndNanLandInBucketZero) {
  EXPECT_EQ(HistogramBuckets::index_for(0.0), 0u);
  EXPECT_EQ(HistogramBuckets::index_for(-1.0), 0u);
  EXPECT_EQ(HistogramBuckets::index_for(std::nan("")), 0u);
}

TEST(HistogramBucketsTest, MatchesFrexpExponentForNormals) {
  for (double value : {1e-9, 0.001, 0.5, 1.0, 1.5, 2.0, 3.14, 1000.0, 1e8}) {
    int exponent = 0;
    std::frexp(value, &exponent);
    const int raw = exponent - HistogramBuckets::kMinExponent;
    const std::size_t expected = raw <= 0 ? 0u
                                 : raw >= static_cast<int>(HistogramBuckets::kCount)
                                     ? HistogramBuckets::kCount - 1
                                     : static_cast<std::size_t>(raw);
    EXPECT_EQ(HistogramBuckets::index_for(value), expected) << "value " << value;
  }
}

TEST(HistogramBucketsTest, ValuesSitWithinTheirBucketBounds) {
  // Buckets are half-open: [2^(i-1+kMinExponent), 2^(i+kMinExponent)).
  for (double value : {1e-6, 0.25, 1.0, 7.0, 12345.0}) {
    const std::size_t index = HistogramBuckets::index_for(value);
    EXPECT_LT(value, HistogramBuckets::upper_bound(index));
    if (index > 0) EXPECT_GE(value, HistogramBuckets::upper_bound(index - 1));
  }
}

TEST(HistogramBucketsTest, ExtremesClampToEndBuckets) {
  EXPECT_EQ(HistogramBuckets::index_for(1e-300), 0u);
  EXPECT_EQ(HistogramBuckets::index_for(1e300), HistogramBuckets::kCount - 1);
  EXPECT_EQ(HistogramBuckets::index_for(std::numeric_limits<double>::infinity()),
            HistogramBuckets::kCount - 1);
}

#if HETERO_OBS_ENABLED

TEST(CounterTest, AddsAndResets) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(CounterTest, ConcurrentAddsAreLossless) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kAddsPerThread; ++i) counter.add();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
}

TEST(GaugeTest, SetAddMax) {
  Gauge gauge;
  gauge.set(2.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.5);
  gauge.add(1.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 4.0);
  gauge.update_max(3.0);  // below current: no change
  EXPECT_DOUBLE_EQ(gauge.value(), 4.0);
  gauge.update_max(10.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 10.0);
  gauge.reset();
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
}

TEST(HistogramTest, RecordAccumulatesCountSumBuckets) {
  Histogram histogram;
  histogram.record(0.75);  // bucket of 2^0
  histogram.record(0.75);
  histogram.record(6.0);  // bucket of 2^3
  const HistogramSample sample = histogram.sample("test");
  EXPECT_EQ(sample.count, 3u);
  EXPECT_DOUBLE_EQ(sample.sum, 7.5);
  EXPECT_EQ(sample.buckets[HistogramBuckets::index_for(0.75)], 2u);
  EXPECT_EQ(sample.buckets[HistogramBuckets::index_for(6.0)], 1u);
}

TEST(HistogramTest, MergeFoldsLocalBatch) {
  Histogram histogram;
  LocalHistogram local;
  for (int i = 1; i <= 100; ++i) local.record(static_cast<double>(i));
  histogram.merge(local);
  histogram.record(0.5);
  const HistogramSample sample = histogram.sample("test");
  EXPECT_EQ(sample.count, 101u);
  EXPECT_DOUBLE_EQ(sample.sum, 5050.5);
}

TEST(RegistryTest, SameNameYieldsSameObject) {
  Registry& registry = Registry::global();
  Counter& a = registry.counter("test.registry.same");
  Counter& b = registry.counter("test.registry.same");
  EXPECT_EQ(&a, &b);
  Gauge& g1 = registry.gauge("test.registry.same");  // separate kind namespace
  Gauge& g2 = registry.gauge("test.registry.same");
  EXPECT_EQ(&g1, &g2);
}

TEST(RegistryTest, SnapshotSortedByNameAndResetZeroesInPlace) {
  Registry& registry = Registry::global();
  Counter& zebra = registry.counter("test.zz.last");
  Counter& alpha = registry.counter("test.aa.first");
  zebra.add(7);
  alpha.add(3);
  registry.histogram("test.hist").record(1.0);

  const MetricsSnapshot snapshot = registry.snapshot();
  ASSERT_GE(snapshot.counters.size(), 2u);
  for (std::size_t i = 1; i < snapshot.counters.size(); ++i) {
    EXPECT_LT(snapshot.counters[i - 1].name, snapshot.counters[i].name);
  }
  bool found = false;
  for (const CounterSample& sample : snapshot.counters) {
    if (sample.name == "test.zz.last") {
      EXPECT_EQ(sample.value, 7u);
      found = true;
    }
  }
  EXPECT_TRUE(found);

  registry.reset();
  EXPECT_EQ(zebra.value(), 0u);  // same object, zeroed — cached refs stay valid
  EXPECT_EQ(alpha.value(), 0u);
  zebra.add(1);
  EXPECT_EQ(registry.counter("test.zz.last").value(), 1u);
}

TEST(RegistryTest, EnabledBuildReportsEnabled) { EXPECT_TRUE(kEnabled); }

#else  // !HETERO_OBS_ENABLED

TEST(RegistryTest, DisabledBuildIsInertButCallable) {
  EXPECT_FALSE(kEnabled);
  Counter& counter = Registry::global().counter("test.disabled");
  counter.add(100);
  EXPECT_EQ(counter.value(), 0u);
  Registry::global().histogram("test.disabled").record(1.0);
  EXPECT_TRUE(Registry::global().snapshot().empty());
}

#endif  // HETERO_OBS_ENABLED

}  // namespace
}  // namespace hetero::obs
