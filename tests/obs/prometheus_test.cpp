#include "hetero/obs/prometheus.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

namespace hetero::obs {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream stream{text};
  std::string line;
  while (std::getline(stream, line)) lines.push_back(line);
  return lines;
}

TEST(PrometheusNameTest, PrefixesAndSanitizes) {
  EXPECT_EQ(prometheus_name("sim.events"), "hetero_sim_events");
  EXPECT_EQ(prometheus_name("already_clean"), "hetero_already_clean");
  EXPECT_EQ(prometheus_name("weird-name with spaces"), "hetero_weird_name_with_spaces");
}

TEST(PrometheusTextTest, EmptySnapshotRendersEmpty) {
  EXPECT_EQ(prometheus_text(MetricsSnapshot{}), "");
}

TEST(PrometheusTextTest, CounterAndGaugeLines) {
  MetricsSnapshot snapshot;
  snapshot.counters.push_back(CounterSample{"sim.events", 42});
  snapshot.gauges.push_back(GaugeSample{"sim.calendar_depth_hwm", 3.5});
  const auto lines = lines_of(prometheus_text(snapshot));
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0], "# TYPE hetero_sim_events counter");
  EXPECT_EQ(lines[1], "hetero_sim_events 42");
  EXPECT_EQ(lines[2], "# TYPE hetero_sim_calendar_depth_hwm gauge");
  EXPECT_EQ(lines[3], "hetero_sim_calendar_depth_hwm 3.5");
}

TEST(PrometheusTextTest, HistogramBucketsAreCumulativeAndEndInInf) {
  MetricsSnapshot snapshot;
  HistogramSample histogram;
  histogram.name = "lat";
  histogram.buckets[HistogramBuckets::index_for(0.75)] = 2;  // le 1
  histogram.buckets[HistogramBuckets::index_for(3.0)] = 3;   // le 4
  histogram.count = 5;
  histogram.sum = 10.5;
  snapshot.histograms.push_back(histogram);

  const std::string text = prometheus_text(snapshot);
  const auto lines = lines_of(text);
  ASSERT_GE(lines.size(), 6u);
  EXPECT_EQ(lines[0], "# TYPE hetero_lat histogram");
  EXPECT_EQ(lines[1], "hetero_lat_bucket{le=\"1\"} 2");
  EXPECT_EQ(lines[2], "hetero_lat_bucket{le=\"4\"} 5");  // cumulative
  EXPECT_EQ(lines[3], "hetero_lat_bucket{le=\"+Inf\"} 5");
  EXPECT_EQ(lines[4], "hetero_lat_sum 10.5");
  EXPECT_EQ(lines[5], "hetero_lat_count 5");
}

TEST(PrometheusTextTest, TopBucketRendersAsInf) {
  MetricsSnapshot snapshot;
  HistogramSample histogram;
  histogram.name = "overflow";
  histogram.buckets[HistogramBuckets::kCount - 1] = 4;
  histogram.count = 4;
  histogram.sum = 12.5;
  snapshot.histograms.push_back(histogram);

  const auto lines = lines_of(prometheus_text(snapshot));
  EXPECT_EQ(lines[1], "hetero_overflow_bucket{le=\"+Inf\"} 4");
  // No duplicate +Inf row: bucket line already covers the total.
  EXPECT_EQ(lines[2], "hetero_overflow_sum 12.5");
  EXPECT_EQ(lines[3], "hetero_overflow_count 4");
}

}  // namespace
}  // namespace hetero::obs
