#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "hetero/obs/metrics.h"

namespace obs = hetero::obs;

namespace {

obs::HistogramSample sample_of(const std::vector<double>& values) {
  obs::HistogramSample sample;
  for (const double v : values) {
    ++sample.buckets[obs::HistogramBuckets::index_for(v)];
    ++sample.count;
    sample.sum += v;
  }
  return sample;
}

/// Exact type-7 quantile of raw values, the reference the histogram
/// estimate is judged against.
double exact_quantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  const double rank = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

}  // namespace

TEST(HistogramQuantile, EmptyIsZero) {
  const obs::HistogramSample empty;
  EXPECT_EQ(empty.quantile(0.5), 0.0);
  EXPECT_EQ(empty.p99(), 0.0);
}

TEST(HistogramQuantile, SingleValueLandsInItsBucket) {
  const obs::HistogramSample sample = sample_of({3.0});
  const std::size_t bucket = obs::HistogramBuckets::index_for(3.0);
  const double lo = obs::HistogramBuckets::upper_bound(bucket - 1);
  const double hi = obs::HistogramBuckets::upper_bound(bucket);
  for (const double q : {0.0, 0.5, 0.95, 1.0}) {
    const double estimate = sample.quantile(q);
    EXPECT_GE(estimate, lo);
    EXPECT_LE(estimate, hi);
  }
}

TEST(HistogramQuantile, ClampsQ) {
  const obs::HistogramSample sample = sample_of({1.0, 2.0, 4.0});
  EXPECT_EQ(sample.quantile(-1.0), sample.quantile(0.0));
  EXPECT_EQ(sample.quantile(2.0), sample.quantile(1.0));
}

TEST(HistogramQuantile, MonotoneInQ) {
  const obs::HistogramSample sample =
      sample_of({0.001, 0.002, 0.004, 0.01, 0.05, 0.2, 0.9, 3.0, 7.0, 20.0});
  double previous = 0.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double estimate = sample.quantile(q);
    EXPECT_GE(estimate, previous);
    previous = estimate;
  }
}

// The documented accuracy bound: the estimate is within one power-of-two
// bucket of the true quantile, i.e. estimate/true in [1/2, 2] (with slack
// for interpolation at bucket edges).
TEST(HistogramQuantile, WithinOneBucketOfExact) {
  std::vector<double> values;
  for (int i = 1; i <= 200; ++i) values.push_back(0.0005 * static_cast<double>(i * i));
  const obs::HistogramSample sample = sample_of(values);
  for (const double q : {0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
    const double exact = exact_quantile(values, q);
    const double estimate = sample.quantile(q);
    EXPECT_GE(estimate, 0.5 * exact) << "q = " << q;
    EXPECT_LE(estimate, 2.0 * exact) << "q = " << q;
  }
}

TEST(HistogramQuantile, PercentileHelpersMatchQuantile) {
  const obs::HistogramSample sample = sample_of({0.25, 0.5, 1.0, 2.0, 4.0, 8.0});
  EXPECT_EQ(sample.p50(), sample.quantile(0.50));
  EXPECT_EQ(sample.p95(), sample.quantile(0.95));
  EXPECT_EQ(sample.p99(), sample.quantile(0.99));
}

#if HETERO_OBS_ENABLED
// The live histogram's snapshot feeds the same quantile path.
TEST(HistogramQuantile, LiveHistogramSnapshotQuantiles) {
  obs::Histogram histogram;
  for (int i = 0; i < 100; ++i) histogram.record(1.0);
  for (int i = 0; i < 5; ++i) histogram.record(100.0);
  const obs::HistogramSample sample = histogram.sample("t");
  EXPECT_GE(sample.p50(), 0.5);
  EXPECT_LE(sample.p50(), 2.0);
  EXPECT_GE(sample.p99(), 50.0);
}
#endif
