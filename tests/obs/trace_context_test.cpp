#include "hetero/obs/trace_context.h"

#include <gtest/gtest.h>

#include <set>

namespace obs = hetero::obs;

TEST(TraceContext, RootIsDeterministicAndValid) {
  const obs::TraceContext a = obs::trace_root(42);
  const obs::TraceContext b = obs::trace_root(42);
  EXPECT_EQ(a.trace_id, b.trace_id);
  EXPECT_EQ(a.span_id, b.span_id);
  EXPECT_TRUE(a.valid());
  EXPECT_NE(a.trace_id, 0u);
  EXPECT_NE(a.span_id, 0u);
}

TEST(TraceContext, DistinctSeedsGetDistinctTraces) {
  std::set<std::uint64_t> ids;
  for (std::uint64_t seed = 0; seed < 256; ++seed) {
    ids.insert(obs::trace_root(seed).trace_id);
  }
  EXPECT_EQ(ids.size(), 256u);
}

TEST(TraceContext, DeriveSpanIdIsDeterministicPerSlot) {
  const obs::TraceContext root = obs::trace_root(7);
  EXPECT_EQ(obs::derive_span_id(root, 3), obs::derive_span_id(root, 3));

  std::set<std::uint64_t> ids;
  for (std::uint64_t slot = 0; slot < 512; ++slot) {
    const std::uint64_t id = obs::derive_span_id(root, slot);
    EXPECT_NE(id, 0u);
    ids.insert(id);
  }
  EXPECT_EQ(ids.size(), 512u) << "child span ids must not collide across slots";
}

TEST(TraceContext, ChildrenOfDifferentParentsDiffer) {
  const obs::TraceContext root = obs::trace_root(7);
  const obs::TraceContext primary{root.trace_id, obs::derive_span_id(root, 0)};
  EXPECT_NE(obs::derive_span_id(root, 1), obs::derive_span_id(primary, 1));
}

TEST(TraceContext, OutcomeCodesRoundTrip) {
  using namespace obs::outcome;
  const char* tags[] = {kOk, kRetry, kSpeculativeWin, kSpeculativeLoss, kCancelled, kFault};
  for (std::uint64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(code(tags[i]), i);
    EXPECT_STREQ(from_code(i), tags[i]);
  }
}

// code() matches by pointer identity: equal characters in different storage
// are "unknown" and collapse to the fault code, as do out-of-range wires.
TEST(TraceContext, OutcomeCodeMatchesByPointerIdentity) {
  const std::string ok = "ok";  // same characters, different storage
  EXPECT_EQ(obs::outcome::code(ok.c_str()), 5u);
  EXPECT_STREQ(obs::outcome::from_code(99), obs::outcome::kFault);
}

#if HETERO_OBS_ENABLED
TEST(TraceContext, ContextGuardSwapsAndRestores) {
  EXPECT_FALSE(obs::current_context().valid());
  {
    const obs::TraceContext outer{11, 22};
    obs::ContextGuard outer_guard{outer};
    EXPECT_EQ(obs::current_context().trace_id, 11u);
    EXPECT_EQ(obs::current_context().span_id, 22u);
    {
      const obs::TraceContext inner{33, 44};
      obs::ContextGuard inner_guard{inner};
      EXPECT_EQ(obs::current_context().span_id, 44u);
    }
    EXPECT_EQ(obs::current_context().span_id, 22u);
  }
  EXPECT_FALSE(obs::current_context().valid());
}
#endif
