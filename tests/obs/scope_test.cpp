#include "hetero/obs/scope.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

namespace hetero::obs {
namespace {

#if HETERO_OBS_ENABLED

std::size_t count_named(const std::vector<Span>& spans, const std::string& name) {
  return static_cast<std::size_t>(std::count_if(
      spans.begin(), spans.end(), [&name](const Span& span) { return span.name == name; }));
}

TEST(ProfileScopeTest, RecordsOneSpanPerScope) {
  SpanCollector& collector = SpanCollector::global();
  collector.clear();
  {
    HETERO_OBS_SCOPE("scope_test.outer");
  }
  {
    HETERO_OBS_SCOPE("scope_test.outer");
  }
  const std::vector<Span> spans = collector.snapshot();
  EXPECT_EQ(count_named(spans, "scope_test.outer"), 2u);
}

TEST(ProfileScopeTest, SpansHaveNonNegativeDurationAndMonotoneClock) {
  SpanCollector& collector = SpanCollector::global();
  collector.clear();
  const std::uint64_t before = SpanCollector::now_ns();
  {
    HETERO_OBS_SCOPE("scope_test.timed");
  }
  const std::uint64_t after = SpanCollector::now_ns();
  EXPECT_LE(before, after);
  for (const Span& span : collector.snapshot()) {
    if (std::string{span.name} != "scope_test.timed") continue;
    EXPECT_LE(span.start_ns, span.end_ns);
    EXPECT_GE(span.start_ns, before);
    EXPECT_LE(span.end_ns, after);
  }
}

TEST(ProfileScopeTest, NestedScopesAreContained) {
  SpanCollector& collector = SpanCollector::global();
  collector.clear();
  {
    HETERO_OBS_SCOPE("scope_test.parent");
    HETERO_OBS_SCOPE("scope_test.child");
  }
  const std::vector<Span> spans = collector.snapshot();
  const Span* parent = nullptr;
  const Span* child = nullptr;
  for (const Span& span : spans) {
    if (std::string{span.name} == "scope_test.parent") parent = &span;
    if (std::string{span.name} == "scope_test.child") child = &span;
  }
  ASSERT_NE(parent, nullptr);
  ASSERT_NE(child, nullptr);
  EXPECT_LE(parent->start_ns, child->start_ns);
  EXPECT_GE(parent->end_ns, child->end_ns);  // child destructs first
  EXPECT_EQ(parent->tid, child->tid);
}

TEST(ProfileScopeTest, ThreadsGetDistinctTidsAndSpansSurviveJoin) {
  SpanCollector& collector = SpanCollector::global();
  collector.clear();
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] { HETERO_OBS_SCOPE("scope_test.worker"); });
  }
  for (std::thread& thread : threads) thread.join();
  {
    HETERO_OBS_SCOPE("scope_test.main");
  }

  const std::vector<Span> spans = collector.snapshot();
  EXPECT_EQ(count_named(spans, "scope_test.worker"), static_cast<std::size_t>(kThreads));
  std::vector<std::uint32_t> worker_tids;
  for (const Span& span : spans) {
    if (std::string{span.name} == "scope_test.worker") worker_tids.push_back(span.tid);
  }
  std::sort(worker_tids.begin(), worker_tids.end());
  EXPECT_EQ(std::unique(worker_tids.begin(), worker_tids.end()), worker_tids.end())
      << "each recording thread must own a distinct tid";
}

TEST(SpanCollectorTest, ClearDropsEverything) {
  SpanCollector& collector = SpanCollector::global();
  {
    HETERO_OBS_SCOPE("scope_test.to_clear");
  }
  collector.clear();
  EXPECT_EQ(count_named(collector.snapshot(), "scope_test.to_clear"), 0u);
}

#else  // !HETERO_OBS_ENABLED

TEST(ProfileScopeTest, DisabledBuildRecordsNothing) {
  {
    HETERO_OBS_SCOPE("scope_test.disabled");
  }
  EXPECT_TRUE(SpanCollector::global().snapshot().empty());
}

#endif  // HETERO_OBS_ENABLED

}  // namespace
}  // namespace hetero::obs
