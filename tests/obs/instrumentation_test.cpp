// Cross-layer checks that the instrumented subsystems actually feed the
// metrics registry: sim engine, thread pool, exact LP solver, campaigns.
// Everything asserts on before/after deltas so test order (and other tests
// in this binary touching the same global registry) cannot interfere.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "hetero/core/environment.h"
#include "hetero/experiments/campaign.h"
#include "hetero/numeric/matrix.h"
#include "hetero/numeric/simplex.h"
#include "hetero/obs/metrics.h"
#include "hetero/obs/scope.h"
#include "hetero/parallel/thread_pool.h"
#include "hetero/protocol/lp_solver.h"
#include "hetero/sim/engine.h"

namespace hetero {
namespace {

class InstrumentationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!obs::kEnabled) GTEST_SKIP() << "metrics disabled in this build";
  }

  static std::uint64_t counter_value(const std::string& name) {
    return obs::Registry::global().counter(name).value();
  }
  static std::uint64_t histogram_count(const std::string& name) {
    return obs::Registry::global().histogram(name).sample(name).count;
  }
};

TEST_F(InstrumentationTest, SimEngineCountsEventsAndTimeAdvances) {
  const std::uint64_t events_before = counter_value("sim.events");
  const std::uint64_t runs_before = counter_value("sim.runs");
  const std::uint64_t advances_before = histogram_count("sim.time_advance");

  sim::SimEngine engine;
  int fired = 0;
  for (int i = 0; i < 5; ++i) {
    engine.schedule_at(static_cast<double>(i), [&fired] { ++fired; });
  }
  engine.run();

  EXPECT_EQ(fired, 5);
  EXPECT_EQ(counter_value("sim.events") - events_before, 5u);
  EXPECT_EQ(counter_value("sim.runs") - runs_before, 1u);
  EXPECT_EQ(histogram_count("sim.time_advance") - advances_before, 5u);
  EXPECT_EQ(engine.calendar_depth_high_water(), 5u);
  EXPECT_GE(obs::Registry::global().gauge("sim.calendar_depth_hwm").value(), 5.0);
}

TEST_F(InstrumentationTest, ThreadPoolRecordsTasksWaitAndRunLatency) {
  const std::uint64_t tasks_before = counter_value("parallel.tasks");
  const std::uint64_t busy_before = counter_value("parallel.worker_busy_ns");
  const std::uint64_t waits_before = histogram_count("parallel.task_wait_us");
  const std::uint64_t runs_before = histogram_count("parallel.task_run_us");

  constexpr std::uint64_t kTasks = 32;
  {
    parallel::ThreadPool pool{2};
    std::vector<std::future<int>> futures;
    futures.reserve(kTasks);
    for (std::uint64_t i = 0; i < kTasks; ++i) {
      futures.push_back(pool.submit([i] { return static_cast<int>(i); }));
    }
    for (auto& future : futures) future.get();
  }

  EXPECT_EQ(counter_value("parallel.tasks") - tasks_before, kTasks);
  EXPECT_EQ(histogram_count("parallel.task_wait_us") - waits_before, kTasks);
  EXPECT_EQ(histogram_count("parallel.task_run_us") - runs_before, kTasks);
  EXPECT_GE(counter_value("parallel.worker_busy_ns"), busy_before);
  EXPECT_GE(obs::Registry::global().gauge("parallel.queue_depth_hwm").value(), 1.0);
}

TEST_F(InstrumentationTest, SimplexSolveRecordsPivotsAndLiftCacheRate) {
  const std::uint64_t solves_before = counter_value("lp.solves");
  const std::uint64_t pivots_before = counter_value("lp.pivots");
  const std::uint64_t lookups_before = counter_value("lp.lift_lookups");
  const std::uint64_t hits_before = counter_value("lp.lift_hits");

  // maximize x + y st x <= 2, y <= 3 — two pivots, optimum 5.
  numeric::Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(1, 1) = 1.0;
  const std::vector<double> b{2.0, 3.0};
  const std::vector<double> c{1.0, 1.0};
  const auto solution = numeric::SimplexSolver{}.maximize(c, a, b);
  ASSERT_EQ(solution.status, numeric::LpStatus::kOptimal);
  EXPECT_DOUBLE_EQ(solution.objective, 5.0);

  EXPECT_EQ(counter_value("lp.solves") - solves_before, 1u);
  EXPECT_EQ(counter_value("lp.pivots") - pivots_before,
            static_cast<std::uint64_t>(solution.iterations));
  const std::uint64_t lookups = counter_value("lp.lift_lookups") - lookups_before;
  const std::uint64_t hits = counter_value("lp.lift_hits") - hits_before;
  EXPECT_GT(lookups, 0u);
  EXPECT_GT(hits, 0u);  // the repeated 1.0 coefficients must hit the memo
  EXPECT_LT(hits, lookups);
}

TEST_F(InstrumentationTest, ProtocolLpSolveLeavesAWallClockSpan) {
  obs::SpanCollector::global().clear();
  const core::Environment env = core::Environment::paper_default();
  const std::vector<double> speeds{1.0, 0.5};
  const auto result =
      protocol::solve_protocol_lp(speeds, env, 100.0, protocol::ProtocolOrders::fifo(2));
  EXPECT_EQ(result.status, numeric::LpStatus::kOptimal);

  bool found = false;
  for (const obs::Span& span : obs::SpanCollector::global().snapshot()) {
    if (std::string{span.name} == "protocol.solve_lp") {
      found = true;
      EXPECT_LE(span.start_ns, span.end_ns);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(InstrumentationTest, CampaignRecordsRoundsWorkAndAttrition) {
  const std::uint64_t campaigns_before = counter_value("experiments.campaigns");
  const std::uint64_t rounds_before = counter_value("experiments.rounds");
  const std::uint64_t lost_before = counter_value("experiments.machines_lost");
  const std::uint64_t round_hist_before = histogram_count("experiments.round_work");
  const double completed_before =
      obs::Registry::global().gauge("experiments.completed_work").value();

  const core::Environment env = core::Environment::paper_default();
  const std::vector<double> speeds{1.0, 0.5, 0.25};
  experiments::CampaignConfig config;
  config.total_time = 400.0;
  config.round_length = 100.0;
  const std::vector<experiments::CampaignFailure> failures{{2, 150.0}};
  const auto result = experiments::run_campaign(speeds, env, config, failures);

  EXPECT_EQ(counter_value("experiments.campaigns") - campaigns_before, 1u);
  EXPECT_EQ(counter_value("experiments.rounds") - rounds_before,
            static_cast<std::uint64_t>(result.rounds));
  EXPECT_EQ(counter_value("experiments.machines_lost") - lost_before,
            static_cast<std::uint64_t>(result.machines_lost));
  EXPECT_EQ(histogram_count("experiments.round_work") - round_hist_before,
            static_cast<std::uint64_t>(result.rounds));
  EXPECT_NEAR(obs::Registry::global().gauge("experiments.completed_work").value() -
                  completed_before,
              result.completed_work, 1e-9);
  EXPECT_EQ(result.machines_lost, 1u);
}

}  // namespace
}  // namespace hetero
