#include "hetero/obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

namespace obs = hetero::obs;

#if HETERO_OBS_ENABLED

namespace {

std::string temp_path(const char* stem) {
  const ::testing::TestInfo* info = ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + info->test_suite_name() + "_" + info->name() + "_" + stem;
}

std::string slurp(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  return {std::istreambuf_iterator<char>{in}, std::istreambuf_iterator<char>{}};
}

}  // namespace

TEST(FlightRecorder, RecordsAndSnapshotsInOrder) {
  obs::FlightRecorder recorder{16};
  recorder.record(obs::EventKind::kRetry, "runner.retry", 3, 1, 0.25);
  recorder.record(obs::EventKind::kFault, "sim.crash-detected", 7, 0, 12.5);

  const std::vector<obs::FlightEvent> events = recorder.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, obs::EventKind::kRetry);
  EXPECT_STREQ(events[0].name, "runner.retry");
  EXPECT_EQ(events[0].a, 3u);
  EXPECT_EQ(events[0].b, 1u);
  EXPECT_DOUBLE_EQ(events[0].d, 0.25);
  EXPECT_EQ(events[1].kind, obs::EventKind::kFault);
  EXPECT_LT(events[0].seq, events[1].seq);
  EXPECT_LE(events[0].t_ns, events[1].t_ns);
}

TEST(FlightRecorder, WraparoundDropsOldestOnly) {
  obs::FlightRecorder recorder{8};
  for (std::uint64_t i = 0; i < 20; ++i) {
    recorder.record(obs::EventKind::kNote, "tick", i);
  }
  const std::vector<obs::FlightEvent> events = recorder.snapshot();
  ASSERT_EQ(events.size(), 8u);
  // The survivors are exactly the 8 newest, oldest first.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, 12 + i);
    EXPECT_EQ(events[i].seq, 12 + i);
  }
}

TEST(FlightRecorder, ClearForgetsButSequencesAdvance) {
  obs::FlightRecorder recorder{8};
  recorder.record(obs::EventKind::kNote, "before");
  recorder.clear();
  EXPECT_TRUE(recorder.snapshot().empty());
  recorder.record(obs::EventKind::kNote, "after");
  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "after");
  EXPECT_GE(events[0].seq, 1u);
}

TEST(FlightRecorder, NamesAreSanitizedAndTruncated) {
  obs::FlightRecorder recorder{4};
  recorder.record(obs::EventKind::kNote, "we\"ird\\name\nwith control\x01 bytes");
  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "we_ird_name_with control_ bytes");

  std::string longname(100, 'x');
  recorder.record(obs::EventKind::kNote, longname.c_str());
  const auto more = recorder.snapshot();
  ASSERT_EQ(more.size(), 2u);
  EXPECT_EQ(std::string(more[1].name).size(), obs::FlightEvent::kNameBytes - 1);
}

TEST(FlightRecorder, DumpLoadRoundTrip) {
  obs::FlightRecorder recorder{16};
  recorder.record(obs::EventKind::kSpanOpen, "runner.attempt", 4, 0, 0.0);
  recorder.record(obs::EventKind::kWatchdog, "runner.overdue", 4, 1, 1.5);
  recorder.record(obs::EventKind::kJournalAppend, "cell:4", 0, 57, 0.0);

  const std::string path = temp_path("box.jsonl");
  ASSERT_TRUE(recorder.dump(path.c_str(), "unit-test"));

  const obs::BlackBox box = obs::load_black_box(path);
  EXPECT_EQ(box.reason, "unit-test");
  EXPECT_EQ(box.torn_lines, 0u);
  ASSERT_EQ(box.events.size(), 3u);
  EXPECT_EQ(box.events[0].kind, obs::EventKind::kSpanOpen);
  EXPECT_STREQ(box.events[1].name, "runner.overdue");
  EXPECT_DOUBLE_EQ(box.events[1].d, 1.5);
  EXPECT_EQ(box.events[2].b, 57u);
  std::remove(path.c_str());
}

TEST(FlightRecorder, LineRoundTripAndRejection) {
  obs::FlightEvent event;
  event.seq = 12;
  event.t_ns = 3456;
  event.kind = obs::EventKind::kSpeculation;
  std::snprintf(event.name, sizeof event.name, "runner.speculate");
  event.a = 9;
  event.b = 2;
  event.d = -0.125;

  const std::string line = obs::black_box_line(event);
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');

  obs::FlightEvent parsed;
  ASSERT_TRUE(obs::parse_black_box_line(
      std::string_view{line}.substr(0, line.size() - 1), parsed));
  EXPECT_EQ(parsed.seq, event.seq);
  EXPECT_EQ(parsed.t_ns, event.t_ns);
  EXPECT_EQ(parsed.kind, event.kind);
  EXPECT_STREQ(parsed.name, event.name);
  EXPECT_EQ(parsed.a, event.a);
  EXPECT_EQ(parsed.b, event.b);
  EXPECT_DOUBLE_EQ(parsed.d, event.d);

  // Any single corrupted byte flips the CRC and the line is rejected.
  std::string corrupt = line.substr(0, line.size() - 1);
  const std::size_t victim = corrupt.find("\"n\"") + 5;
  corrupt[victim] = corrupt[victim] == 'r' ? 'z' : 'r';
  EXPECT_FALSE(obs::parse_black_box_line(corrupt, parsed));
  // Every proper prefix is rejected too (no valid torn line).
  for (std::size_t cut = 0; cut + 1 < line.size(); ++cut) {
    EXPECT_FALSE(obs::parse_black_box_line(std::string_view{line}.substr(0, cut), parsed));
  }
}

TEST(FlightRecorder, TornTailKeepsValidPrefix) {
  obs::FlightRecorder recorder{8};
  for (std::uint64_t i = 0; i < 5; ++i) recorder.record(obs::EventKind::kNote, "tick", i);
  const std::string path = temp_path("torn.jsonl");
  ASSERT_TRUE(recorder.dump(path.c_str(), "torn"));

  const std::string whole = slurp(path);
  // Truncate mid-way through the last line (simulating a torn write).
  const std::size_t last_newline = whole.rfind('\n', whole.size() - 2);
  {
    std::ofstream out{path, std::ios::binary | std::ios::trunc};
    out << whole.substr(0, last_newline + 1 + 7);
  }
  const obs::BlackBox box = obs::load_black_box(path);
  EXPECT_EQ(box.reason, "torn");
  EXPECT_EQ(box.events.size(), 4u);
  EXPECT_EQ(box.torn_lines, 1u);
  std::remove(path.c_str());
}

TEST(FlightRecorder, MissingFileThrows) {
  EXPECT_THROW(static_cast<void>(obs::load_black_box(temp_path("absent"))),
               std::runtime_error);
}

TEST(FlightRecorder, ConcurrentWritersStayConsistent) {
  obs::FlightRecorder recorder{64};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&recorder, t] {
      for (std::uint64_t i = 0; i < 2000; ++i) {
        recorder.record(obs::EventKind::kNote, "w", static_cast<std::uint64_t>(t), i);
      }
    });
  }
  // Concurrent snapshots must only ever see fully-published events.
  for (int i = 0; i < 50; ++i) {
    for (const obs::FlightEvent& e : recorder.snapshot()) {
      EXPECT_STREQ(e.name, "w");
      EXPECT_LT(e.a, 4u);
      EXPECT_LT(e.b, 2000u);
    }
  }
  for (std::thread& w : writers) w.join();
  const auto final_events = recorder.snapshot();
  EXPECT_EQ(final_events.size(), 64u);
}

#endif  // HETERO_OBS_ENABLED
