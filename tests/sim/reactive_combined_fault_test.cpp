// ReactiveFifoPlanner under *combined* crash + straggler fault plans — the
// regime the protocol sweep exercises — plus the banked-results series that
// turns fixed-lifespan runs into fixed-work makespans.

#include "hetero/sim/reactive.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "hetero/sim/fault.h"

namespace hetero::sim {
namespace {

const core::Environment kEnv = core::Environment::paper_default();
const std::vector<double> kSpeeds{1.0, 0.5, 0.25, 0.125};
constexpr double kLifespan = 400.0;

FaultPlan combined_plan() {
  FaultPlan plan;
  plan.crashes.push_back(CrashFault{0, 0.3 * kLifespan});
  plan.slowdowns.push_back(SlowdownFault{1, 0.1 * kLifespan, 3.0});
  plan.stalls.push_back(StallFault{2, 0.2 * kLifespan, 0.05 * kLifespan});
  return plan;
}

TEST(ReactiveCombinedFaults, DetectsBothFamiliesAndKeepsWorking) {
  const auto run = run_reactive_fifo(kSpeeds, kEnv, kLifespan, combined_plan());
  EXPECT_GE(run.rounds, 2u);
  EXPECT_GE(run.replans, 1u);
  EXPECT_EQ(run.machines_crashed, 1u);
  EXPECT_GT(run.completed_work, 0.0);

  bool saw_crash = false;
  bool saw_straggler = false;
  for (const Detection& d : run.faults.detections) {
    saw_crash = saw_crash || d.kind == DetectionKind::kCrash;
    saw_straggler = saw_straggler || d.kind == DetectionKind::kStraggler;
  }
  EXPECT_TRUE(saw_crash);
  EXPECT_TRUE(saw_straggler);

  // The reaction pays off: strictly more banked work than riding the same
  // faults out with the oblivious protocol.
  const auto oblivious = run_fifo_with_faults(kSpeeds, kEnv, kLifespan, combined_plan());
  EXPECT_GT(run.completed_work, oblivious.completed_work);
}

TEST(ReactiveCombinedFaults, CombinedRunsAreBitwiseDeterministic) {
  const auto a = run_reactive_fifo(kSpeeds, kEnv, kLifespan, combined_plan());
  const auto b = run_reactive_fifo(kSpeeds, kEnv, kLifespan, combined_plan());
  EXPECT_EQ(a.completed_work, b.completed_work);  // bitwise
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.replans, b.replans);
  ASSERT_EQ(a.banked.size(), b.banked.size());
  for (std::size_t i = 0; i < a.banked.size(); ++i) {
    EXPECT_EQ(a.banked[i].at, b.banked[i].at);
    EXPECT_EQ(a.banked[i].work, b.banked[i].work);
  }
}

TEST(ReactiveCombinedFaults, BankedSeriesSumsToCompletedWork) {
  for (const FaultPlan& plan : {FaultPlan{}, combined_plan()}) {
    for (const auto& run : {run_reactive_fifo(kSpeeds, kEnv, kLifespan, plan),
                            run_fifo_with_faults(kSpeeds, kEnv, kLifespan, plan)}) {
      double banked = 0.0;
      double previous = 0.0;
      for (const BankedResult& landing : run.banked) {
        EXPECT_GE(landing.at, previous);  // absolute-time order
        EXPECT_GT(landing.work, 0.0);
        previous = landing.at;
        banked += landing.work;
      }
      EXPECT_NEAR(banked, run.completed_work, 1e-6 * (1.0 + run.completed_work));
    }
  }
}

TEST(ReactiveCombinedFaults, CrossingTimeIsMonotoneInTarget) {
  const auto run = run_reactive_fifo(kSpeeds, kEnv, kLifespan, combined_plan());
  ASSERT_FALSE(run.banked.empty());
  EXPECT_EQ(banked_crossing_time(run.banked, 0.0), 0.0);
  double last = 0.0;
  for (double fraction : {0.25, 0.5, 0.75, 1.0}) {
    const double crossing =
        banked_crossing_time(run.banked, fraction * run.completed_work, 1e-6);
    EXPECT_GE(crossing, last);
    EXPECT_LE(crossing, kLifespan * (1.0 + 1e-9));
    last = crossing;
  }
  // Beyond everything the series ever banks: never crossed.
  EXPECT_EQ(banked_crossing_time(run.banked, 2.0 * run.completed_work + 1.0),
            std::numeric_limits<double>::infinity());
}

TEST(ReactiveCombinedFaults, CrossingMatchesTheExactLandingInstant) {
  const std::vector<BankedResult> series{{10.0, 5.0}, {20.0, 5.0}, {30.0, 5.0}};
  EXPECT_EQ(banked_crossing_time(series, 4.0), 10.0);
  EXPECT_EQ(banked_crossing_time(series, 5.0), 10.0);
  EXPECT_EQ(banked_crossing_time(series, 5.1), 20.0);
  EXPECT_EQ(banked_crossing_time(series, 15.0), 30.0);
  EXPECT_EQ(banked_crossing_time(series, 15.1), std::numeric_limits<double>::infinity());
}

}  // namespace
}  // namespace hetero::sim
