// Pins SimEngine::run_until's clock-advance contract (see engine.h):
//   - events with time <= horizon run, including cascades landing in-horizon;
//   - events strictly after the horizon stay queued;
//   - afterwards the clock reads max(now, horizon), never moving backwards.

#include "hetero/sim/engine.h"

#include <gtest/gtest.h>

#include <vector>

namespace hetero::sim {
namespace {

TEST(RunUntilTest, EmptyCalendarStillAdvancesClockToHorizon) {
  SimEngine engine;
  engine.run_until(10.0);
  EXPECT_DOUBLE_EQ(engine.now(), 10.0);
  EXPECT_EQ(engine.events_processed(), 0u);
}

TEST(RunUntilTest, EventExactlyAtHorizonRuns) {
  SimEngine engine;
  bool fired = false;
  engine.schedule_at(5.0, [&fired] { fired = true; });
  engine.run_until(5.0);
  EXPECT_TRUE(fired);
  EXPECT_DOUBLE_EQ(engine.now(), 5.0);
}

TEST(RunUntilTest, EventsAfterHorizonStayQueuedThenRunLater) {
  SimEngine engine;
  std::vector<int> fired;
  engine.schedule_at(1.0, [&fired] { fired.push_back(1); });
  engine.schedule_at(3.0, [&fired] { fired.push_back(3); });
  engine.schedule_at(7.0, [&fired] { fired.push_back(7); });

  engine.run_until(4.0);
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
  EXPECT_DOUBLE_EQ(engine.now(), 4.0);

  engine.run();  // drains the event left beyond the horizon
  EXPECT_EQ(fired, (std::vector<int>{1, 3, 7}));
  EXPECT_DOUBLE_EQ(engine.now(), 7.0);
}

TEST(RunUntilTest, CascadedEventsWithinHorizonRun) {
  SimEngine engine;
  int depth = 0;
  engine.schedule_at(1.0, [&engine, &depth] {
    ++depth;
    engine.schedule_after(1.0, [&engine, &depth] {
      ++depth;
      engine.schedule_after(10.0, [&depth] { ++depth; });  // t=12: beyond
    });
  });
  engine.run_until(5.0);
  EXPECT_EQ(depth, 2);  // t=1 and t=2 ran; t=12 still queued
  EXPECT_DOUBLE_EQ(engine.now(), 5.0);
}

TEST(RunUntilTest, HorizonBelowClockIsANoOpAndClockNeverRewinds) {
  SimEngine engine;
  bool fired = false;
  engine.schedule_at(6.0, [] {});
  engine.run_until(8.0);
  ASSERT_DOUBLE_EQ(engine.now(), 8.0);

  engine.schedule_at(9.0, [&fired] { fired = true; });
  engine.run_until(3.0);  // below the current clock
  EXPECT_FALSE(fired);
  EXPECT_DOUBLE_EQ(engine.now(), 8.0) << "clock must not move backwards";

  engine.run_until(9.0);
  EXPECT_TRUE(fired);
  EXPECT_DOUBLE_EQ(engine.now(), 9.0);
}

TEST(RunUntilTest, RepeatedHorizonIsIdempotent) {
  SimEngine engine;
  int fired = 0;
  engine.schedule_at(2.0, [&fired] { ++fired; });
  engine.run_until(4.0);
  engine.run_until(4.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(engine.now(), 4.0);
}

TEST(RunUntilTest, TracksCalendarDepthHighWaterMark) {
  SimEngine engine;
  for (int i = 0; i < 4; ++i) {
    engine.schedule_at(static_cast<double>(i), [] {});
  }
  EXPECT_EQ(engine.calendar_depth_high_water(), 4u);
  engine.run();
  // Draining never lowers the high-water mark.
  EXPECT_EQ(engine.calendar_depth_high_water(), 4u);
}

}  // namespace
}  // namespace hetero::sim
