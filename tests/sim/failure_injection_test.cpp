#include <gtest/gtest.h>

#include "hetero/protocol/fifo.h"
#include "hetero/sim/worksharing.h"

namespace hetero::sim {
namespace {

const core::Environment kEnv = core::Environment::paper_default();

SimulationResult run_with(const std::vector<double>& speeds, double lifespan,
                          const SimulationOptions& options) {
  const auto allocations = protocol::fifo_allocations(speeds, kEnv, lifespan);
  return simulate_worksharing(speeds, kEnv, allocations,
                              protocol::ProtocolOrders::fifo(speeds.size()), options);
}

TEST(FailureInjection, NoFailuresMatchesBaseline) {
  const std::vector<double> speeds{1.0, 0.5, 0.25};
  const auto baseline = run_with(speeds, 100.0, SimulationOptions{});
  const auto allocations = protocol::fifo_allocations(speeds, kEnv, 100.0);
  const auto plain = simulate_worksharing(speeds, kEnv, allocations,
                                          protocol::ProtocolOrders::fifo(3));
  EXPECT_DOUBLE_EQ(baseline.completed_work(100.0), plain.completed_work(100.0));
  for (const auto& o : baseline.outcomes) EXPECT_FALSE(o.failed);
}

TEST(FailureInjection, EarlyCrashLosesExactlyThatLoad) {
  const std::vector<double> speeds{1.0, 0.5, 0.25};
  const double lifespan = 100.0;
  SimulationOptions options;
  options.failures.push_back(MachineFailure{1, 1.0});  // dies long before finishing
  const auto result = run_with(speeds, lifespan, options);
  const auto baseline = run_with(speeds, lifespan, SimulationOptions{});
  // Machine 1's load is lost; the others still complete.
  const double lost = baseline.outcomes[1].work;
  EXPECT_NEAR(result.completed_work(lifespan), baseline.completed_work(lifespan) - lost,
              1e-9 * lifespan);
  EXPECT_TRUE(result.outcomes[1].failed);
  EXPECT_FALSE(result.outcomes[0].failed);
  EXPECT_FALSE(result.outcomes[2].failed);
}

TEST(FailureInjection, FinishingOrderSkipsTheDeadMachineWithoutDeadlock) {
  // Machine 0 finishes first in FIFO; kill it.  Machines 1 and 2 must still
  // return their results (the dispatcher skips the dead slot).
  const std::vector<double> speeds{1.0, 0.5, 0.25};
  SimulationOptions options;
  options.failures.push_back(MachineFailure{0, 0.5});
  const auto result = run_with(speeds, 100.0, options);
  EXPECT_EQ(result.finishing_order, (std::vector<std::size_t>{1, 2}));
  EXPECT_GT(result.completed_work(100.0), 0.0);
  EXPECT_TRUE(result.trace.channel_exclusive());
}

TEST(FailureInjection, CrashAfterTransmissionStartedDoesNotUnsendTheResult) {
  const std::vector<double> speeds{1.0, 0.5};
  const double lifespan = 100.0;
  const auto baseline = run_with(speeds, lifespan, SimulationOptions{});
  // Fail machine 0 the instant after its (observed) result transmission began.
  SimulationOptions options;
  options.failures.push_back(
      MachineFailure{0, baseline.outcomes[0].result_start + 1e-9});
  const auto result = run_with(speeds, lifespan, options);
  EXPECT_FALSE(result.outcomes[0].failed);
  EXPECT_NEAR(result.completed_work(lifespan), baseline.completed_work(lifespan), 1e-9);
}

TEST(FailureInjection, AllMachinesCrashingCompletesNothing) {
  const std::vector<double> speeds{1.0, 0.5};
  SimulationOptions options;
  options.failures.push_back(MachineFailure{0, 0.0});
  options.failures.push_back(MachineFailure{1, 0.0});
  const auto result = run_with(speeds, 50.0, options);
  EXPECT_DOUBLE_EQ(result.completed_work(50.0), 0.0);
  EXPECT_TRUE(result.finishing_order.empty());
}

TEST(FailureInjection, ValidatesInputs) {
  const std::vector<double> speeds{1.0, 0.5};
  const auto allocations = protocol::fifo_allocations(speeds, kEnv, 10.0);
  SimulationOptions bad_machine;
  bad_machine.failures.push_back(MachineFailure{7, 1.0});
  EXPECT_THROW(simulate_worksharing(speeds, kEnv, allocations,
                                    protocol::ProtocolOrders::fifo(2), bad_machine),
               std::invalid_argument);
  SimulationOptions bad_time;
  bad_time.failures.push_back(MachineFailure{0, -1.0});
  EXPECT_THROW(simulate_worksharing(speeds, kEnv, allocations,
                                    protocol::ProtocolOrders::fifo(2), bad_time),
               std::invalid_argument);
  SimulationOptions bad_latency;
  bad_latency.message_latency = -0.5;
  EXPECT_THROW(simulate_worksharing(speeds, kEnv, allocations,
                                    protocol::ProtocolOrders::fifo(2), bad_latency),
               std::invalid_argument);
}

TEST(MessageLatency, DelaysEveryMessageByTheFixedCost) {
  const std::vector<double> speeds{1.0, 0.5};
  const double lifespan = 100.0;
  const auto baseline = run_with(speeds, lifespan, SimulationOptions{});
  SimulationOptions options;
  options.message_latency = 0.25;
  const auto delayed = run_with(speeds, lifespan, options);
  // First machine's receive slips by exactly one latency; its result arrival
  // by at least two (work message + result message).
  EXPECT_NEAR(delayed.outcomes[0].receive, baseline.outcomes[0].receive + 0.25, 1e-9);
  EXPECT_GE(delayed.outcomes[0].result_end, baseline.outcomes[0].result_end + 0.5 - 1e-9);
  // With the schedule planned for zero latency, some result now misses L.
  EXPECT_LT(delayed.completed_work(lifespan), baseline.completed_work(lifespan));
  EXPECT_GT(delayed.makespan, baseline.makespan);
}

TEST(MessageLatency, RelativeImpactFadesWithLifespan) {
  // The paper ignores per-message fixed costs "because their impacts fade
  // over long lifespans L".  Quantified: running the zero-latency plan with
  // latency h overruns L by a fixed absolute amount (~2n h), so the
  // *relative* overrun shrinks like 1/L.
  const std::vector<double> speeds{1.0, 0.5, 0.25};
  SimulationOptions options;
  options.message_latency = 0.1;
  double previous_fraction = std::numeric_limits<double>::infinity();
  double first_overrun = 0.0;
  for (double lifespan : {50.0, 500.0, 5000.0}) {
    const auto sim = run_with(speeds, lifespan, options);
    const double overrun = sim.makespan - lifespan;
    EXPECT_GT(overrun, 0.0);
    if (first_overrun == 0.0) first_overrun = overrun;
    // Absolute overrun stays (nearly) constant across lifespans...
    EXPECT_NEAR(overrun, first_overrun, 0.05 * first_overrun);
    // ...so the relative impact strictly fades.
    const double fraction = overrun / lifespan;
    EXPECT_LT(fraction, previous_fraction);
    previous_fraction = fraction;
  }
}

}  // namespace
}  // namespace hetero::sim
