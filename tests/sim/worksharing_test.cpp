#include "hetero/sim/worksharing.h"

#include <gtest/gtest.h>

#include "hetero/core/power.h"
#include "hetero/numeric/stable.h"
#include "hetero/protocol/fifo.h"

namespace hetero::sim {
namespace {

const core::Environment kEnv = core::Environment::paper_default();

TEST(Worksharing, SingleWorkerTimingMatchesFigure1) {
  // Figure 1: pi0 w | tau w | pi_i w | rho_i w | pi_i delta w | tau delta w | pi0 delta w.
  const std::vector<double> speeds{0.5};
  const std::vector<double> allocations{10.0};
  const auto result = simulate_worksharing(speeds, kEnv, allocations,
                                           protocol::ProtocolOrders::fifo(1));
  ASSERT_EQ(result.outcomes.size(), 1u);
  const MachineOutcome& o = result.outcomes[0];
  const double w = 10.0;
  const double rho = 0.5;
  EXPECT_NEAR(o.receive, (kEnv.pi() + kEnv.tau()) * w, 1e-12);
  EXPECT_NEAR(o.compute_done, o.receive + kEnv.b() * rho * w, 1e-12);
  EXPECT_NEAR(o.result_end, o.compute_done + kEnv.tau_delta() * w, 1e-12);
  EXPECT_NEAR(o.server_unpacked, o.result_end + kEnv.pi() * kEnv.delta() * w, 1e-12);
  EXPECT_TRUE(result.trace.channel_exclusive());
}

TEST(Worksharing, FifoScheduleReplaysExactlyAsPlanned) {
  // The causal simulation of a closed-form FIFO plan must land every event
  // on the planned timestamps: no emergent waiting anywhere.
  const std::vector<double> speeds{1.0, 0.5, 0.25, 0.125};
  const double lifespan = 250.0;
  const protocol::Schedule plan = protocol::fifo_schedule(speeds, kEnv, lifespan);
  const SimulationResult sim = simulate_schedule(plan, kEnv);
  ASSERT_EQ(sim.outcomes.size(), plan.timelines.size());
  for (std::size_t k = 0; k < plan.timelines.size(); ++k) {
    const auto& planned = plan.timelines[k];
    const auto& measured = sim.outcomes[k];
    EXPECT_EQ(measured.machine, planned.machine);
    EXPECT_NEAR(measured.receive, planned.receive, 1e-7 * lifespan) << k;
    EXPECT_NEAR(measured.compute_done, planned.compute_done, 1e-7 * lifespan) << k;
    EXPECT_NEAR(measured.result_start, planned.result_start, 1e-7 * lifespan) << k;
    EXPECT_NEAR(measured.result_end, planned.result_end, 1e-7 * lifespan) << k;
  }
  EXPECT_NEAR(sim.makespan, lifespan, 1e-7 * lifespan);
}

TEST(Worksharing, MeasuredWorkMatchesTheorem2) {
  const std::vector<double> speeds{1.0, 0.5, 1.0 / 3.0};
  const double lifespan = 100.0;
  const auto allocations = protocol::fifo_allocations(speeds, kEnv, lifespan);
  const auto result = simulate_worksharing(speeds, kEnv, allocations,
                                           protocol::ProtocolOrders::fifo(3));
  const double formula = core::work_production(lifespan, core::Profile{speeds}, kEnv);
  EXPECT_LT(numeric::relative_difference(result.completed_work(lifespan), formula), 1e-9);
}

TEST(Worksharing, ObservedFinishingOrderMatchesFifo) {
  const std::vector<double> speeds{1.0, 0.6, 0.3, 0.15};
  const auto allocations = protocol::fifo_allocations(speeds, kEnv, 80.0);
  const auto result = simulate_worksharing(speeds, kEnv, allocations,
                                           protocol::ProtocolOrders::fifo(4));
  EXPECT_EQ(result.finishing_order, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(Worksharing, LifoOrderIsHonoredEvenWhenWorkersFinishEarly) {
  // Give every machine equal tiny work; with a LIFO finishing order, machine
  // 0 computes first but must wait for the later machines' results.
  const std::vector<double> speeds{0.5, 0.5, 0.5};
  const std::vector<double> allocations{1.0, 1.0, 1.0};
  const auto result = simulate_worksharing(speeds, kEnv, allocations,
                                           protocol::ProtocolOrders::lifo(3));
  EXPECT_EQ(result.finishing_order, (std::vector<std::size_t>{2, 1, 0}));
  // Machine 0's result must start only after machines 2 and 1 delivered.
  const MachineOutcome& first_started = result.outcomes[0];
  EXPECT_GE(first_started.result_start, result.outcomes[1].result_end - 1e-12);
  EXPECT_TRUE(result.trace.channel_exclusive());
}

TEST(Worksharing, CompletedWorkRespectsHorizon) {
  const std::vector<double> speeds{1.0, 0.5};
  const double lifespan = 100.0;
  const auto allocations = protocol::fifo_allocations(speeds, kEnv, lifespan);
  const auto result = simulate_worksharing(speeds, kEnv, allocations,
                                           protocol::ProtocolOrders::fifo(2));
  // Truncating the lifespan just before the last arrival loses that load.
  const double last_arrival = result.outcomes.back().result_end;
  const double first_arrival = result.outcomes.front().result_end;
  EXPECT_LT(result.completed_work(last_arrival - 1e-6), result.completed_work(lifespan));
  EXPECT_EQ(result.completed_work(first_arrival - 1e-6), 0.0);
  EXPECT_DOUBLE_EQ(result.completed_work(lifespan), result.total_work());
}

TEST(Worksharing, TraceCoversEveryActivityKind) {
  const std::vector<double> speeds{1.0, 0.5};
  const auto allocations = protocol::fifo_allocations(speeds, kEnv, 50.0);
  const auto result = simulate_worksharing(speeds, kEnv, allocations,
                                           protocol::ProtocolOrders::fifo(2));
  for (Activity activity :
       {Activity::kServerPackage, Activity::kTransitWork, Activity::kWorkerUnpack,
        Activity::kWorkerCompute, Activity::kWorkerPackage, Activity::kTransitResult,
        Activity::kServerUnpack}) {
    EXPECT_EQ(result.trace.segments_of(activity).size(), 2u) << to_string(activity);
  }
}

TEST(Worksharing, TraceDurationsMatchModelRates) {
  const std::vector<double> speeds{0.5};
  const std::vector<double> allocations{8.0};
  const auto result = simulate_worksharing(speeds, kEnv, allocations,
                                           protocol::ProtocolOrders::fifo(1));
  const auto compute = result.trace.segments_of(Activity::kWorkerCompute);
  ASSERT_EQ(compute.size(), 1u);
  EXPECT_NEAR(compute[0].duration(), 0.5 * 8.0, 1e-12);
  const auto unpack = result.trace.segments_of(Activity::kWorkerUnpack);
  EXPECT_NEAR(unpack[0].duration(), kEnv.pi() * 0.5 * 8.0, 1e-15);
}

TEST(Worksharing, InputValidation) {
  const std::vector<double> speeds{1.0, 0.5};
  EXPECT_THROW(simulate_worksharing(speeds, kEnv, std::vector<double>{1.0},
                                    protocol::ProtocolOrders::fifo(2)),
               std::invalid_argument);
  EXPECT_THROW(simulate_worksharing(speeds, kEnv, std::vector<double>{1.0, -1.0},
                                    protocol::ProtocolOrders::fifo(2)),
               std::invalid_argument);
  protocol::ProtocolOrders bad;
  bad.startup = {0, 0};
  bad.finishing = {0, 1};
  EXPECT_THROW(simulate_worksharing(speeds, kEnv, std::vector<double>{1.0, 1.0}, bad),
               std::invalid_argument);
}

TEST(Worksharing, ZeroAllocationWorkerFlowsThrough) {
  const std::vector<double> speeds{1.0, 0.5};
  const std::vector<double> allocations{5.0, 0.0};
  const auto result = simulate_worksharing(speeds, kEnv, allocations,
                                           protocol::ProtocolOrders::fifo(2));
  EXPECT_DOUBLE_EQ(result.total_work(), 5.0);
  EXPECT_TRUE(result.trace.channel_exclusive());
}

TEST(Trace, ChannelExclusivityDetectsViolation) {
  Trace trace;
  trace.record({0.0, 2.0, Activity::kTransitWork, kServerActor, 0});
  trace.record({1.0, 3.0, Activity::kTransitResult, kServerActor, 1});
  EXPECT_FALSE(trace.channel_exclusive());
  Trace disjoint;
  disjoint.record({0.0, 1.0, Activity::kTransitWork, kServerActor, 0});
  disjoint.record({1.0, 2.0, Activity::kTransitResult, kServerActor, 1});
  EXPECT_TRUE(disjoint.channel_exclusive());
}

TEST(Trace, HorizonAndActorQueries) {
  Trace trace;
  trace.record({0.0, 2.0, Activity::kWorkerCompute, 3, 3});
  trace.record({1.0, 5.0, Activity::kWorkerCompute, 4, 4});
  EXPECT_DOUBLE_EQ(trace.horizon(), 5.0);
  EXPECT_EQ(trace.segments_for_actor(3).size(), 1u);
  EXPECT_EQ(trace.segments_for_actor(9).size(), 0u);
  EXPECT_DOUBLE_EQ(Trace{}.horizon(), 0.0);
}

}  // namespace
}  // namespace hetero::sim
