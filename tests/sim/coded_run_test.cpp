#include "hetero/sim/coded.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "hetero/protocol/fifo.h"

namespace hetero::sim {
namespace {

const core::Environment kEnv = core::Environment::paper_default();
const std::vector<double> kSpeeds{1.0, 0.5, 0.25, 0.125, 0.0625, 0.03125};
constexpr double kDeadline = 3600.0;

protocol::CodedSizing replicated_sizing(double fraction = 0.5) {
  return protocol::size_replicated(kSpeeds, kEnv, kDeadline,
                                   fraction * protocol::fifo_total_work(kSpeeds, kEnv, kDeadline));
}

protocol::CodedSizing mds_sizing(double fraction = 0.5) {
  return protocol::size_mds(kSpeeds, kEnv, kDeadline,
                            fraction * protocol::fifo_total_work(kSpeeds, kEnv, kDeadline));
}

TEST(CodedRun, FaultFreeReplicatedRecoversAndCancelsDuplicates) {
  const auto sizing = replicated_sizing();
  ASSERT_GE(sizing.replication, 2u);
  const auto run = run_coded(kSpeeds, kEnv, sizing.allocation, CodedRunOptions{});
  ASSERT_TRUE(run.recovered);
  EXPECT_GT(run.recovery_time, 0.0);
  EXPECT_EQ(run.recovery_set.size(), sizing.allocation.recovery_threshold);
  // Every shard landed (replication completes only when all shards do).
  for (double landed : run.shard_landed_at) EXPECT_GT(landed, 0.0);
  // With r >= 2 some slower duplicates were still in flight at recovery and
  // got cancelled — and each cancellation left a zero-length fault mark.
  EXPECT_GT(run.copies_cancelled, 0u);
  const auto marks = run.trace.segments_of(Activity::kCancelled);
  EXPECT_EQ(marks.size(), run.copies_cancelled);
  for (const TraceSegment& mark : marks) {
    EXPECT_EQ(mark.start, mark.end);
    EXPECT_EQ(mark.start, run.recovery_time);  // cancelled the instant it decoded
  }
  EXPECT_GT(run.redundant_cancelled, 0.0);
  // Decoded credit at the horizon is the full target.
  EXPECT_NEAR(run.completed_work(run.makespan), sizing.allocation.work_target,
              1e-6 * sizing.allocation.work_target);
  EXPECT_TRUE(run.trace.channel_exclusive());
}

TEST(CodedRun, AccountingTiesOut) {
  const auto sizing = replicated_sizing();
  const auto run = run_coded(kSpeeds, kEnv, sizing.allocation, CodedRunOptions{});
  EXPECT_NEAR(run.issued_work, sizing.allocation.issued_work(), 1e-9);
  EXPECT_NEAR(run.redundant_issued, run.issued_work - sizing.allocation.work_target, 1e-6);
  double used = 0.0;
  double cancelled = 0.0;
  for (const CopyOutcome& outcome : run.outcomes) {
    if (outcome.used) used += outcome.work;
    if (outcome.cancelled) cancelled += outcome.work;
  }
  EXPECT_NEAR(run.redundant_wasted, run.issued_work - used, 1e-6);
  EXPECT_NEAR(run.redundant_cancelled, cancelled, 1e-9);
}

TEST(CodedRun, RunsAreBitwiseDeterministic) {
  const auto sizing = replicated_sizing();
  FaultModelConfig model;
  model.crash_rate = 0.5 / kDeadline;
  model.straggler_probability = 0.5;
  model.straggler_factor = 2.0;
  CodedRunOptions options;
  options.faults = FaultPlan::sample(model, kSpeeds.size(), kDeadline, 17);

  const auto a = run_coded(kSpeeds, kEnv, sizing.allocation, options);
  const auto b = run_coded(kSpeeds, kEnv, sizing.allocation, options);
  EXPECT_EQ(a.recovered, b.recovered);
  EXPECT_EQ(a.recovery_time, b.recovery_time);  // bitwise
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.recovery_set, b.recovery_set);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].result_end, b.outcomes[i].result_end);
    EXPECT_EQ(a.outcomes[i].cancelled, b.outcomes[i].cancelled);
    EXPECT_EQ(a.outcomes[i].used, b.outcomes[i].used);
  }
  ASSERT_EQ(a.trace.segments().size(), b.trace.segments().size());
  for (std::size_t i = 0; i < a.trace.segments().size(); ++i) {
    EXPECT_EQ(a.trace.segments()[i], b.trace.segments()[i]);  // bitwise
  }
}

TEST(CodedRun, CrashedReplicaIsRecoveredFromItsTwin) {
  const auto sizing = replicated_sizing();
  ASSERT_GE(sizing.replication, 2u);
  // Crash the fastest copy of shard 0 early, before it can deliver.
  const auto& victim = sizing.allocation.copies.front();
  CodedRunOptions options;
  options.faults.crashes.push_back(CrashFault{victim.machine, 1.0});

  const auto run = run_coded(kSpeeds, kEnv, sizing.allocation, options);
  ASSERT_TRUE(run.recovered);
  EXPECT_EQ(run.faults.crashes, 1u);
  EXPECT_TRUE(run.outcomes.front().failed);
  EXPECT_FALSE(run.outcomes.front().used);
  // The shard still decoded — through a surviving copy on another machine.
  EXPECT_GT(run.shard_landed_at[victim.shard], 0.0);
  bool twin_used = false;
  for (const CopyOutcome& outcome : run.outcomes) {
    if (outcome.shard == victim.shard && outcome.machine != victim.machine && outcome.used) {
      twin_used = true;
    }
  }
  EXPECT_TRUE(twin_used);
  // Losing a replica can only delay recovery vs the fault-free run.
  const auto calm = run_coded(kSpeeds, kEnv, sizing.allocation, CodedRunOptions{});
  EXPECT_GE(run.recovery_time, calm.recovery_time - 1e-9);
}

TEST(CodedRun, MdsToleratesItsDesignedStragglerBudget) {
  // A modest target leaves real slack: k < n, so the code genuinely
  // tolerates n - k losses.
  const auto sizing = mds_sizing(0.3);
  const std::size_t n = sizing.shards_total;
  const std::size_t k = sizing.shards_needed;
  ASSERT_GE(n, k);
  CodedRunOptions options;
  // Crash n - k machines (the slowest copies); any k shards still decode.
  std::size_t crashed = 0;
  for (std::size_t i = sizing.allocation.copies.size(); i-- > 0 && crashed < n - k;) {
    options.faults.crashes.push_back(
        CrashFault{sizing.allocation.copies[i].machine, 1.0});
    ++crashed;
  }
  const auto run = run_coded(kSpeeds, kEnv, sizing.allocation, options);
  EXPECT_TRUE(run.recovered);
  EXPECT_NEAR(run.completed_work(run.makespan), sizing.allocation.work_target,
              1e-6 * sizing.allocation.work_target);

  // One crash beyond the budget and the code cannot decode at all.
  CodedRunOptions too_many = options;
  too_many.faults.crashes.push_back(
      CrashFault{sizing.allocation.copies[0].machine, 1.0});
  if (too_many.faults.crashes.size() <= kSpeeds.size()) {
    const auto dead = run_coded(kSpeeds, kEnv, sizing.allocation, too_many);
    if (!dead.recovered) {
      EXPECT_EQ(dead.completed_work(dead.makespan), 0.0);  // all-or-nothing
    }
  }
}

TEST(CodedRun, ReplicatedCreditIsPerShardMdsIsAllOrNothing) {
  const auto rep = replicated_sizing();
  CodedRunOptions options;
  // Crash everything so nothing past the fastest deliveries decodes.
  for (std::size_t m = 0; m < kSpeeds.size(); ++m) {
    options.faults.crashes.push_back(CrashFault{m, 0.25 * kDeadline});
  }
  const auto run = run_coded(kSpeeds, kEnv, rep.allocation, options);
  if (!run.recovered) {
    double landed = 0.0;
    for (std::size_t s = 0; s < run.shard_landed_at.size(); ++s) {
      if (run.shard_landed_at[s] > 0.0) landed += rep.allocation.decoded_size(s);
    }
    // Replication degrades gracefully: whatever shards landed are credited.
    EXPECT_NEAR(run.completed_work(run.makespan), landed, 1e-9);
  }

  const auto mds = mds_sizing();
  const auto dead = run_coded(kSpeeds, kEnv, mds.allocation, options);
  if (!dead.recovered) {
    EXPECT_EQ(dead.completed_work(dead.makespan), 0.0);
  }
}

TEST(CodedRun, StragglerDelaysButDoesNotBreakRecovery) {
  const auto sizing = replicated_sizing();
  const auto calm = run_coded(kSpeeds, kEnv, sizing.allocation, CodedRunOptions{});
  ASSERT_TRUE(calm.recovered);
  CodedRunOptions options;
  // Slow every machine down 4x from the start.
  for (std::size_t m = 0; m < kSpeeds.size(); ++m) {
    options.faults.slowdowns.push_back(SlowdownFault{m, 0.0, 4.0});
  }
  const auto slow = run_coded(kSpeeds, kEnv, sizing.allocation, options);
  ASSERT_TRUE(slow.recovered);
  EXPECT_GT(slow.recovery_time, calm.recovery_time);
}

TEST(CodedRun, RejectsInvalidInputs) {
  const auto sizing = replicated_sizing();
  protocol::CodedAllocation broken = sizing.allocation;
  broken.recovery_threshold = 0;
  EXPECT_THROW((void)run_coded(kSpeeds, kEnv, broken, CodedRunOptions{}),
               std::invalid_argument);

  CodedRunOptions negative_latency;
  negative_latency.message_latency = -1.0;
  EXPECT_THROW((void)run_coded(kSpeeds, kEnv, sizing.allocation, negative_latency),
               std::invalid_argument);

  CodedRunOptions bad_plan;
  bad_plan.faults.crashes.push_back(CrashFault{kSpeeds.size() + 3, 1.0});
  EXPECT_THROW((void)run_coded(kSpeeds, kEnv, sizing.allocation, bad_plan),
               std::invalid_argument);
}

}  // namespace
}  // namespace hetero::sim
