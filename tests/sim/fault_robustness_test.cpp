#include <gtest/gtest.h>

#include <algorithm>

#include "hetero/protocol/fifo.h"
#include "hetero/sim/fault.h"
#include "hetero/sim/reactive.h"
#include "hetero/sim/worksharing.h"

namespace hetero::sim {
namespace {

const core::Environment kEnv = core::Environment::paper_default();

SimulationResult run_fifo(const std::vector<double>& speeds, double lifespan,
                          const SimulationOptions& options = {}) {
  const auto allocations = protocol::fifo_allocations(speeds, kEnv, lifespan);
  return simulate_worksharing(speeds, kEnv, allocations,
                              protocol::ProtocolOrders::fifo(speeds.size()), options);
}

bool traces_identical(const Trace& a, const Trace& b) {
  return a.segments() == b.segments();  // bitwise via TraceSegment::operator==
}

std::size_t count_activity(const Trace& trace, Activity activity) {
  return trace.segments_of(activity).size();
}

// --- Golden: the fault machinery must not perturb the fault-free path. ---

TEST(FaultRobustness, EmptyPlanReproducesBaselineTraceBitForBit) {
  const std::vector<double> speeds{1.0, 0.5, 0.25, 0.125};
  const auto baseline = run_fifo(speeds, 100.0);
  SimulationOptions options;
  options.faults = FaultPlan{};  // explicitly empty
  const auto faulted = run_fifo(speeds, 100.0, options);
  EXPECT_TRUE(traces_identical(baseline.trace, faulted.trace));
  EXPECT_EQ(baseline.completed_work(100.0), faulted.completed_work(100.0));
}

TEST(FaultRobustness, PostHorizonFaultsStillGolden) {
  // Events that never bite (a slowdown onset far past every landing) must
  // leave the trace bit-identical: the conditioned integrator degenerates to
  // the exact fault-free expressions.
  const std::vector<double> speeds{1.0, 0.5, 0.25};
  const auto baseline = run_fifo(speeds, 50.0);
  SimulationOptions options;
  options.faults.slowdowns.push_back({0, 1.0e6, 4.0});
  options.faults.slowdowns.push_back({2, 2.0e6, 2.0});
  const auto faulted = run_fifo(speeds, 50.0, options);
  EXPECT_TRUE(traces_identical(baseline.trace, faulted.trace));
}

// --- Determinism: a plan is data; same plan, same bits. ---

TEST(FaultRobustness, SamePlanProducesBitIdenticalTraces) {
  const std::vector<double> speeds{1.0, 0.5, 0.25, 0.125};
  FaultModelConfig model;
  model.crash_rate = 0.01;
  model.straggler_probability = 0.6;
  model.straggler_factor = 2.5;
  model.stall_rate = 0.02;
  model.stall_duration = 1.0;
  model.message_delay_probability = 0.3;
  model.message_delay = 0.05;
  SimulationOptions options;
  options.faults = FaultPlan::sample(model, speeds.size(), 100.0, 777);
  options.retry.enabled = true;

  const auto a = run_fifo(speeds, 100.0, options);
  const auto b = run_fifo(speeds, 100.0, options);
  EXPECT_TRUE(traces_identical(a.trace, b.trace));
  EXPECT_EQ(a.completed_work(100.0), b.completed_work(100.0));
  EXPECT_EQ(a.faults.crashes, b.faults.crashes);
  EXPECT_EQ(a.faults.detections.size(), b.faults.detections.size());
  for (std::size_t i = 0; i < a.faults.detections.size(); ++i) {
    EXPECT_EQ(a.faults.detections[i].at, b.faults.detections[i].at);
    EXPECT_EQ(a.faults.detections[i].machine, b.faults.detections[i].machine);
  }
}

TEST(FaultRobustness, ReactiveRunIsDeterministic) {
  const std::vector<double> speeds{1.0, 0.5, 0.25, 0.125};
  FaultModelConfig model;
  model.crash_rate = 0.008;
  model.straggler_probability = 0.5;
  model.straggler_factor = 3.0;
  const FaultPlan plan = FaultPlan::sample(model, speeds.size(), 100.0, 4242);
  const auto a = run_reactive_fifo(speeds, kEnv, 100.0, plan);
  const auto b = run_reactive_fifo(speeds, kEnv, 100.0, plan);
  EXPECT_EQ(a.completed_work, b.completed_work);  // bitwise
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.replans, b.replans);
  EXPECT_TRUE(traces_identical(a.trace, b.trace));
}

// --- Crash semantics under monitoring. ---

TEST(FaultRobustness, CrashIsDetectedMarkedAndSkipped) {
  const std::vector<double> speeds{1.0, 0.5, 0.25};
  SimulationOptions options;
  options.faults.crashes.push_back({0, 0.5});
  options.retry.enabled = true;
  options.retry.detection_latency = 1.0;
  const auto result = run_fifo(speeds, 100.0, options);

  EXPECT_EQ(result.faults.crashes, 1u);
  EXPECT_TRUE(result.outcomes[0].failed);
  EXPECT_NEAR(result.outcomes[0].failed_at, 0.5, 1e-12);
  EXPECT_EQ(count_activity(result.trace, Activity::kCrash), 1u);

  ASSERT_FALSE(result.faults.detections.empty());
  const Detection& d = result.faults.detections.front();
  EXPECT_EQ(d.kind, DetectionKind::kCrash);
  EXPECT_EQ(d.machine, 0u);
  EXPECT_NEAR(d.at, 1.5, 1e-12);  // crash + detection latency

  // The dead slot is skipped; the survivors still return results.
  EXPECT_GT(result.outcomes[1].result_end, 0.0);
  EXPECT_GT(result.outcomes[2].result_end, 0.0);
  EXPECT_TRUE(result.trace.channel_exclusive());
}

// --- Message-loss recovery. ---

TEST(FaultRobustness, LostWorkMessageIsResent) {
  const std::vector<double> speeds{1.0, 0.5};
  SimulationOptions options;
  options.faults.message_faults.push_back({0, 0.0, true});  // m0's load, lost
  options.retry.enabled = true;
  const auto result = run_fifo(speeds, 100.0, options);

  EXPECT_EQ(result.faults.messages_lost, 1u);
  EXPECT_GE(result.faults.retries, 1u);
  EXPECT_GE(count_activity(result.trace, Activity::kRetryTransit), 1u);
  // The resend succeeded: both results land (a little late for m0).
  EXPECT_GT(result.outcomes[0].result_end, 0.0);
  EXPECT_GT(result.outcomes[1].result_end, 0.0);
  const auto baseline = run_fifo(speeds, 100.0);
  EXPECT_GT(result.outcomes[0].result_end, baseline.outcomes[0].result_end);
  EXPECT_NEAR(result.completed_work(110.0),
              baseline.outcomes[0].work + baseline.outcomes[1].work, 1e-6);
  EXPECT_TRUE(result.trace.channel_exclusive());
}

TEST(FaultRobustness, LostWorkWithoutRetryAbandonsTheSlot) {
  // Monitoring off: the load silently vanishes, but the episode must not
  // deadlock waiting for a result that can never exist.
  const std::vector<double> speeds{1.0, 0.5};
  SimulationOptions options;
  options.faults.message_faults.push_back({0, 0.0, true});
  const auto result = run_fifo(speeds, 100.0, options);
  EXPECT_EQ(result.faults.messages_lost, 1u);
  EXPECT_EQ(result.outcomes[0].result_end, 0.0);  // never landed
  EXPECT_GT(result.outcomes[1].result_end, 0.0);  // but m1's did
}

TEST(FaultRobustness, LostResultIsRetransmittedByTheWorker) {
  const std::vector<double> speeds{1.0, 0.5};
  // Ordinals: 0 and 1 are the two work sends; 2 is the first result on the
  // channel (m0's, in FIFO finishing order).
  SimulationOptions options;
  options.faults.message_faults.push_back({2, 0.0, true});
  options.retry.enabled = true;
  const auto result = run_fifo(speeds, 100.0, options);

  EXPECT_EQ(result.faults.messages_lost, 1u);
  EXPECT_GE(result.faults.retries, 1u);
  EXPECT_GE(count_activity(result.trace, Activity::kRetryTransit), 1u);
  const auto baseline = run_fifo(speeds, 100.0);
  EXPECT_GT(result.outcomes[0].result_end, baseline.outcomes[0].result_end);
  EXPECT_NEAR(result.completed_work(110.0),
              baseline.outcomes[0].work + baseline.outcomes[1].work, 1e-6);
  ASSERT_FALSE(result.faults.recovery_latencies.empty());
  EXPECT_GT(result.faults.recovery_latencies.front(), 0.0);
  EXPECT_TRUE(result.trace.channel_exclusive());
}

TEST(FaultRobustness, DelayedMessageShiftsDeliveryOnly) {
  const std::vector<double> speeds{1.0, 0.5};
  SimulationOptions options;
  options.faults.message_faults.push_back({0, 0.5, false});
  const auto result = run_fifo(speeds, 100.0, options);
  const auto baseline = run_fifo(speeds, 100.0);
  EXPECT_EQ(result.faults.messages_delayed, 1u);
  EXPECT_NEAR(result.outcomes[0].receive, baseline.outcomes[0].receive + 0.5, 1e-12);
  EXPECT_TRUE(result.trace.channel_exclusive());
}

// --- Result deadlines: silent stragglers cannot wedge the episode. ---

TEST(FaultRobustness, HopelessStragglerTimesOutWithoutDeadlock) {
  const std::vector<double> speeds{1.0, 0.5, 0.25};
  SimulationOptions options;
  options.faults.slowdowns.push_back({0, 0.0, 1000.0});  // effectively silent
  options.retry.enabled = true;
  const auto result = run_fifo(speeds, 100.0, options);

  EXPECT_EQ(result.faults.timeouts, 1u);
  EXPECT_TRUE(result.outcomes[0].timed_out);
  EXPECT_GT(result.outcomes[0].timed_out_at, 0.0);
  // Its slot was skipped: the healthy machines' results still land.
  EXPECT_GT(result.outcomes[1].result_end, 0.0);
  EXPECT_GT(result.outcomes[2].result_end, 0.0);
  // Both a straggler detection and the eventual timeout were reported.
  const auto has_kind = [&](DetectionKind kind) {
    return std::any_of(result.faults.detections.begin(), result.faults.detections.end(),
                       [&](const Detection& d) { return d.kind == kind; });
  };
  EXPECT_TRUE(has_kind(DetectionKind::kStraggler));
  EXPECT_TRUE(has_kind(DetectionKind::kTimeout));
  EXPECT_TRUE(result.trace.channel_exclusive());
}

// --- The tentpole claim: reacting beats staying the course. ---

TEST(FaultRobustness, ReactiveFifoBeatsObliviousFifoUnderSameFaults) {
  // A mid-episode straggler on the biggest allocation plus a later crash.
  // The oblivious run loses the straggler's whole load *and* everything
  // queued behind it on the FIFO channel; the reactive run detects, folds
  // the machine's effective speed, and replans over the survivors.
  const std::vector<double> speeds{1.0, 0.5, 0.25, 0.125};
  const double lifespan = 100.0;
  FaultPlan plan;
  plan.slowdowns.push_back({3, 5.0, 2.0});
  plan.crashes.push_back({1, 55.0});

  const auto oblivious = run_fifo_with_faults(speeds, kEnv, lifespan, plan);
  const auto reactive = run_reactive_fifo(speeds, kEnv, lifespan, plan);

  EXPECT_GT(reactive.completed_work, oblivious.completed_work);  // the hard claim
  // And not marginally: reacting recovers a large part of the optimum.
  const double fault_free = protocol::fifo_total_work(speeds, kEnv, lifespan);
  EXPECT_GT(reactive.completed_work, 0.5 * fault_free);
  EXPECT_LT(oblivious.completed_work, 0.4 * fault_free);

  EXPECT_GE(reactive.replans, 1u);
  EXPECT_GE(reactive.rounds, 2u);
  EXPECT_EQ(reactive.machines_crashed, 1u);
  EXPECT_TRUE(reactive.trace.channel_exclusive());

  // The stitched reactive trace reports detections in absolute time.
  ASSERT_FALSE(reactive.faults.detections.empty());
  EXPECT_GT(reactive.faults.first_detection(), 5.0);
}

}  // namespace
}  // namespace hetero::sim
