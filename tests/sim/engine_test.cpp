#include "hetero/sim/engine.h"

#include <gtest/gtest.h>

#include <vector>

namespace hetero::sim {
namespace {

TEST(SimEngine, StartsAtTimeZero) {
  SimEngine engine;
  EXPECT_EQ(engine.now(), 0.0);
  EXPECT_EQ(engine.events_processed(), 0u);
}

TEST(SimEngine, ProcessesEventsInTimeOrder) {
  SimEngine engine;
  std::vector<int> order;
  engine.schedule_at(3.0, [&order] { order.push_back(3); });
  engine.schedule_at(1.0, [&order] { order.push_back(1); });
  engine.schedule_at(2.0, [&order] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now(), 3.0);
  EXPECT_EQ(engine.events_processed(), 3u);
}

TEST(SimEngine, EqualTimesRunInSchedulingOrder) {
  SimEngine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    engine.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  engine.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimEngine, EventsCanScheduleMoreEvents) {
  SimEngine engine;
  std::vector<double> times;
  std::function<void()> chain = [&] {
    times.push_back(engine.now());
    if (times.size() < 5) engine.schedule_after(1.5, chain);
  };
  engine.schedule_at(0.0, chain);
  engine.run();
  ASSERT_EQ(times.size(), 5u);
  EXPECT_DOUBLE_EQ(times.back(), 6.0);
}

TEST(SimEngine, RejectsTimeTravelAndBadTimes) {
  SimEngine engine;
  engine.schedule_at(10.0, [] {});
  engine.run();
  EXPECT_THROW(engine.schedule_at(5.0, [] {}), std::invalid_argument);
  EXPECT_THROW(engine.schedule_after(-1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(engine.schedule_at(std::numeric_limits<double>::infinity(), [] {}),
               std::invalid_argument);
}

TEST(SimEngine, RunUntilLeavesLaterEventsQueued) {
  SimEngine engine;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    engine.schedule_at(t, [&fired, &engine] { fired.push_back(engine.now()); });
  }
  engine.run_until(2.5);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(engine.now(), 2.5);
  engine.run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(SimEngine, ZeroDurationEventsAreFine) {
  SimEngine engine;
  int fired = 0;
  engine.schedule_after(0.0, [&fired] { ++fired; });
  engine.run();
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace hetero::sim
