#include "hetero/sim/fault.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace hetero::sim {
namespace {

FaultModelConfig busy_config() {
  FaultModelConfig config;
  config.crash_rate = 0.02;
  config.stall_rate = 0.05;
  config.stall_duration = 1.5;
  config.straggler_probability = 0.5;
  config.straggler_factor = 3.0;
  config.message_loss_probability = 0.1;
  config.message_delay_probability = 0.2;
  config.message_delay = 0.25;
  return config;
}

TEST(FaultPlan, SampleIsDeterministicInSeed) {
  const auto config = busy_config();
  const FaultPlan a = FaultPlan::sample(config, 4, 100.0, 1234);
  const FaultPlan b = FaultPlan::sample(config, 4, 100.0, 1234);
  ASSERT_EQ(a.crashes.size(), b.crashes.size());
  for (std::size_t i = 0; i < a.crashes.size(); ++i) {
    EXPECT_EQ(a.crashes[i].machine, b.crashes[i].machine);
    EXPECT_EQ(a.crashes[i].time, b.crashes[i].time);  // bitwise
  }
  ASSERT_EQ(a.slowdowns.size(), b.slowdowns.size());
  for (std::size_t i = 0; i < a.slowdowns.size(); ++i) {
    EXPECT_EQ(a.slowdowns[i].machine, b.slowdowns[i].machine);
    EXPECT_EQ(a.slowdowns[i].time, b.slowdowns[i].time);
    EXPECT_EQ(a.slowdowns[i].factor, b.slowdowns[i].factor);
  }
  ASSERT_EQ(a.stalls.size(), b.stalls.size());
  ASSERT_EQ(a.message_faults.size(), b.message_faults.size());

  const FaultPlan c = FaultPlan::sample(config, 4, 100.0, 1235);
  const bool identical = a.crashes.size() == c.crashes.size() &&
                         a.slowdowns.size() == c.slowdowns.size() &&
                         a.stalls.size() == c.stalls.size() &&
                         a.message_faults.size() == c.message_faults.size();
  // A one-bit seed change must perturb at least one family (overwhelmingly
  // likely with these rates; the fixed seeds here make it deterministic).
  if (identical && !a.empty()) {
    bool any_diff = false;
    for (std::size_t i = 0; i < a.crashes.size(); ++i) {
      any_diff = any_diff || a.crashes[i].time != c.crashes[i].time;
    }
    for (std::size_t i = 0; i < a.slowdowns.size(); ++i) {
      any_diff = any_diff || a.slowdowns[i].time != c.slowdowns[i].time;
    }
    EXPECT_TRUE(any_diff);
  }
}

TEST(FaultPlan, FaultFamiliesUseIndependentStreams) {
  // Turning stalls on must not shift the crash draws: each family has its
  // own rng substream.
  FaultModelConfig crashes_only;
  crashes_only.crash_rate = 0.03;
  FaultModelConfig crashes_and_stalls = crashes_only;
  crashes_and_stalls.stall_rate = 0.2;
  crashes_and_stalls.stall_duration = 1.0;

  const FaultPlan a = FaultPlan::sample(crashes_only, 6, 200.0, 99);
  const FaultPlan b = FaultPlan::sample(crashes_and_stalls, 6, 200.0, 99);
  ASSERT_EQ(a.crashes.size(), b.crashes.size());
  for (std::size_t i = 0; i < a.crashes.size(); ++i) {
    EXPECT_EQ(a.crashes[i].machine, b.crashes[i].machine);
    EXPECT_EQ(a.crashes[i].time, b.crashes[i].time);
  }
  EXPECT_TRUE(a.stalls.empty());
}

TEST(FaultPlan, ValidateRejectsBadEvents) {
  {
    FaultPlan plan;
    plan.crashes.push_back({5, 1.0});  // machine out of range for 4
    EXPECT_THROW(plan.validate(4), std::invalid_argument);
  }
  {
    FaultPlan plan;
    plan.crashes.push_back({0, -1.0});
    EXPECT_THROW(plan.validate(4), std::invalid_argument);
  }
  {
    FaultPlan plan;
    plan.slowdowns.push_back({0, 1.0, 0.5});  // factor below 1
    EXPECT_THROW(plan.validate(4), std::invalid_argument);
  }
  {
    FaultPlan plan;
    plan.stalls.push_back({0, 1.0, -2.0});
    EXPECT_THROW(plan.validate(4), std::invalid_argument);
  }
  {
    FaultPlan plan;
    plan.message_faults.push_back({0, -0.5, false});
    EXPECT_THROW(plan.validate(4), std::invalid_argument);
  }
  {
    FaultPlan plan;
    plan.crashes.push_back({3, 10.0});
    plan.slowdowns.push_back({1, 2.0, 2.0});
    plan.stalls.push_back({0, 1.0, 0.5});
    plan.message_faults.push_back({2, 0.1, true});
    EXPECT_NO_THROW(plan.validate(4));
  }
}

TEST(FaultPlan, CrashTimesPicksEarliestPerMachine) {
  FaultPlan plan;
  plan.crashes.push_back({1, 30.0});
  plan.crashes.push_back({1, 10.0});
  plan.crashes.push_back({3, 5.0});
  const auto times = plan.crash_times(4);
  ASSERT_EQ(times.size(), 4u);
  EXPECT_TRUE(times[0] > 1e300);  // never crashes
  EXPECT_DOUBLE_EQ(times[1], 10.0);
  EXPECT_TRUE(times[2] > 1e300);
  EXPECT_DOUBLE_EQ(times[3], 5.0);
}

TEST(FaultPlan, RestrictedRemapsClampsAndDrops) {
  FaultPlan plan;
  plan.crashes.push_back({0, 5.0});    // machine 0 not in fleet -> dropped
  plan.crashes.push_back({2, 30.0});   // future crash, shifted
  plan.slowdowns.push_back({3, 8.0, 2.0});  // already in force -> clamped to 0
  plan.stalls.push_back({2, 2.0, 3.0});     // ends at 5 < origin -> dropped
  plan.stalls.push_back({3, 9.0, 4.0});     // straddles origin -> clipped
  plan.message_faults.push_back({1, 0.0, true});  // carried verbatim

  const std::vector<std::size_t> fleet{2, 3};  // global ids, startup order
  const FaultPlan local = plan.restricted(10.0, fleet);

  ASSERT_EQ(local.crashes.size(), 1u);
  EXPECT_EQ(local.crashes[0].machine, 0u);  // global 2 -> fleet position 0
  EXPECT_DOUBLE_EQ(local.crashes[0].time, 20.0);

  ASSERT_EQ(local.slowdowns.size(), 1u);
  EXPECT_EQ(local.slowdowns[0].machine, 1u);  // global 3 -> position 1
  EXPECT_DOUBLE_EQ(local.slowdowns[0].time, 0.0);
  EXPECT_DOUBLE_EQ(local.slowdowns[0].factor, 2.0);

  ASSERT_EQ(local.stalls.size(), 1u);
  EXPECT_EQ(local.stalls[0].machine, 1u);
  EXPECT_DOUBLE_EQ(local.stalls[0].time, 0.0);  // clipped at the origin
  EXPECT_DOUBLE_EQ(local.stalls[0].duration, 3.0);  // 9+4=13 -> 3 past origin

  ASSERT_EQ(local.message_faults.size(), 1u);
  EXPECT_EQ(local.message_faults[0].ordinal, 1u);
  EXPECT_TRUE(local.message_faults[0].lost);
}

TEST(WorkerConditions, UnaffectedMachineIsExactlyStartPlusNominal) {
  FaultPlan plan;
  plan.slowdowns.push_back({1, 3.0, 2.0});
  const WorkerConditions conditions{plan, 3};
  // Machine 0 has no conditioning events: the integrator must return the
  // *same floating-point expression* as the fault-free simulator, not an
  // algebraically equal one — this is what makes golden traces bit-identical.
  const double start = 0.1234567890123;
  const double nominal = 9.876543210987;
  EXPECT_FALSE(conditions.affected(0));
  EXPECT_EQ(conditions.advance(0, start, nominal).end, start + nominal);
}

TEST(WorkerConditions, SlowdownStretchesOnlyThePostOnsetPart) {
  FaultPlan plan;
  plan.slowdowns.push_back({0, 10.0, 3.0});
  const WorkerConditions conditions{plan, 1};
  // 8 units of nominal work from t=6: 4 at full rate (6..10), the remaining
  // 4 at 1/3 rate -> 12 wall units -> ends at 22.
  const auto phase = conditions.advance(0, 6.0, 8.0);
  EXPECT_NEAR(phase.end, 22.0, 1e-12);
  EXPECT_TRUE(phase.stalls.empty());
}

TEST(WorkerConditions, StallInsertsZeroProgressWindow) {
  FaultPlan plan;
  plan.stalls.push_back({0, 5.0, 2.0});
  const WorkerConditions conditions{plan, 1};
  // 10 nominal units from t=0 cross the stall: ends at 12.
  const auto phase = conditions.advance(0, 0.0, 10.0);
  EXPECT_NEAR(phase.end, 12.0, 1e-12);
  ASSERT_EQ(phase.stalls.size(), 1u);
  EXPECT_NEAR(phase.stalls[0].first, 5.0, 1e-12);
  EXPECT_NEAR(phase.stalls[0].second, 7.0, 1e-12);
}

TEST(WorkerConditions, CompoundSlowdownsMultiply) {
  FaultPlan plan;
  plan.slowdowns.push_back({0, 0.0, 2.0});
  plan.slowdowns.push_back({0, 4.0, 2.0});
  const WorkerConditions conditions{plan, 1};
  // Rate 1/2 on [0,4) completes 2 nominal units; rate 1/4 after.  6 nominal
  // units: 2 by t=4, remaining 4 take 16 -> ends at 20.
  EXPECT_NEAR(conditions.advance(0, 0.0, 6.0).end, 20.0, 1e-12);
}

TEST(FaultStats, MergeShiftsDetectionTimes)
{
  FaultStats a;
  a.crashes = 1;
  a.detections.push_back({5.0, 0, DetectionKind::kCrash, 1.0});
  FaultStats b;
  b.timeouts = 2;
  b.retries = 3;
  b.detections.push_back({1.5, 2, DetectionKind::kStraggler, 2.0});
  b.recovery_latencies.push_back(0.75);
  a.merge(b, 100.0);
  EXPECT_EQ(a.crashes, 1u);
  EXPECT_EQ(a.timeouts, 2u);
  EXPECT_EQ(a.retries, 3u);
  ASSERT_EQ(a.detections.size(), 2u);
  EXPECT_DOUBLE_EQ(a.detections[1].at, 101.5);
  EXPECT_EQ(a.detections[1].machine, 2u);
  ASSERT_EQ(a.recovery_latencies.size(), 1u);
  EXPECT_DOUBLE_EQ(a.recovery_latencies[0], 0.75);  // latencies don't shift
  EXPECT_DOUBLE_EQ(a.first_detection(), 5.0);
}

}  // namespace
}  // namespace hetero::sim
