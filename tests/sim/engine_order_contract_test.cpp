// Regression lock on the SimEngine same-timestamp ordering contract
// (documented in sim/engine.h): events at equal timestamps run in the order
// they were scheduled, and an event that re-schedules at `now()` runs after
// every event already queued for that instant.  The recovery-set dispatcher
// in sim/coded.cpp leans on both properties to make same-time ties
// deterministic; if either ever changes, these tests fail before the
// protocol sweeps silently change their numbers.

#include "hetero/sim/engine.h"

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

namespace hetero::sim {
namespace {

TEST(EngineOrderContract, EqualTimestampsRunInSchedulingOrderAcrossInsertions) {
  // Interleave insertions for two timestamps; within each timestamp the
  // scheduling order must survive, no matter how the heap rebalances.
  SimEngine engine;
  std::vector<std::string> order;
  engine.schedule_at(2.0, [&order] { order.push_back("t2:a"); });
  engine.schedule_at(1.0, [&order] { order.push_back("t1:a"); });
  engine.schedule_at(2.0, [&order] { order.push_back("t2:b"); });
  engine.schedule_at(1.0, [&order] { order.push_back("t1:b"); });
  engine.schedule_at(2.0, [&order] { order.push_back("t2:c"); });
  engine.run();
  EXPECT_EQ(order, (std::vector<std::string>{"t1:a", "t1:b", "t2:a", "t2:b", "t2:c"}));
}

TEST(EngineOrderContract, ZeroDelayDeferralSeesEverySameInstantCandidate) {
  // The deferral idiom: a handler that must decide among all same-time
  // state changes re-schedules itself at now().  Because the deferred event
  // gets a larger sequence number than everything already queued at that
  // instant, it runs last and sees every candidate.
  SimEngine engine;
  std::vector<int> candidates;
  std::size_t seen_at_decision = 0;
  const auto arrive = [&engine, &candidates, &seen_at_decision](int id) {
    return [&engine, &candidates, &seen_at_decision, id] {
      candidates.push_back(id);
      engine.schedule_at(engine.now(), [&candidates, &seen_at_decision] {
        // Only the first deferral to fire makes the decision; by then every
        // same-instant arrival has registered.
        if (seen_at_decision == 0) seen_at_decision = candidates.size();
      });
    };
  };
  engine.schedule_at(5.0, arrive(1));
  engine.schedule_at(5.0, arrive(2));
  engine.schedule_at(5.0, arrive(3));
  engine.run();
  EXPECT_EQ(seen_at_decision, 3u);
}

TEST(EngineOrderContract, DeferredEventsKeepFifoOrderAmongThemselves) {
  SimEngine engine;
  std::vector<int> order;
  engine.schedule_at(1.0, [&engine, &order] {
    engine.schedule_at(engine.now(), [&order] { order.push_back(1); });
    engine.schedule_at(engine.now(), [&order] { order.push_back(2); });
    engine.schedule_at(engine.now(), [&order] { order.push_back(3); });
  });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EngineOrderContract, ChainedDeferralsDrainBeforeTimeAdvances) {
  // A deferral can itself defer; simulated time must not advance until the
  // same-instant cascade is exhausted.
  SimEngine engine;
  std::vector<double> at;
  int depth = 0;
  std::function<void()> cascade = [&] {
    at.push_back(engine.now());
    if (++depth < 4) engine.schedule_at(engine.now(), cascade);
  };
  engine.schedule_at(3.0, cascade);
  engine.schedule_at(4.0, [&at, &engine] { at.push_back(engine.now()); });
  engine.run();
  ASSERT_EQ(at.size(), 5u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(at[i], 3.0);
  EXPECT_EQ(at[4], 4.0);
}

}  // namespace
}  // namespace hetero::sim
