#include "hetero/sim/resource.h"

#include <gtest/gtest.h>

#include <vector>

namespace hetero::sim {
namespace {

TEST(SequentialResource, GrantsImmediatelyWhenIdle) {
  SimEngine engine;
  SequentialResource resource{engine};
  double start_time = -1.0;
  double end_time = -1.0;
  resource.request(
      2.0, [&start_time](double t) { start_time = t; }, [&end_time](double t) { end_time = t; });
  engine.run();
  EXPECT_EQ(start_time, 0.0);
  EXPECT_EQ(end_time, 2.0);
  EXPECT_FALSE(resource.busy());
  EXPECT_EQ(resource.grants(), 1u);
}

TEST(SequentialResource, SerializesOverlappingRequests) {
  SimEngine engine;
  SequentialResource resource{engine};
  std::vector<std::pair<double, double>> windows;
  const auto hold = [&resource, &windows](double duration) {
    resource.request(
        duration, [&windows](double t) { windows.emplace_back(t, -1.0); },
        [&windows](double t) { windows.back().second = t; });
  };
  engine.schedule_at(0.0, [&] { hold(3.0); });
  engine.schedule_at(1.0, [&] { hold(2.0); });  // arrives while busy
  engine.schedule_at(1.5, [&] { hold(1.0); });  // queues behind both
  engine.run();
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0], std::make_pair(0.0, 3.0));
  EXPECT_EQ(windows[1], std::make_pair(3.0, 5.0));
  EXPECT_EQ(windows[2], std::make_pair(5.0, 6.0));
}

TEST(SequentialResource, GrantsInRequestOrder) {
  SimEngine engine;
  SequentialResource resource{engine};
  std::vector<int> order;
  engine.schedule_at(0.0, [&] {
    for (int i = 0; i < 5; ++i) {
      resource.request(1.0, [&order, i](double) { order.push_back(i); }, {});
    }
  });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(resource.grants(), 5u);
}

TEST(SequentialResource, ZeroDurationHoldsStillSerialize) {
  SimEngine engine;
  SequentialResource resource{engine};
  std::vector<int> order;
  engine.schedule_at(0.0, [&] {
    resource.request(0.0, {}, [&order](double) { order.push_back(1); });
    resource.request(0.0, {}, [&order](double) { order.push_back(2); });
  });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SequentialResource, RejectsNegativeDuration) {
  SimEngine engine;
  SequentialResource resource{engine};
  EXPECT_THROW(resource.request(-1.0, {}, {}), std::invalid_argument);
}

TEST(SequentialResource, QueueLengthReflectsWaiters) {
  SimEngine engine;
  SequentialResource resource{engine};
  engine.schedule_at(0.0, [&] {
    resource.request(10.0, {}, {});
    resource.request(1.0, {}, {});
    resource.request(1.0, {}, {});
    EXPECT_TRUE(resource.busy());
    EXPECT_EQ(resource.queue_length(), 2u);
  });
  engine.run();
  EXPECT_EQ(resource.queue_length(), 0u);
}

}  // namespace
}  // namespace hetero::sim
