#include <gtest/gtest.h>

#include "hetero/stats/histogram.h"

namespace hetero::stats {
namespace {

TEST(Wilson, CoversTheEstimate) {
  const ProportionInterval interval = wilson_interval(76, 100);
  EXPECT_DOUBLE_EQ(interval.estimate, 0.76);
  EXPECT_LT(interval.lo, 0.76);
  EXPECT_GT(interval.hi, 0.76);
  EXPECT_GT(interval.lo, 0.6);
  EXPECT_LT(interval.hi, 0.9);
}

TEST(Wilson, KnownReferenceValue) {
  // Classic check: 0 successes in 10 trials at 95% gives hi ~ 0.278.
  const ProportionInterval interval = wilson_interval(0, 10);
  EXPECT_DOUBLE_EQ(interval.estimate, 0.0);
  EXPECT_DOUBLE_EQ(interval.lo, 0.0);
  EXPECT_NEAR(interval.hi, 0.2775, 5e-4);
}

TEST(Wilson, SymmetricUnderComplement) {
  const auto a = wilson_interval(30, 100);
  const auto b = wilson_interval(70, 100);
  EXPECT_NEAR(a.lo, 1.0 - b.hi, 1e-12);
  EXPECT_NEAR(a.hi, 1.0 - b.lo, 1e-12);
}

TEST(Wilson, ShrinksWithMoreTrials) {
  const auto small = wilson_interval(50, 100);
  const auto large = wilson_interval(5000, 10000);
  EXPECT_LT(large.hi - large.lo, small.hi - small.lo);
}

TEST(Wilson, EdgeCases) {
  const auto empty = wilson_interval(0, 0);
  EXPECT_DOUBLE_EQ(empty.lo, 0.0);
  EXPECT_DOUBLE_EQ(empty.hi, 1.0);
  const auto certain = wilson_interval(10, 10);
  EXPECT_DOUBLE_EQ(certain.estimate, 1.0);
  EXPECT_DOUBLE_EQ(certain.hi, 1.0);
  EXPECT_LT(certain.lo, 1.0);
  EXPECT_THROW((void)wilson_interval(11, 10), std::invalid_argument);
  EXPECT_THROW((void)wilson_interval(1, 10, 0.0), std::invalid_argument);
}

TEST(Wilson, StaysWithinUnitInterval) {
  for (std::size_t successes : {0u, 1u, 2u, 3u}) {
    const auto interval = wilson_interval(successes, 3);
    EXPECT_GE(interval.lo, 0.0);
    EXPECT_LE(interval.hi, 1.0);
    EXPECT_LE(interval.lo, interval.estimate);
    EXPECT_GE(interval.hi, interval.estimate);
  }
}

}  // namespace
}  // namespace hetero::stats
