#include "hetero/stats/moments.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

namespace hetero::stats {
namespace {

TEST(OnlineMoments, EmptyAccumulator) {
  const OnlineMoments acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_TRUE(std::isnan(acc.variance()));
  EXPECT_TRUE(std::isnan(acc.sample_variance()));
}

TEST(OnlineMoments, SingleValue) {
  OnlineMoments acc;
  acc.add(4.2);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_DOUBLE_EQ(acc.mean(), 4.2);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_TRUE(std::isnan(acc.sample_variance()));
  EXPECT_EQ(acc.min(), 4.2);
  EXPECT_EQ(acc.max(), 4.2);
}

TEST(OnlineMoments, KnownSmallSample) {
  // {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, population variance 4.
  OnlineMoments acc;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(v);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 4.0);
  EXPECT_DOUBLE_EQ(acc.standard_deviation(), 2.0);
  EXPECT_NEAR(acc.sample_variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(acc.min(), 2.0);
  EXPECT_EQ(acc.max(), 9.0);
}

TEST(OnlineMoments, SkewnessOfAsymmetricSample) {
  // Two-point mass at {0 (x3), 3}: m = 0.75; skew positive.
  OnlineMoments acc;
  for (double v : {0.0, 0.0, 0.0, 3.0}) acc.add(v);
  EXPECT_GT(acc.skewness(), 0.0);
  // Mirrored sample has the negated skewness.
  OnlineMoments mirror;
  for (double v : {3.0, 3.0, 3.0, 0.0}) mirror.add(v);
  EXPECT_NEAR(mirror.skewness(), -acc.skewness(), 1e-12);
}

TEST(OnlineMoments, SymmetricSampleHasZeroSkewness) {
  OnlineMoments acc;
  for (double v : {-2.0, -1.0, 0.0, 1.0, 2.0}) acc.add(v);
  EXPECT_NEAR(acc.skewness(), 0.0, 1e-12);
}

TEST(OnlineMoments, KurtosisOfTwoPointMassIsMinimal) {
  // A symmetric two-point distribution has excess kurtosis -2 (the minimum).
  OnlineMoments acc;
  for (int i = 0; i < 100; ++i) {
    acc.add(1.0);
    acc.add(-1.0);
  }
  EXPECT_NEAR(acc.excess_kurtosis(), -2.0, 1e-9);
}

TEST(OnlineMoments, DegenerateSampleHasNaNShape) {
  OnlineMoments acc;
  acc.add(1.0);
  acc.add(1.0);
  EXPECT_TRUE(std::isnan(acc.skewness()));
  EXPECT_TRUE(std::isnan(acc.excess_kurtosis()));
}

TEST(OnlineMoments, MergeMatchesSequentialForAllFourMoments) {
  std::mt19937_64 gen{51};
  std::uniform_real_distribution<double> dist{-3.0, 7.0};
  OnlineMoments whole;
  OnlineMoments part_a;
  OnlineMoments part_b;
  OnlineMoments part_c;
  for (int i = 0; i < 3000; ++i) {
    const double x = dist(gen);
    whole.add(x);
    (i % 3 == 0 ? part_a : i % 3 == 1 ? part_b : part_c).add(x);
  }
  part_a.merge(part_b);
  part_a.merge(part_c);
  EXPECT_EQ(part_a.count(), whole.count());
  EXPECT_NEAR(part_a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(part_a.variance(), whole.variance(), 1e-10);
  EXPECT_NEAR(part_a.skewness(), whole.skewness(), 1e-8);
  EXPECT_NEAR(part_a.excess_kurtosis(), whole.excess_kurtosis(), 1e-8);
  EXPECT_EQ(part_a.min(), whole.min());
  EXPECT_EQ(part_a.max(), whole.max());
}

TEST(OnlineMoments, MergeWithEmptyIsIdentity) {
  OnlineMoments acc;
  acc.add(1.0);
  acc.add(2.0);
  const double mean_before = acc.mean();
  OnlineMoments empty;
  acc.merge(empty);
  EXPECT_EQ(acc.count(), 2u);
  EXPECT_DOUBLE_EQ(acc.mean(), mean_before);
  empty.merge(acc);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), mean_before);
}

TEST(OnlineMoments, GaussianSampleShapeStatistics) {
  std::mt19937_64 gen{77};
  std::normal_distribution<double> normal{10.0, 2.0};
  OnlineMoments acc;
  for (int i = 0; i < 200'000; ++i) acc.add(normal(gen));
  EXPECT_NEAR(acc.mean(), 10.0, 0.05);
  EXPECT_NEAR(acc.variance(), 4.0, 0.1);
  EXPECT_NEAR(acc.skewness(), 0.0, 0.05);
  EXPECT_NEAR(acc.excess_kurtosis(), 0.0, 0.1);
}

TEST(MomentsOf, MatchesIncrementalAccumulation) {
  const std::vector<double> values{1.0, 2.0, 3.5, -1.0};
  const OnlineMoments acc = moments_of(values);
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_DOUBLE_EQ(acc.mean(), 1.375);
}

TEST(OnlineMoments, ResetClearsState) {
  OnlineMoments acc;
  acc.add(5.0);
  acc.reset();
  EXPECT_EQ(acc.count(), 0u);
}

}  // namespace
}  // namespace hetero::stats
