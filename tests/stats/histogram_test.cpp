#include "hetero/stats/histogram.h"

#include <gtest/gtest.h>

#include <vector>

namespace hetero::stats {
namespace {

TEST(Histogram, ConstructionValidation) {
  EXPECT_THROW((void)Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW((void)Histogram(2.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW((void)Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BinsValuesIntoCorrectBuckets) {
  Histogram h{0.0, 1.0, 4};
  h.add(0.1);   // bin 0
  h.add(0.30);  // bin 1
  h.add(0.74);  // bin 2
  h.add(0.76);  // bin 3
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, BoundaryValues) {
  Histogram h{0.0, 1.0, 4};
  h.add(0.0);  // lowest edge -> bin 0
  h.add(1.0);  // highest edge -> top bin
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, UnderflowAndOverflowCounters) {
  Histogram h{0.0, 1.0, 2};
  h.add(-0.5);
  h.add(1.5);
  h.add(0.5);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BinEdgesAndCumulative) {
  Histogram h{0.0, 10.0, 5};
  EXPECT_DOUBLE_EQ(h.bin_low(2), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_high(2), 6.0);
  const std::vector<double> values{1.0, 3.0, 5.0, 7.0, 9.0};
  h.add_all(values);
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(1), 0.4);
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(4), 1.0);
  EXPECT_THROW((void)h.bin_low(5), std::out_of_range);
  EXPECT_THROW((void)h.cumulative_fraction(9), std::out_of_range);
}

TEST(Histogram, MergeAddsCountsAndValidatesLayout) {
  Histogram a{0.0, 1.0, 2};
  Histogram b{0.0, 1.0, 2};
  a.add(0.25);
  b.add(0.75);
  b.add(2.0);
  a.merge(b);
  EXPECT_EQ(a.count(0), 1u);
  EXPECT_EQ(a.count(1), 1u);
  EXPECT_EQ(a.overflow(), 1u);
  EXPECT_EQ(a.total(), 3u);
  Histogram mismatched{0.0, 2.0, 2};
  EXPECT_THROW((void)a.merge(mismatched), std::invalid_argument);
}

TEST(Quantile, InterpolatesLinearly) {
  const std::vector<double> values{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(values, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(values, 1.0 / 3.0), 2.0);
}

TEST(Quantile, UnsortedInputAndValidation) {
  const std::vector<double> values{9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(quantile(values, 0.5), 5.0);
  EXPECT_THROW((void)quantile(std::vector<double>{}, 0.5), std::invalid_argument);
  EXPECT_THROW((void)quantile(values, 1.5), std::invalid_argument);
  EXPECT_THROW((void)quantile(values, -0.1), std::invalid_argument);
}

}  // namespace
}  // namespace hetero::stats
