#include "hetero/stats/robust.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace stats = hetero::stats;

TEST(Robust, MedianOddAndEven) {
  const std::vector<double> odd = {3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(stats::median(odd), 2.0);
  const std::vector<double> even = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(stats::median(even), 2.5);
}

TEST(Robust, MadKnownValue) {
  // median = 3, |x - 3| = {2, 1, 0, 1, 2}, MAD = 1.
  const std::vector<double> values = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(stats::mad(values), 1.0);
}

TEST(Robust, NoOutliersInTightData) {
  const std::vector<double> values = {10.0, 10.1, 9.9, 10.05, 9.95};
  EXPECT_TRUE(stats::mad_outliers(values).empty());
}

TEST(Robust, FlagsTheSingleStraggler) {
  const std::vector<double> values = {10.0, 10.1, 9.9, 10.05, 9.95, 60.0};
  const auto outliers = stats::mad_outliers(values);
  ASSERT_EQ(outliers.size(), 1u);
  EXPECT_EQ(outliers[0].index, 5u);
  EXPECT_DOUBLE_EQ(outliers[0].value, 60.0);
  EXPECT_GT(outliers[0].score, 3.5);
}

// The degenerate case the straggler-attribution integration test relies on:
// identical values make MAD zero, and then ANY deviation is infinitely
// anomalous (signed).
TEST(Robust, ZeroMadFlagsAnyDeviation) {
  const std::vector<double> values = {1.0, 1.0, 1.0, 1.0, 1.0, 6.0};
  const auto outliers = stats::mad_outliers(values);
  ASSERT_EQ(outliers.size(), 1u);
  EXPECT_EQ(outliers[0].index, 5u);
  EXPECT_TRUE(std::isinf(outliers[0].score));
  EXPECT_GT(outliers[0].score, 0.0);

  const std::vector<double> low = {1.0, 1.0, 1.0, 0.5};
  const auto below = stats::mad_outliers(low);
  ASSERT_EQ(below.size(), 1u);
  EXPECT_EQ(below[0].index, 3u);
  EXPECT_LT(below[0].score, 0.0);
}

TEST(Robust, AllIdenticalHasNoOutliers) {
  const std::vector<double> values = {2.0, 2.0, 2.0, 2.0};
  EXPECT_TRUE(stats::mad_outliers(values).empty());
}

TEST(Robust, ModifiedZScoreMatchesFormula) {
  const std::vector<double> values = {1.0, 2.0, 3.0, 4.0, 100.0};
  // median = 3, deviations {2, 1, 0, 1, 97}, MAD = 1.
  const auto outliers = stats::mad_outliers(values);
  ASSERT_EQ(outliers.size(), 1u);
  EXPECT_NEAR(outliers[0].score, 0.6745 * 97.0, 1e-9);
}

TEST(Robust, ThresholdIsRespected) {
  const std::vector<double> values = {1.0, 2.0, 3.0, 4.0, 100.0};
  EXPECT_EQ(stats::mad_outliers(values, 1e6).size(), 0u);
  EXPECT_GE(stats::mad_outliers(values, 0.5).size(), 1u);
}

TEST(Robust, InvalidInputsThrow) {
  EXPECT_THROW(static_cast<void>(stats::median({})), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(stats::mad_outliers({})), std::invalid_argument);
  const std::vector<double> values = {1.0, 2.0};
  EXPECT_THROW(static_cast<void>(stats::mad_outliers(values, 0.0)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(stats::mad_outliers(values, -1.0)), std::invalid_argument);
}
