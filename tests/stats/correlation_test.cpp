#include "hetero/stats/correlation.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

namespace hetero::stats {
namespace {

TEST(Pearson, PerfectLinearRelationships) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson_correlation(x, y), 1.0, 1e-12);
  const std::vector<double> neg{8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson_correlation(x, neg), -1.0, 1e-12);
}

TEST(Pearson, InvariantUnderAffineTransforms) {
  std::mt19937_64 gen{3};
  std::uniform_real_distribution<double> dist{-1.0, 1.0};
  std::vector<double> x(100);
  std::vector<double> y(100);
  for (std::size_t i = 0; i < 100; ++i) {
    x[i] = dist(gen);
    y[i] = 0.3 * x[i] + dist(gen);
  }
  const double base = pearson_correlation(x, y);
  std::vector<double> scaled = y;
  for (double& v : scaled) v = 5.0 * v - 7.0;
  EXPECT_NEAR(pearson_correlation(x, scaled), base, 1e-12);
}

TEST(Pearson, IndependentSamplesNearZero) {
  std::mt19937_64 gen{9};
  std::uniform_real_distribution<double> dist{0.0, 1.0};
  std::vector<double> x(20000);
  std::vector<double> y(20000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = dist(gen);
    y[i] = dist(gen);
  }
  EXPECT_NEAR(pearson_correlation(x, y), 0.0, 0.03);
}

TEST(Pearson, EdgeCases) {
  EXPECT_TRUE(std::isnan(pearson_correlation(std::vector<double>{1.0},
                                             std::vector<double>{2.0})));
  const std::vector<double> constant{3.0, 3.0, 3.0};
  const std::vector<double> varying{1.0, 2.0, 3.0};
  EXPECT_TRUE(std::isnan(pearson_correlation(constant, varying)));
  EXPECT_THROW((void)pearson_correlation(varying, std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
}

TEST(FractionalRanks, HandlesTiesByAveraging) {
  const std::vector<double> values{10.0, 20.0, 20.0, 30.0};
  const auto ranks = fractional_ranks(values);
  EXPECT_DOUBLE_EQ(ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(ranks[1], 2.5);
  EXPECT_DOUBLE_EQ(ranks[2], 2.5);
  EXPECT_DOUBLE_EQ(ranks[3], 4.0);
}

TEST(Spearman, DetectsMonotoneNonlinearRelationships) {
  // y = x^3 is monotone but nonlinear: Spearman = 1, Pearson < 1.
  std::vector<double> x;
  std::vector<double> y;
  for (int i = -10; i <= 10; ++i) {
    x.push_back(i);
    y.push_back(std::pow(static_cast<double>(i), 3.0));
  }
  EXPECT_NEAR(spearman_correlation(x, y), 1.0, 1e-12);
  EXPECT_LT(pearson_correlation(x, y), 1.0);
}

TEST(Spearman, AntitoneGivesMinusOne) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> y{10.0, 8.0, 7.0, 3.0, 1.0};
  EXPECT_NEAR(spearman_correlation(x, y), -1.0, 1e-12);
}

}  // namespace
}  // namespace hetero::stats
