#include "hetero/report/barchart.h"

#include <gtest/gtest.h>

#include <sstream>

namespace hetero::report {
namespace {

// Counts fill characters per bar column group in a rendered chart.
std::size_t count_fill(const std::string& chart, char fill) {
  std::size_t count = 0;
  for (char c : chart) {
    if (c == fill) ++count;
  }
  return count;
}

TEST(BarChart, TallerValuesGetMoreFill) {
  BarChartOptions options;
  options.height = 10;
  options.bar_width = 1;
  options.y_max = 1.0;  // shared scale, as in the Figure 3/4 grids
  const std::string low = render_bar_chart({0.2, 0.0}, options);
  const std::string high = render_bar_chart({1.0, 0.0}, options);
  EXPECT_LT(count_fill(low, options.fill), count_fill(high, options.fill));
}

TEST(BarChart, FullHeightBarUsesAllRows) {
  BarChartOptions options;
  options.height = 6;
  options.bar_width = 2;
  const std::string chart = render_bar_chart({1.0}, options);
  EXPECT_EQ(count_fill(chart, options.fill), 12u);  // 6 rows x 2 columns
}

TEST(BarChart, NonzeroValuesAlwaysVisible) {
  BarChartOptions options;
  options.height = 4;
  options.bar_width = 1;
  // 1/1000 of the max would round to zero rows; must still show one.
  const std::string chart = render_bar_chart({1.0, 0.001}, options);
  // Bottom data row (just above the baseline) must contain two fills.
  std::istringstream lines{chart};
  std::vector<std::string> rows;
  std::string line;
  while (std::getline(lines, line)) rows.push_back(line);
  ASSERT_GE(rows.size(), 2u);
  const std::string& bottom = rows[rows.size() - 2];
  EXPECT_EQ(count_fill(bottom, options.fill), 2u) << chart;
}

TEST(BarChart, RespectsExplicitYMax) {
  BarChartOptions options;
  options.height = 10;
  options.bar_width = 1;
  options.y_max = 2.0;
  const std::string chart = render_bar_chart({1.0}, options);
  EXPECT_EQ(count_fill(chart, options.fill), 5u);  // half of y_max -> half height
}

TEST(BarChart, Validation) {
  EXPECT_THROW(render_bar_chart({}), std::invalid_argument);
  EXPECT_THROW(render_bar_chart({-1.0}), std::invalid_argument);
  EXPECT_NO_THROW(render_bar_chart({0.0, 0.0}));  // all-zero is fine
}

TEST(SnapshotGrid, LaysChartsOutInRows) {
  std::vector<Snapshot> snapshots;
  for (int i = 0; i < 5; ++i) {
    snapshots.push_back(Snapshot{"round " + std::to_string(i), {1.0, 0.5, 0.25, 0.125}});
  }
  BarChartOptions options;
  options.height = 4;
  const std::string grid = render_snapshot_grid(snapshots, 4, options);
  EXPECT_NE(grid.find("round 0"), std::string::npos);
  EXPECT_NE(grid.find("round 4"), std::string::npos);
  // 5 snapshots at 4 per row = 2 bands; each band has height+1 rows plus a
  // label line and a blank separator.
  std::size_t newline_count = 0;
  for (char c : grid) {
    if (c == '\n') ++newline_count;
  }
  EXPECT_EQ(newline_count, 2u * (4u + 1u + 1u + 1u));
}

TEST(SnapshotGrid, SharedScaleAcrossSnapshots) {
  // Second snapshot has half the values of the first: with a shared scale its
  // fill count must be strictly smaller.
  BarChartOptions options;
  options.height = 8;
  options.bar_width = 1;
  const std::vector<Snapshot> snapshots{{"a", {1.0, 1.0}}, {"b", {0.5, 0.5}}};
  const std::string grid = render_snapshot_grid(snapshots, 2, options);
  // Total fill: first chart 16, second 8.
  EXPECT_EQ(count_fill(grid, options.fill), 24u);
}

TEST(SnapshotGrid, Validation) {
  EXPECT_THROW(render_snapshot_grid({}, 4), std::invalid_argument);
  EXPECT_THROW(render_snapshot_grid({Snapshot{"x", {1.0}}}, 0), std::invalid_argument);
}

}  // namespace
}  // namespace hetero::report
