#include "hetero/report/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace hetero::report {
namespace {

TEST(CsvEscape, PlainFieldsPassThrough) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape("1.25"), "1.25");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvEscape, QuotesFieldsWithSpecialCharacters) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriter, WritesRowsWithCommas) {
  std::ostringstream out;
  CsvWriter writer{out};
  writer.write_row({"n", "hecr", "note"});
  writer.write_row({"8", "0.366", "linear, paper C1"});
  EXPECT_EQ(out.str(), "n,hecr,note\n8,0.366,\"linear, paper C1\"\n");
  EXPECT_EQ(writer.rows_written(), 2u);
}

TEST(CsvWriter, NumericRowsUseCompactFormat) {
  std::ostringstream out;
  CsvWriter writer{out};
  const std::vector<double> values{1.0, 0.5, 1e-11};
  writer.write_numeric_row(values);
  EXPECT_EQ(out.str(), "1,0.5,1e-11\n");
}

TEST(CsvWriter, EmptyRowProducesBlankLine) {
  std::ostringstream out;
  CsvWriter writer{out};
  writer.write_row(std::initializer_list<std::string>{});
  EXPECT_EQ(out.str(), "\n");
}

}  // namespace
}  // namespace hetero::report
