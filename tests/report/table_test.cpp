#include "hetero/report/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace hetero::report {
namespace {

TEST(FormatFixed, RendersPrecisionCorrectly) {
  EXPECT_EQ(format_fixed(1.23456, 3), "1.235");
  EXPECT_EQ(format_fixed(-0.5, 1), "-0.5");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
}

TEST(FormatScientific, RendersPrecisionCorrectly) {
  EXPECT_EQ(format_scientific(12345.0, 2), "1.23e+04");
  EXPECT_EQ(format_scientific(1.1e-11, 1), "1.1e-11");
}

TEST(TextTable, RejectsEmptyHeaderAndBadRows) {
  EXPECT_THROW(TextTable{std::vector<std::string>{}}, std::invalid_argument);
  TextTable table{{"a", "b"}};
  EXPECT_THROW(table.add_row({"only one"}), std::invalid_argument);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable table{{"cluster", "HECR"}};
  table.add_row({"C1", "0.366"});
  table.add_row({"C2-long-name", "0.216"});
  const std::string text = table.to_string();
  // Every line between rules has the same width.
  std::istringstream lines{text};
  std::string line;
  std::size_t width = 0;
  while (std::getline(lines, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width) << line;
  }
  EXPECT_NE(text.find("C2-long-name"), std::string::npos);
  EXPECT_NE(text.find("0.366"), std::string::npos);
}

TEST(TextTable, TitleAppearsAboveTable) {
  TextTable table{{"x"}};
  table.set_title("Table 3: HECRs");
  table.add_row({"1"});
  const std::string text = table.to_string();
  EXPECT_EQ(text.rfind("Table 3: HECRs", 0), 0u);
}

TEST(TextTable, AlignmentControl) {
  TextTable table{{"name", "value"}};
  table.set_alignment(1, Align::kLeft);
  table.add_row({"a", "1"});
  table.add_row({"b", "10000"});
  const std::string text = table.to_string();
  // Left-aligned "1" is padded on the right: "| 1     |".
  EXPECT_NE(text.find("| 1     |"), std::string::npos) << text;
  EXPECT_THROW(table.set_alignment(5, Align::kLeft), std::out_of_range);
}

TEST(TextTable, RowCountAndStreaming) {
  TextTable table{{"h"}};
  EXPECT_EQ(table.row_count(), 0u);
  table.add_row({"v"});
  EXPECT_EQ(table.row_count(), 1u);
  std::ostringstream out;
  out << table;
  EXPECT_FALSE(out.str().empty());
}

}  // namespace
}  // namespace hetero::report
