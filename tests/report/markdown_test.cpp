#include "hetero/report/markdown.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hetero::report {
namespace {

TEST(MarkdownTable, RendersHeaderSeparatorAndRows) {
  const std::string table =
      markdown_table({"n", "HECR"}, {{"8", "0.366"}, {"16", "0.298"}});
  EXPECT_EQ(table, "| n | HECR |\n|---|---|\n| 8 | 0.366 |\n| 16 | 0.298 |\n");
}

TEST(MarkdownTable, EmptyBodyIsJustHeader) {
  const std::string table = markdown_table({"only"}, {});
  EXPECT_EQ(table, "| only |\n|---|\n");
}

TEST(MarkdownTable, Validation) {
  EXPECT_THROW((void)markdown_table({}, {}), std::invalid_argument);
  EXPECT_THROW((void)markdown_table({"a", "b"}, {{"one"}}), std::invalid_argument);
}

TEST(Sparkline, ScalesToMaximum) {
  const std::string line = sparkline({0.0, 0.5, 1.0});
  EXPECT_EQ(line, "▁▅█");
}

TEST(Sparkline, ExplicitYMax) {
  // With y_max = 2, a value of 1 sits at half scale (level 4 of 8).
  EXPECT_EQ(sparkline({1.0}, 2.0), "▅");
  EXPECT_EQ(sparkline({2.0}, 2.0), "█");
}

TEST(Sparkline, EdgeCases) {
  EXPECT_EQ(sparkline({}), "");
  EXPECT_EQ(sparkline({0.0, 0.0}), "▁▁");  // all-zero: bottom level
  EXPECT_THROW((void)sparkline({-1.0}), std::invalid_argument);
  EXPECT_THROW((void)sparkline(std::vector<double>{std::nan("")}), std::invalid_argument);
}

TEST(Sparkline, MonotoneDataGivesMonotoneLevels) {
  const std::string line = sparkline({1, 2, 3, 4, 5, 6, 7, 8});
  // UTF-8: each level is 3 bytes; compare consecutive glyphs.
  ASSERT_EQ(line.size(), 8u * 3u);
  for (std::size_t i = 3; i < line.size(); i += 3) {
    EXPECT_LE(line.compare(i - 3, 3, line, i, 3), 0);
  }
}

}  // namespace
}  // namespace hetero::report
