#include "hetero/report/gantt.h"

#include <gtest/gtest.h>

#include <sstream>

#include "hetero/protocol/fifo.h"
#include "hetero/sim/worksharing.h"

namespace hetero::report {
namespace {

const core::Environment kEnv = core::Environment::paper_default();

sim::SimulationResult run_fifo(const std::vector<double>& speeds, double lifespan) {
  const auto allocations = protocol::fifo_allocations(speeds, kEnv, lifespan);
  return sim::simulate_worksharing(speeds, kEnv, allocations,
                                   protocol::ProtocolOrders::fifo(speeds.size()));
}

TEST(Gantt, RendersOneLanePerActor) {
  const auto result = run_fifo({1.0, 0.5, 0.25}, 100.0);
  const std::string gantt = render_gantt(result.trace);
  EXPECT_NE(gantt.find("server"), std::string::npos);
  EXPECT_NE(gantt.find("C1"), std::string::npos);
  EXPECT_NE(gantt.find("C2"), std::string::npos);
  EXPECT_NE(gantt.find("C3"), std::string::npos);
}

TEST(Gantt, ContainsComputeAndTransitMarks) {
  const auto result = run_fifo({1.0, 0.5}, 50.0);
  GanttOptions options;
  options.width = 80;
  const std::string gantt = render_gantt(result.trace, options);
  EXPECT_NE(gantt.find('C'), std::string::npos);   // compute
  EXPECT_NE(gantt.find('<'), std::string::npos);   // result transit
  EXPECT_NE(gantt.find('>'), std::string::npos);   // work transit
}

TEST(Gantt, LegendToggle) {
  const auto result = run_fifo({1.0}, 10.0);
  GanttOptions with;
  with.show_legend = true;
  GanttOptions without;
  without.show_legend = false;
  EXPECT_NE(render_gantt(result.trace, with).find("legend:"), std::string::npos);
  EXPECT_EQ(render_gantt(result.trace, without).find("legend:"), std::string::npos);
}

TEST(Gantt, LanesHaveRequestedWidth) {
  const auto result = run_fifo({1.0, 0.5}, 25.0);
  GanttOptions options;
  options.width = 60;
  options.show_legend = false;
  const std::string gantt = render_gantt(result.trace, options);
  std::istringstream lines{gantt};
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    const auto open = line.find('|');
    const auto close = line.rfind('|');
    ASSERT_NE(open, std::string::npos);
    EXPECT_EQ(close - open - 1, 60u) << line;
  }
}

TEST(Gantt, EmptyTraceRendersLegendOnly) {
  const sim::Trace empty;
  const std::string gantt = render_gantt(empty);
  EXPECT_NE(gantt.find("legend:"), std::string::npos);
}

TEST(Gantt, ComputeDominatesWorkerLane) {
  // With Table-1 parameters compute is ~1e5 x longer than packaging, so a
  // worker's lane should be mostly 'C'.
  const auto result = run_fifo({1.0}, 100.0);
  GanttOptions options;
  options.width = 100;
  options.show_legend = false;
  const std::string gantt = render_gantt(result.trace, options);
  std::istringstream lines{gantt};
  std::string server_lane;
  std::string worker_lane;
  std::getline(lines, server_lane);
  std::getline(lines, worker_lane);
  std::size_t compute_cols = 0;
  for (char c : worker_lane) {
    if (c == 'C') ++compute_cols;
  }
  EXPECT_GT(compute_cols, 80u);
}

}  // namespace
}  // namespace hetero::report
