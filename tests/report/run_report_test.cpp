// Run-report generator: byte-determinism, straggler attribution, and JSON
// validity, driven end to end through real journaled sweeps.

#include "hetero/report/run_report.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "hetero/core/environment.h"
#include "hetero/core/errors.h"
#include "hetero/experiments/fault_sweep.h"
#include "hetero/experiments/protocol_sweep.h"
#include "hetero/runner/journal.h"
#include "hetero/runner/runner.h"
#include "../support/mini_json.h"

#if HETERO_OBS_ENABLED

namespace core = hetero::core;
namespace experiments = hetero::experiments;
namespace report = hetero::report;
namespace runner = hetero::runner;
using hetero::test_support::parse_json;

namespace {

const std::vector<double> kSpeeds{1.0, 0.5, 0.25};

/// Grid built so straggler attribution is forced: five identical fault-free
/// cells and one with a 6x straggler.  MAD over the identical cells is zero,
/// so the injected straggler's deviation scores infinite — the degenerate
/// branch tests/stats/robust_test.cpp pins down.  The replicated protocol is
/// the one whose makespan actually moves with straggler severity here (FIFO
/// and MDS results all land right at the horizon L regardless).
experiments::ProtocolSweepConfig straggler_config() {
  experiments::ProtocolSweepConfig config;
  config.lifespan = 50.0;
  config.crash_rates = {0.0};
  config.straggler_factors = {1.0, 1.0, 1.0, 1.0, 1.0, 6.0};
  config.trials = 1;
  config.seed = 2026;
  config.protocols = {hetero::protocol::ProtocolKind::kReplicated};
  return config;
}

class RunReportTest : public testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }

  /// Runs the straggler sweep journaled into path_ (serial, deterministic).
  void journal_straggler_sweep() {
    const core::Environment env = core::Environment::paper_default();
    const auto config = straggler_config();
    runner::Journal journal = runner::Journal::open_or_resume(
        path_, experiments::protocol_sweep_journal_header(kSpeeds, env, config));
    runner::RunContext ctx;
    ctx.journal = &journal;
    (void)experiments::run_protocol_sweep(kSpeeds, env, config, ctx);
  }

  std::string path_ = testing::TempDir() + "run_report_test_" +
                      testing::UnitTest::GetInstance()->current_test_info()->name() + "." +
                      std::to_string(::getpid()) + ".journal";
};

}  // namespace

TEST_F(RunReportTest, ReportsAreByteIdenticalAcrossInvocations) {
  journal_straggler_sweep();
  const std::string md1 = report::run_report_markdown(path_);
  const std::string md2 = report::run_report_markdown(path_);
  EXPECT_EQ(md1, md2);
  const std::string json1 = report::run_report_json(path_);
  const std::string json2 = report::run_report_json(path_);
  EXPECT_EQ(json1, json2);
  EXPECT_NE(md1, json1);
}

TEST_F(RunReportTest, AttributesInjectedStragglerCell) {
  journal_straggler_sweep();
  const auto doc = parse_json(report::run_report_json(path_));

  EXPECT_EQ(doc.at("tool").string(), "protocol_sweep");
  EXPECT_EQ(doc.at("seed").number(), 2026.0);
  EXPECT_EQ(doc.at("units").number(), 6.0);
  EXPECT_EQ(doc.at("dropped_records").number(), 0.0);

  // Exactly the factor-6 cell (unit 5) is flagged, attributed to its grid
  // coordinates, with the MAD==0 infinite score serialized as a string.
  const auto& outliers = doc.at("simulated_outliers").array();
  ASSERT_EQ(outliers.size(), 1u);
  const auto& outlier = outliers[0];
  EXPECT_EQ(outlier.at("unit").number(), 5.0);
  EXPECT_EQ(outlier.at("metric").string(), "mean makespan");
  EXPECT_NE(outlier.at("cell").string().find("straggler factor 6"), std::string::npos);
  ASSERT_TRUE(outlier.at("score").is_string());
  EXPECT_EQ(outlier.at("score").string(), "inf");

  // The markdown rendering carries the same attribution.
  const std::string md = report::run_report_markdown(path_);
  EXPECT_NE(md.find("### Simulated outliers (mean makespan"), std::string::npos);
  EXPECT_NE(md.find("straggler factor 6"), std::string::npos);
}

TEST_F(RunReportTest, ExecutionSectionJoinsTelemetry) {
  journal_straggler_sweep();
  const auto doc = parse_json(report::run_report_json(path_));

  const auto& execution = doc.at("execution");
  EXPECT_EQ(execution.at("units").number(), 6.0);
  EXPECT_EQ(execution.at("attempts").number(), 6.0);
  EXPECT_EQ(execution.at("retries").number(), 0.0);
  EXPECT_EQ(execution.at("duplicate_attempts").number(), 0.0);
  EXPECT_EQ(execution.at("outcomes").at("ok").number(), 6.0);
  EXPECT_EQ(execution.at("outcomes").at("fault").number(), 0.0);
  const auto& wall = execution.at("wall_seconds");
  EXPECT_GE(wall.at("total").number(), 0.0);
  EXPECT_GE(wall.at("p99").number(), wall.at("p50").number());

  // The sizing LP ran once (coded sizings are computed even on a FIFO-only
  // axis) and its warm-start telemetry reached the sidecar.
  ASSERT_TRUE(doc.contains("lp"));
  EXPECT_GE(doc.at("lp").at("solves").number(), 1.0);
}

TEST_F(RunReportTest, FaultSweepJournalsAlsoReport) {
  const core::Environment env = core::Environment::paper_default();
  experiments::FaultSweepConfig config;
  config.lifespan = 50.0;
  config.crash_rates = {0.0, 0.01};
  config.straggler_factors = {1.0, 2.0};
  config.trials = 1;
  config.seed = 7;
  runner::Journal journal = runner::Journal::open_or_resume(
      path_, experiments::fault_sweep_journal_header(kSpeeds, env, config));
  runner::RunContext ctx;
  ctx.journal = &journal;
  (void)experiments::run_fault_sweep(kSpeeds, env, config, ctx);

  const std::string md = report::run_report_markdown(path_);
  EXPECT_NE(md.find("# Run report: fault_sweep"), std::string::npos);
  const auto doc = parse_json(report::run_report_json(path_));
  EXPECT_EQ(doc.at("tool").string(), "fault_sweep");
  EXPECT_EQ(doc.at("units").number(), 4.0);
}

TEST_F(RunReportTest, MissingJournalThrows) {
  EXPECT_THROW(static_cast<void>(report::run_report_markdown(path_ + ".does-not-exist")),
               core::FatalError);
  EXPECT_THROW(static_cast<void>(report::run_report_json(path_ + ".does-not-exist")),
               core::FatalError);
}

#else  // !HETERO_OBS_ENABLED

TEST(RunReport, StubsSayDisabled) {
  EXPECT_NE(hetero::report::run_report_markdown("x").find("disabled"), std::string::npos);
  EXPECT_NE(hetero::report::run_report_json("x").find("disabled"), std::string::npos);
}

#endif  // HETERO_OBS_ENABLED
