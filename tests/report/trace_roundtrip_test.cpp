// Trace → gantt → Chrome-trace round trip: a simulated FIFO episode must
// export the *same* segment set through both views.  The Chrome-trace JSON
// is parsed back (with the test-support parser) and golden-checked event by
// event against sim::Trace — same intervals, same actors, same activities —
// which is the PR's acceptance criterion for the exporter.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "../support/mini_json.h"
#include "hetero/core/environment.h"
#include "hetero/obs/chrome_trace.h"
#include "hetero/protocol/fifo.h"
#include "hetero/report/gantt.h"
#include "hetero/sim/trace.h"
#include "hetero/sim/trace_export.h"
#include "hetero/sim/worksharing.h"

namespace hetero {
namespace {

using test_support::parse_json;

// name, tid, ts_us, dur_us, subject — everything a Chrome-trace complete
// event carries about a segment.
using EventKey = std::tuple<std::string, int, double, double, std::string>;

sim::SimulationResult simulated_fifo_episode() {
  const std::vector<double> speeds{1.0, 0.5, 0.25};
  const core::Environment env = core::Environment::paper_default();
  const protocol::Schedule schedule = protocol::fifo_schedule(speeds, env, 3600.0);
  return sim::simulate_schedule(schedule, env);
}

std::multiset<EventKey> keys_from_trace(const sim::Trace& trace, double us_per_sim_time) {
  std::multiset<EventKey> keys;
  for (const sim::TraceSegment& segment : trace.segments()) {
    keys.emplace(std::string{sim::to_string(segment.activity)},
                 sim::trace_export_tid(segment.actor), segment.start * us_per_sim_time,
                 segment.duration() * us_per_sim_time,
                 "C" + std::to_string(segment.subject + 1));
  }
  return keys;
}

TEST(TraceRoundTripTest, ChromeTraceJsonMatchesTraceSegmentsExactly) {
  const sim::SimulationResult result = simulated_fifo_episode();
  ASSERT_FALSE(result.trace.segments().empty());

  constexpr double kUsPerSimTime = 1e6;
  const std::string json =
      obs::chrome_trace_json(sim::trace_events(result.trace, kUsPerSimTime));

  const auto doc = parse_json(json);  // throws on malformed JSON
  const auto& events = doc.at("traceEvents").array();
  ASSERT_EQ(events.size(), result.trace.segments().size());

  std::multiset<EventKey> exported;
  for (const auto& event : events) {
    EXPECT_EQ(event.at("ph").string(), "X");
    EXPECT_EQ(event.at("cat").string(), "sim");
    EXPECT_DOUBLE_EQ(event.at("pid").number(), obs::kSimPid);
    exported.emplace(event.at("name").string(),
                     static_cast<int>(event.at("tid").number()), event.at("ts").number(),
                     event.at("dur").number(), event.at("args").at("subject").string());
  }

  // Golden check: the exported event multiset IS the trace's segment
  // multiset — same intervals, same actors, nothing added or dropped.
  // %.17g serialization makes the doubles round-trip bit-exactly.
  EXPECT_EQ(exported, keys_from_trace(result.trace, kUsPerSimTime));
}

TEST(TraceRoundTripTest, GanttRendersOneRowPerExportedThread) {
  const sim::SimulationResult result = simulated_fifo_episode();

  // Distinct actors in the trace == distinct tids in the export.
  std::set<int> tids;
  for (const obs::TraceEvent& event : sim::trace_events(result.trace)) {
    tids.insert(event.tid);
  }
  EXPECT_EQ(tids.size(), 4u);  // server + 3 workers
  EXPECT_TRUE(tids.contains(0));

  report::GanttOptions options;
  options.width = 72;
  const std::string gantt = report::render_gantt(result.trace, options);
  EXPECT_NE(gantt.find("server"), std::string::npos);
  for (std::size_t machine = 0; machine < 3; ++machine) {
    EXPECT_NE(gantt.find("C" + std::to_string(machine + 1)), std::string::npos)
        << "gantt row for worker " << machine;
  }

  // Both views agree on the episode's extent: the latest exported event end
  // equals the trace horizon (which bounds the gantt's time axis).
  double last_end_us = 0.0;
  for (const obs::TraceEvent& event : sim::trace_events(result.trace)) {
    last_end_us = std::max(last_end_us, event.ts_us + event.dur_us);
  }
  EXPECT_DOUBLE_EQ(last_end_us, result.trace.horizon() * 1e6);
}

TEST(TraceRoundTripTest, ScalingFactorIsHonored) {
  const sim::SimulationResult result = simulated_fifo_episode();
  const auto at_1x = sim::trace_events(result.trace, 1.0);
  const auto at_1000x = sim::trace_events(result.trace, 1000.0);
  ASSERT_EQ(at_1x.size(), at_1000x.size());
  for (std::size_t i = 0; i < at_1x.size(); ++i) {
    EXPECT_DOUBLE_EQ(at_1000x[i].ts_us, at_1x[i].ts_us * 1000.0);
    EXPECT_DOUBLE_EQ(at_1000x[i].dur_us, at_1x[i].dur_us * 1000.0);
  }
}

}  // namespace
}  // namespace hetero
