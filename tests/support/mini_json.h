#pragma once

// A minimal strict JSON parser for golden tests (no external deps).
//
// The Chrome-trace golden tests need to prove the exporter's output
// *parses as JSON* — not merely that it contains expected substrings — and
// then compare the parsed events against the source trace.  This parser
// supports the full JSON grammar the exporter can emit (objects, arrays,
// strings with escapes, numbers, booleans, null) and throws
// std::runtime_error with a byte offset on any syntax error.

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace hetero::test_support {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

class JsonValue {
 public:
  using Storage = std::variant<std::nullptr_t, bool, double, std::string,
                               std::shared_ptr<JsonArray>, std::shared_ptr<JsonObject>>;

  JsonValue() : storage_{nullptr} {}
  explicit JsonValue(Storage storage) : storage_{std::move(storage)} {}

  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<std::shared_ptr<JsonObject>>(storage_);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<std::shared_ptr<JsonArray>>(storage_);
  }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(storage_); }
  [[nodiscard]] bool is_number() const { return std::holds_alternative<double>(storage_); }

  [[nodiscard]] const JsonObject& object() const {
    return *std::get<std::shared_ptr<JsonObject>>(storage_);
  }
  [[nodiscard]] const JsonArray& array() const {
    return *std::get<std::shared_ptr<JsonArray>>(storage_);
  }
  [[nodiscard]] const std::string& string() const { return std::get<std::string>(storage_); }
  [[nodiscard]] double number() const { return std::get<double>(storage_); }

  [[nodiscard]] const JsonValue& at(const std::string& key) const {
    const auto& members = object();
    const auto it = members.find(key);
    if (it == members.end()) throw std::runtime_error("mini_json: missing key " + key);
    return it->second;
  }
  [[nodiscard]] bool contains(const std::string& key) const {
    return is_object() && object().count(key) != 0;
  }

 private:
  Storage storage_;
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_{text} {}

  [[nodiscard]] JsonValue parse() {
    const JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("mini_json: " + what + " at byte " + std::to_string(pos_));
  }

  void skip_whitespace() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string{"expected '"} + c + "'");
    ++pos_;
  }

  bool try_consume(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  [[nodiscard]] JsonValue parse_value() {
    skip_whitespace();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return JsonValue{JsonValue::Storage{parse_string()}};
    if (try_consume("true")) return JsonValue{JsonValue::Storage{true}};
    if (try_consume("false")) return JsonValue{JsonValue::Storage{false}};
    if (try_consume("null")) return JsonValue{JsonValue::Storage{nullptr}};
    return parse_number();
  }

  [[nodiscard]] JsonValue parse_object() {
    expect('{');
    auto members = std::make_shared<JsonObject>();
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return JsonValue{JsonValue::Storage{std::move(members)}};
    }
    for (;;) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      (*members)[std::move(key)] = parse_value();
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue{JsonValue::Storage{std::move(members)}};
    }
  }

  [[nodiscard]] JsonValue parse_array() {
    expect('[');
    auto elements = std::make_shared<JsonArray>();
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return JsonValue{JsonValue::Storage{std::move(elements)}};
    }
    for (;;) {
      elements->push_back(parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue{JsonValue::Storage{std::move(elements)}};
    }
  }

  [[nodiscard]] std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // Tests only exercise ASCII escapes; keep it simple.
          if (code > 0x7f) fail("non-ASCII \\u escape unsupported in mini_json");
          out += static_cast<char>(code);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  [[nodiscard]] JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    auto digits = [this] {
      std::size_t count = 0;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        ++count;
      }
      return count;
    };
    if (digits() == 0) fail("expected digits");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("expected fraction digits");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (digits() == 0) fail("expected exponent digits");
    }
    const std::string token{text_.substr(start, pos_ - start)};
    return JsonValue{JsonValue::Storage{std::strtod(token.c_str(), nullptr)}};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

[[nodiscard]] inline JsonValue parse_json(std::string_view text) {
  return JsonParser{text}.parse();
}

}  // namespace hetero::test_support
