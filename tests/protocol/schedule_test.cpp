#include "hetero/protocol/schedule.h"

#include <gtest/gtest.h>

#include "hetero/protocol/fifo.h"

namespace hetero::protocol {
namespace {

const core::Environment kEnv = core::Environment::paper_default();

TEST(ProtocolOrders, FifoAndLifoFactories) {
  const ProtocolOrders fifo = ProtocolOrders::fifo(4);
  EXPECT_TRUE(fifo.is_fifo());
  EXPECT_TRUE(fifo.is_valid(4));
  const ProtocolOrders lifo = ProtocolOrders::lifo(4);
  EXPECT_FALSE(lifo.is_fifo());
  EXPECT_TRUE(lifo.is_valid(4));
  EXPECT_EQ(lifo.finishing.front(), 3u);
  EXPECT_EQ(lifo.finishing.back(), 0u);
}

TEST(ProtocolOrders, ValidationCatchesBadPermutations) {
  ProtocolOrders orders;
  orders.startup = {0, 1, 2};
  orders.finishing = {0, 1, 1};  // duplicate
  EXPECT_FALSE(orders.is_valid(3));
  orders.finishing = {0, 1, 3};  // out of range
  EXPECT_FALSE(orders.is_valid(3));
  orders.finishing = {0, 1};  // wrong length
  EXPECT_FALSE(orders.is_valid(3));
  // n=1 degenerate FIFO == LIFO.
  EXPECT_TRUE(ProtocolOrders::lifo(1).is_fifo());
}

TEST(Schedule, TotalWorkSumsAllocations) {
  const std::vector<double> speeds{1.0, 0.5};
  const Schedule schedule = fifo_schedule(speeds, kEnv, 100.0);
  double manual = 0.0;
  for (const WorkerTimeline& t : schedule.timelines) manual += t.work;
  EXPECT_DOUBLE_EQ(schedule.total_work(), manual);
}

TEST(Schedule, TimelineForMachineFindsAndThrows) {
  const std::vector<double> speeds{1.0, 0.5};
  const Schedule schedule = fifo_schedule(speeds, kEnv, 100.0);
  EXPECT_EQ(schedule.timeline_for_machine(1).machine, 1u);
  EXPECT_THROW((void)schedule.timeline_for_machine(7), std::out_of_range);
}

TEST(ScheduleValidate, AcceptsWellFormedFifoSchedule) {
  const std::vector<double> speeds{1.0, 0.5, 0.25};
  const Schedule schedule = fifo_schedule(speeds, kEnv, 1000.0);
  const auto violations = schedule.validate(kEnv);
  EXPECT_TRUE(violations.empty()) << (violations.empty() ? "" : violations.front());
}

TEST(ScheduleValidate, FlagsNegativeWork) {
  Schedule schedule = fifo_schedule(std::vector<double>{1.0, 0.5}, kEnv, 100.0);
  schedule.timelines[0].work = -1.0;
  EXPECT_FALSE(schedule.validate(kEnv).empty());
}

TEST(ScheduleValidate, FlagsInconsistentSendWindow) {
  Schedule schedule = fifo_schedule(std::vector<double>{1.0, 0.5}, kEnv, 100.0);
  schedule.timelines[0].receive += 1.0;  // now receive - send_start != A*w
  const auto violations = schedule.validate(kEnv);
  EXPECT_FALSE(violations.empty());
}

TEST(ScheduleValidate, FlagsResultBeforeComputeDone) {
  Schedule schedule = fifo_schedule(std::vector<double>{1.0, 0.5}, kEnv, 100.0);
  auto& t = schedule.timelines[1];
  const double width = t.result_end - t.result_start;
  t.result_start = t.compute_done - 5.0;
  t.result_end = t.result_start + width;
  const auto violations = schedule.validate(kEnv);
  EXPECT_FALSE(violations.empty());
}

TEST(ScheduleValidate, FlagsDeadlineOverrun) {
  Schedule schedule = fifo_schedule(std::vector<double>{1.0, 0.5}, kEnv, 100.0);
  schedule.lifespan = schedule.timelines.back().result_end - 1.0;
  const auto violations = schedule.validate(kEnv);
  EXPECT_FALSE(violations.empty());
}

TEST(ScheduleValidate, FlagsChannelDoubleBooking) {
  Schedule schedule = fifo_schedule(std::vector<double>{1.0, 1.0}, kEnv, 100.0);
  // Slide worker 2's result on top of worker 1's.
  auto& t = schedule.timelines[1];
  const double width = t.result_end - t.result_start;
  t.result_start = schedule.timelines[0].result_start;
  t.result_end = t.result_start + width;
  const auto violations = schedule.validate(kEnv);
  ASSERT_FALSE(violations.empty());
  bool mentions_channel = false;
  for (const auto& v : violations) {
    if (v.find("channel") != std::string::npos) mentions_channel = true;
  }
  EXPECT_TRUE(mentions_channel);
}

TEST(ScheduleValidate, FlagsMachineIndexOutOfRange) {
  Schedule schedule = fifo_schedule(std::vector<double>{1.0, 0.5}, kEnv, 100.0);
  schedule.timelines[0].machine = 99;
  EXPECT_FALSE(schedule.validate(kEnv).empty());
}

}  // namespace
}  // namespace hetero::protocol
