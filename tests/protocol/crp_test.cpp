#include <gtest/gtest.h>

#include "hetero/core/power.h"
#include "hetero/numeric/stable.h"
#include "hetero/protocol/fifo.h"
#include "hetero/sim/worksharing.h"

namespace hetero::protocol {
namespace {

const core::Environment kEnv = core::Environment::paper_default();

TEST(RentalTime, IsTheExactInverseOfWorkProduction) {
  const core::Profile p{{1.0, 0.5, 0.25}};
  for (double work : {1.0, 100.0, 1e6}) {
    const double lifespan = core::rental_time(work, p, kEnv);
    EXPECT_LT(numeric::relative_difference(core::work_production(lifespan, p, kEnv), work),
              1e-12);
  }
  EXPECT_DOUBLE_EQ(core::rental_time(0.0, p, kEnv), 0.0);
  EXPECT_THROW((void)core::rental_time(-1.0, p, kEnv), std::invalid_argument);
}

TEST(RentalTime, FasterClustersRentForLess) {
  const core::Profile fast{{1.0, 0.25}};
  const core::Profile slow{{1.0, 0.5}};
  EXPECT_LT(core::rental_time(100.0, fast, kEnv), core::rental_time(100.0, slow, kEnv));
}

TEST(CrpSchedule, CompletesExactlyTheRequestedWork) {
  const std::vector<double> speeds{1.0, 0.5, 1.0 / 3.0};
  const double requested = 2500.0;
  const Schedule schedule = crp_schedule(speeds, kEnv, requested);
  EXPECT_LT(numeric::relative_difference(schedule.total_work(), requested), 1e-9);
  EXPECT_TRUE(schedule.validate(kEnv).empty());
  // The dual's objective: the last result lands exactly at the (minimal)
  // lifespan the schedule claims.
  double last = 0.0;
  for (const auto& t : schedule.timelines) last = std::max(last, t.result_end);
  EXPECT_NEAR(last, schedule.lifespan, 1e-9 * schedule.lifespan);
}

TEST(CrpSchedule, SimulationDeliversTheWorkByTheRentalDeadline) {
  const std::vector<double> speeds{0.9, 0.6, 0.3, 0.15};
  const double requested = 1000.0;
  const Schedule schedule = crp_schedule(speeds, kEnv, requested);
  const auto result = sim::simulate_schedule(schedule, kEnv);
  EXPECT_LT(numeric::relative_difference(result.completed_work(schedule.lifespan), requested),
            1e-9);
}

TEST(CrpSchedule, ShorterLifespanCannotCarryTheWork) {
  // Minimality: a FIFO schedule for 99.9% of the rental time completes
  // strictly less than the requested work.
  const std::vector<double> speeds{1.0, 0.5};
  const double requested = 500.0;
  const Schedule schedule = crp_schedule(speeds, kEnv, requested);
  const double squeezed = fifo_total_work(speeds, kEnv, 0.999 * schedule.lifespan);
  EXPECT_LT(squeezed, requested);
}

TEST(CrpSchedule, Validation) {
  const std::vector<double> speeds{1.0};
  EXPECT_THROW((void)crp_schedule(speeds, kEnv, 0.0), std::invalid_argument);
  EXPECT_THROW((void)crp_schedule(speeds, kEnv, -5.0), std::invalid_argument);
}

}  // namespace
}  // namespace hetero::protocol
