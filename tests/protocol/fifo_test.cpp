#include "hetero/protocol/fifo.h"

#include <gtest/gtest.h>

#include <numeric>

#include "hetero/core/power.h"
#include "hetero/numeric/stable.h"

namespace hetero::protocol {
namespace {

const core::Environment kEnv = core::Environment::paper_default();

TEST(FifoAllocations, SingleMachineMatchesHandDerivation) {
  // n = 1: (A + B rho + tau delta) w = L.
  const std::vector<double> speeds{0.5};
  const double lifespan = 100.0;
  const auto w = fifo_allocations(speeds, kEnv, lifespan);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_NEAR(w[0], lifespan / (kEnv.a() + kEnv.b() * 0.5 + kEnv.tau_delta()), 1e-9);
}

TEST(FifoAllocations, TotalWorkMatchesTheorem2) {
  // The closed-form schedule must produce exactly W(L; P) from Theorem 2.
  for (const auto& speeds :
       {std::vector<double>{1.0}, std::vector<double>{1.0, 0.5},
        std::vector<double>{1.0, 0.5, 1.0 / 3.0, 0.25}, std::vector<double>{0.3, 0.3, 0.3}}) {
    const double lifespan = 3600.0;
    const double from_schedule = fifo_total_work(speeds, kEnv, lifespan);
    const double from_formula =
        core::work_production(lifespan, core::Profile{speeds}, kEnv);
    EXPECT_LT(numeric::relative_difference(from_schedule, from_formula), 1e-10);
  }
}

TEST(FifoAllocations, AllPositive) {
  const auto w = fifo_allocations(std::vector<double>{1.0, 0.7, 0.4, 0.1}, kEnv, 50.0);
  for (double v : w) EXPECT_GT(v, 0.0);
}

TEST(FifoAllocations, RecurrenceHoldsBetweenNeighbors) {
  const std::vector<double> speeds{1.0, 0.5, 0.25};
  const auto w = fifo_allocations(speeds, kEnv, 10.0);
  for (std::size_t k = 1; k < w.size(); ++k) {
    const double expected =
        w[k - 1] * (kEnv.b() * speeds[k - 1] + kEnv.tau_delta()) / (kEnv.b() * speeds[k] + kEnv.a());
    EXPECT_NEAR(w[k], expected, 1e-12 * expected);
  }
}

TEST(FifoAllocations, TotalWorkIndependentOfStartupOrder) {
  // Theorem 1(2) at the schedule level.
  const std::vector<double> speeds{1.0, 0.6, 0.3, 0.1};
  const double lifespan = 500.0;
  const std::vector<std::vector<std::size_t>> orders{
      {0, 1, 2, 3}, {3, 2, 1, 0}, {1, 3, 0, 2}, {2, 0, 3, 1}};
  double reference = 0.0;
  for (std::size_t i = 0; i < orders.size(); ++i) {
    const auto w = fifo_allocations(speeds, kEnv, lifespan, orders[i]);
    const double total = std::accumulate(w.begin(), w.end(), 0.0);
    if (i == 0) {
      reference = total;
    } else {
      EXPECT_LT(numeric::relative_difference(total, reference), 1e-10);
    }
  }
}

TEST(FifoSchedule, IsGapFreeEverywhere) {
  const std::vector<double> speeds{1.0, 0.5, 0.25};
  const Schedule s = fifo_schedule(speeds, kEnv, 1000.0);
  // Sends butt against each other from time 0.
  EXPECT_DOUBLE_EQ(s.timelines[0].send_start, 0.0);
  for (std::size_t k = 1; k < s.timelines.size(); ++k) {
    EXPECT_NEAR(s.timelines[k].send_start, s.timelines[k - 1].receive, 1e-12);
  }
  // Results butt against each other and the computation (no worker idles).
  for (std::size_t k = 0; k < s.timelines.size(); ++k) {
    EXPECT_NEAR(s.timelines[k].result_start, s.timelines[k].compute_done, 1e-12);
    if (k > 0) {
      EXPECT_NEAR(s.timelines[k].result_start, s.timelines[k - 1].result_end,
                  1e-9 * s.lifespan);
    }
  }
  // The last result lands exactly at the lifespan.
  EXPECT_NEAR(s.timelines.back().result_end, s.lifespan, 1e-9 * s.lifespan);
}

TEST(FifoSchedule, PassesFullValidation) {
  for (const auto& speeds : {std::vector<double>{1.0}, std::vector<double>{1.0, 0.5, 0.25},
                             std::vector<double>{0.9, 0.9, 0.9, 0.9}}) {
    const Schedule s = fifo_schedule(speeds, kEnv, 100.0);
    const auto violations = s.validate(kEnv);
    EXPECT_TRUE(violations.empty())
        << speeds.size() << ": " << (violations.empty() ? "" : violations.front());
  }
}

TEST(FifoSchedule, WorkScalesLinearlyWithLifespan) {
  const std::vector<double> speeds{1.0, 0.5};
  EXPECT_NEAR(fifo_total_work(speeds, kEnv, 200.0), 2.0 * fifo_total_work(speeds, kEnv, 100.0),
              1e-9);
}

TEST(FifoSchedule, FasterClusterDoesMoreWork) {
  // Proposition 2 at the schedule level.
  EXPECT_GT(fifo_total_work(std::vector<double>{1.0, 0.25}, kEnv, 100.0),
            fifo_total_work(std::vector<double>{1.0, 0.5}, kEnv, 100.0));
}

TEST(FifoAllocations, InputValidation) {
  EXPECT_THROW(fifo_allocations(std::vector<double>{}, kEnv, 10.0), std::invalid_argument);
  EXPECT_THROW(fifo_allocations(std::vector<double>{1.0}, kEnv, 0.0), std::invalid_argument);
  EXPECT_THROW(fifo_allocations(std::vector<double>{1.0}, kEnv, -5.0), std::invalid_argument);
  EXPECT_THROW(fifo_allocations(std::vector<double>{1.0, 0.0}, kEnv, 10.0),
               std::invalid_argument);
  const std::vector<std::size_t> bad_order{0, 0};
  EXPECT_THROW(fifo_allocations(std::vector<double>{1.0, 0.5}, kEnv, 10.0, bad_order),
               std::invalid_argument);
}

}  // namespace
}  // namespace hetero::protocol
