#include "hetero/protocol/reactive.h"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

#include "hetero/protocol/fifo.h"

namespace hetero::protocol {
namespace {

const core::Environment kEnv = core::Environment::paper_default();

double sum(const std::vector<double>& values) {
  return std::accumulate(values.begin(), values.end(), 0.0);
}

TEST(ReactivePlanner, StartsFromTheClosedFormFifoOptimum) {
  const std::vector<double> speeds{1.0, 0.5, 0.25, 0.125};
  ReactiveFifoPlanner planner{speeds, kEnv, 100.0, ReactivePolicy{}};
  const auto expected = fifo_allocations(speeds, kEnv, 100.0);
  const auto actual = planner.current_allocations();
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t k = 0; k < expected.size(); ++k) {
    EXPECT_DOUBLE_EQ(actual[k], expected[k]);
  }
  EXPECT_EQ(planner.replans(), 0u);
}

TEST(ReactivePlanner, RejectsBadInputs) {
  EXPECT_THROW((ReactiveFifoPlanner{std::vector<double>{}, kEnv, 100.0, ReactivePolicy{}}),
               std::invalid_argument);
  EXPECT_THROW((ReactiveFifoPlanner{std::vector<double>{1.0}, kEnv, 0.0, ReactivePolicy{}}),
               std::invalid_argument);
  ReactiveFifoPlanner planner{std::vector<double>{1.0, 0.5}, kEnv, 100.0, ReactivePolicy{}};
  EXPECT_THROW(planner.on_event(1.0, 7, WorkerEvent::kCrashed), std::invalid_argument);
  EXPECT_THROW(planner.on_event(1.0, 0, WorkerEvent::kDegraded, 0.5), std::invalid_argument);
}

TEST(ReactivePlanner, DegradedHeadOfLineZeroesTheContinueEstimate) {
  // Machine 0 finishes first; if it straggles, every result behind it is
  // blocked on the FIFO channel, so staying the course yields nothing and
  // any feasible fresh plan wins.
  const std::vector<double> speeds{1.0, 0.5, 0.25, 0.125};
  ReactiveFifoPlanner planner{speeds, kEnv, 100.0, ReactivePolicy{}};
  const auto decision = planner.on_event(10.0, 0, WorkerEvent::kDegraded, 4.0);
  EXPECT_DOUBLE_EQ(decision.continue_estimate, 0.0);
  EXPECT_TRUE(decision.replan);
  EXPECT_EQ(decision.survivors.size(), 4u);  // degraded, not dead
  EXPECT_GT(decision.planned_work, 0.0);
  EXPECT_EQ(planner.replans(), 1u);
}

TEST(ReactivePlanner, DegradedTailCountsTheHealthyPrefix) {
  // If the *last* finisher straggles, the healthy prefix still drains; only
  // the straggler's own allocation is written off in the continue estimate.
  const std::vector<double> speeds{1.0, 0.5, 0.25, 0.125};
  ReactiveFifoPlanner planner{speeds, kEnv, 100.0, ReactivePolicy{}};
  const auto allocations = planner.current_allocations();
  const double healthy_prefix = allocations[0] + allocations[1] + allocations[2];
  const auto decision = planner.on_event(5.0, 3, WorkerEvent::kDegraded, 2.0);
  EXPECT_NEAR(decision.continue_estimate, healthy_prefix, 1e-9);
  // Early in the lifespan a fresh plan over all four machines (one at half
  // speed) still beats abandoning the straggler's ~half of the work.
  EXPECT_TRUE(decision.replan);
  EXPECT_GT(decision.planned_work, decision.continue_estimate);
}

TEST(ReactivePlanner, LateCrashPrefersContinuing) {
  // The crash removes one machine near the end of the lifespan: the healthy
  // machines' nearly-complete loads dwarf anything a restart could earn in
  // the sliver of remaining time.
  const std::vector<double> speeds{1.0, 0.5, 0.25, 0.125};
  ReactiveFifoPlanner planner{speeds, kEnv, 100.0, ReactivePolicy{}};
  const auto decision = planner.on_event(95.0, 1, WorkerEvent::kCrashed);
  EXPECT_FALSE(decision.replan);
  EXPECT_EQ(decision.survivors.size(), 3u);
  EXPECT_GT(decision.continue_estimate, decision.planned_work);
  EXPECT_EQ(planner.replans(), 0u);
}

TEST(ReactivePlanner, UnresponsiveCountsAsDead) {
  const std::vector<double> speeds{1.0, 0.5};
  ReactiveFifoPlanner planner{speeds, kEnv, 100.0, ReactivePolicy{}};
  const auto allocations = planner.current_allocations();
  const auto decision = planner.on_event(10.0, 0, WorkerEvent::kUnresponsive);
  EXPECT_EQ(decision.survivors, (std::vector<std::size_t>{1}));
  // The abandoned machine's slot is skipped, so m1's in-flight load (sized
  // for the whole lifespan) still lands; a fresh plan over m1 alone for the
  // remaining 90 would yield strictly less.  Continue wins.
  EXPECT_NEAR(decision.continue_estimate, allocations[1], 1e-9);
  EXPECT_GT(decision.continue_estimate, decision.planned_work);
  EXPECT_FALSE(decision.replan);
}

TEST(ReactivePlanner, CrashAloneNeverJustifiesAReplan) {
  // Dead machines don't block the FIFO queue — their slots are skipped — so
  // continuing keeps the survivors' *lifespan-sized* allocations, while a
  // fresh plan over the same survivors only covers the remaining time.
  const std::vector<double> speeds{1.0, 0.5, 0.25, 0.125};
  for (std::size_t victim = 0; victim < speeds.size(); ++victim) {
    ReactiveFifoPlanner planner{speeds, kEnv, 100.0, ReactivePolicy{}};
    const auto decision = planner.on_event(10.0, victim, WorkerEvent::kCrashed);
    EXPECT_FALSE(decision.replan) << victim;
    EXPECT_GE(decision.continue_estimate, decision.planned_work) << victim;
  }
}

TEST(ReactivePlanner, MaxReplansGuardStopsThrashing) {
  ReactivePolicy policy;
  policy.max_replans = 1;
  const std::vector<double> speeds{1.0, 0.5, 0.25};
  ReactiveFifoPlanner planner{speeds, kEnv, 100.0, policy};
  EXPECT_TRUE(planner.on_event(5.0, 0, WorkerEvent::kDegraded, 4.0).replan);
  // Second head-of-line degradation would justify another replan, but the
  // budget is spent.
  const auto second = planner.on_event(10.0, 0, WorkerEvent::kDegraded, 4.0);
  EXPECT_FALSE(second.replan);
  EXPECT_EQ(planner.replans(), 1u);
}

TEST(ReactivePlanner, MinRemainingGuardStopsEndgameReplans) {
  ReactivePolicy policy;
  policy.min_remaining_fraction = 0.1;
  const std::vector<double> speeds{1.0, 0.5};
  ReactiveFifoPlanner planner{speeds, kEnv, 100.0, policy};
  const auto decision = planner.on_event(95.0, 0, WorkerEvent::kDegraded, 8.0);
  EXPECT_FALSE(decision.replan);  // only 5% of the lifespan left
}

TEST(ReplanRewritesAllocationsOverSurvivors, CrashThenHeadOfLineDegradation) {
  // A crash alone is absorbed (see above); the degradation of the new head
  // of the finishing order is what forces the rewrite.
  const std::vector<double> speeds{1.0, 0.5, 0.25};
  ReactiveFifoPlanner planner{speeds, kEnv, 100.0, ReactivePolicy{}};
  ASSERT_FALSE(planner.on_event(10.0, 1, WorkerEvent::kCrashed).replan);
  const auto decision = planner.on_event(20.0, 0, WorkerEvent::kDegraded, 4.0);
  ASSERT_TRUE(decision.replan);
  EXPECT_EQ(decision.survivors, (std::vector<std::size_t>{0, 2}));
  const auto allocations = planner.current_allocations();
  EXPECT_DOUBLE_EQ(allocations[1], 0.0);  // the dead machine gets nothing
  EXPECT_GT(allocations[0], 0.0);
  EXPECT_GT(allocations[2], 0.0);
  EXPECT_NEAR(sum(decision.allocations), decision.planned_work, 1e-6);
  // The fresh plan matches the closed-form optimum over the survivors at
  // their *effective* speeds for the remaining 80 time units (Theorem 2:
  // LP == closed form for FIFO).
  const auto expected = fifo_allocations(std::vector<double>{4.0, 0.25}, kEnv, 80.0);
  EXPECT_NEAR(allocations[0], expected[0], 1e-5);
  EXPECT_NEAR(allocations[2], expected[1], 1e-5);
}

TEST(ReactivePlanner, AliveTracksRetiredMachines) {
  const std::vector<double> speeds{1.0, 0.5, 0.25};
  ReactiveFifoPlanner planner{speeds, kEnv, 100.0, ReactivePolicy{}};
  planner.on_event(10.0, 2, WorkerEvent::kCrashed);
  const auto& alive = planner.alive();
  ASSERT_EQ(alive.size(), 3u);
  EXPECT_TRUE(alive[0]);
  EXPECT_TRUE(alive[1]);
  EXPECT_FALSE(alive[2]);
}

}  // namespace
}  // namespace hetero::protocol
