#include "hetero/protocol/lp_solver.h"

#include <gtest/gtest.h>

#include "hetero/core/power.h"
#include "hetero/numeric/stable.h"
#include "hetero/protocol/fifo.h"

namespace hetero::protocol {
namespace {

const core::Environment kEnv = core::Environment::paper_default();

TEST(LpSolver, FifoOrdersReproduceClosedForm) {
  const std::vector<double> speeds{1.0, 0.5, 0.25};
  const double lifespan = 100.0;
  const auto lp = solve_protocol_lp(speeds, kEnv, lifespan, ProtocolOrders::fifo(3));
  ASSERT_EQ(lp.status, numeric::LpStatus::kOptimal);
  const double closed = fifo_total_work(speeds, kEnv, lifespan);
  EXPECT_LT(numeric::relative_difference(lp.total_work, closed), 1e-7);
}

TEST(LpSolver, SingleMachineDegenerateCase) {
  const std::vector<double> speeds{0.7};
  const auto lp = solve_protocol_lp(speeds, kEnv, 10.0, ProtocolOrders::fifo(1));
  ASSERT_EQ(lp.status, numeric::LpStatus::kOptimal);
  EXPECT_NEAR(lp.total_work, 10.0 / (kEnv.a() + kEnv.b() * 0.7 + kEnv.tau_delta()), 1e-8);
}

TEST(LpSolver, LifoNeverBeatsFifo) {
  // Theorem 1: FIFO is optimal over all (Sigma, Phi) pairs.
  for (const auto& speeds : {std::vector<double>{1.0, 0.5}, std::vector<double>{1.0, 0.4, 0.2},
                             std::vector<double>{0.8, 0.8, 0.8}}) {
    const double lifespan = 60.0;
    const auto fifo = solve_protocol_lp(speeds, kEnv, lifespan,
                                        ProtocolOrders::fifo(speeds.size()));
    const auto lifo = solve_protocol_lp(speeds, kEnv, lifespan,
                                        ProtocolOrders::lifo(speeds.size()));
    ASSERT_EQ(fifo.status, numeric::LpStatus::kOptimal);
    ASSERT_EQ(lifo.status, numeric::LpStatus::kOptimal);
    EXPECT_GE(fifo.total_work, lifo.total_work - 1e-9);
  }
}

TEST(LpSolver, ScheduleIsFeasibleAndFillsLifespan) {
  const std::vector<double> speeds{1.0, 0.5, 0.2};
  const auto lp = solve_protocol_lp(speeds, kEnv, 120.0, ProtocolOrders::lifo(3));
  ASSERT_EQ(lp.status, numeric::LpStatus::kOptimal);
  const auto violations = lp.schedule.validate(kEnv, 1e-5);
  EXPECT_TRUE(violations.empty()) << (violations.empty() ? "" : violations.front());
  // An optimal plan always exhausts the lifespan with its last result.
  double last_arrival = 0.0;
  for (const auto& t : lp.schedule.timelines) {
    last_arrival = std::max(last_arrival, t.result_end);
  }
  EXPECT_NEAR(last_arrival, 120.0, 1e-5);
}

TEST(LpSolver, LpTotalMatchesScheduleTotal) {
  const std::vector<double> speeds{0.9, 0.3};
  ProtocolOrders orders;
  orders.startup = {1, 0};
  orders.finishing = {0, 1};
  const auto lp = solve_protocol_lp(speeds, kEnv, 45.0, orders);
  ASSERT_EQ(lp.status, numeric::LpStatus::kOptimal);
  EXPECT_NEAR(lp.total_work, lp.schedule.total_work(), 1e-9 * lp.total_work);
}

TEST(LpSolver, InputValidation) {
  EXPECT_THROW(
      solve_protocol_lp(std::vector<double>{}, kEnv, 10.0, ProtocolOrders::fifo(0)),
      std::invalid_argument);
  EXPECT_THROW(solve_protocol_lp(std::vector<double>{1.0}, kEnv, -1.0, ProtocolOrders::fifo(1)),
               std::invalid_argument);
  ProtocolOrders bad;
  bad.startup = {0, 1};
  bad.finishing = {1, 1};
  EXPECT_THROW(solve_protocol_lp(std::vector<double>{1.0, 0.5}, kEnv, 10.0, bad),
               std::invalid_argument);
  EXPECT_THROW(solve_protocol_lp(std::vector<double>{1.0, -0.5}, kEnv, 10.0,
                                 ProtocolOrders::fifo(2)),
               std::invalid_argument);
}

TEST(EnumerateOrderPairs, CountsFactorialSquaredPairs) {
  const std::vector<double> speeds{1.0, 0.5, 0.25};
  const auto outcomes = enumerate_order_pairs(speeds, kEnv, 30.0);
  EXPECT_EQ(outcomes.size(), 36u);  // 3! * 3!
  for (const auto& outcome : outcomes) EXPECT_GT(outcome.total_work, 0.0);
  EXPECT_THROW(enumerate_order_pairs(std::vector<double>(7, 1.0), kEnv, 30.0),
               std::invalid_argument);
}

TEST(EnumerateOrderPairs, FifoPairsAttainTheMaximum) {
  // Theorem 1, parts (1) and (2), verified exhaustively for n = 3.
  const std::vector<double> speeds{1.0, 0.45, 0.2};
  const auto outcomes = enumerate_order_pairs(speeds, kEnv, 50.0);
  double best = 0.0;
  for (const auto& outcome : outcomes) best = std::max(best, outcome.total_work);
  for (const auto& outcome : outcomes) {
    if (outcome.orders.is_fifo()) {
      EXPECT_NEAR(outcome.total_work, best, 1e-6 * best);
    } else {
      EXPECT_LE(outcome.total_work, best + 1e-9);
    }
  }
}

}  // namespace
}  // namespace hetero::protocol
