// LpResolver: warm-started protocol LP re-solves must be bit-identical to
// fresh solve_protocol_lp calls across sweep grids, while actually reusing
// the cached basis.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "hetero/core/environment.h"
#include "hetero/protocol/lp_solver.h"

namespace hetero::protocol {
namespace {

core::Environment test_env() { return core::Environment::paper_default(); }

void expect_same_result(const LpScheduleResult& warm, const LpScheduleResult& cold) {
  EXPECT_EQ(warm.status, cold.status);
  EXPECT_EQ(warm.total_work, cold.total_work);  // exact: both from the same Rational
  ASSERT_EQ(warm.schedule.timelines.size(), cold.schedule.timelines.size());
  for (std::size_t i = 0; i < warm.schedule.timelines.size(); ++i) {
    const WorkerTimeline& w = warm.schedule.timelines[i];
    const WorkerTimeline& c = cold.schedule.timelines[i];
    EXPECT_EQ(w.machine, c.machine);
    EXPECT_EQ(w.work, c.work);
    EXPECT_EQ(w.send_start, c.send_start);
    EXPECT_EQ(w.receive, c.receive);
    EXPECT_EQ(w.compute_done, c.compute_done);
    EXPECT_EQ(w.result_start, c.result_start);
    EXPECT_EQ(w.result_end, c.result_end);
  }
}

TEST(LpResolver, LifespanSweepBitIdenticalToColdSolves) {
  const std::vector<double> speeds{3.0, 2.0, 1.5, 1.0};
  const core::Environment env = test_env();
  const ProtocolOrders orders = ProtocolOrders::fifo(speeds.size());
  LpResolver resolver;
  for (int step = 0; step < 12; ++step) {
    const double lifespan = 40.0 + 2.5 * step;
    const LpScheduleResult warm = resolver.solve(speeds, env, lifespan, orders);
    const LpScheduleResult cold = solve_protocol_lp(speeds, env, lifespan, orders);
    ASSERT_EQ(cold.status, numeric::LpStatus::kOptimal);
    expect_same_result(warm, cold);
  }
  EXPECT_EQ(resolver.solves(), 12u);
  // Every re-solve after the first should have started from the cached
  // basis: the LP family shares its optimal structure across lifespans.
  EXPECT_GE(resolver.warm_starts(), 1u);
}

TEST(LpResolver, SpeedPerturbationSweepBitIdentical) {
  const core::Environment env = test_env();
  LpResolver resolver;
  for (int step = 0; step < 8; ++step) {
    // One rho perturbed per cell, like neighbouring sweep-grid points.
    const std::vector<double> speeds{2.0 + 0.05 * step, 1.5, 1.0};
    const ProtocolOrders orders = ProtocolOrders::fifo(speeds.size());
    const LpScheduleResult warm = resolver.solve(speeds, env, 30.0, orders);
    const LpScheduleResult cold = solve_protocol_lp(speeds, env, 30.0, orders);
    expect_same_result(warm, cold);
  }
  EXPECT_EQ(resolver.solves(), 8u);
  EXPECT_GE(resolver.warm_starts(), 1u);
}

TEST(LpResolver, ResetDropsTheCachedBasis) {
  const std::vector<double> speeds{2.0, 1.0};
  const core::Environment env = test_env();
  const ProtocolOrders orders = ProtocolOrders::fifo(speeds.size());
  LpResolver resolver;
  (void)resolver.solve(speeds, env, 20.0, orders);
  const std::uint64_t warm_before = resolver.warm_starts();
  resolver.reset();
  // The first solve after reset is necessarily cold.
  const LpScheduleResult after = resolver.solve(speeds, env, 21.0, orders);
  EXPECT_EQ(resolver.warm_starts(), warm_before);
  expect_same_result(after, solve_protocol_lp(speeds, env, 21.0, orders));
}

TEST(LpResolver, OrderEnumerationStillFindsFifoOptimal) {
  // enumerate_order_pairs warm-starts internally; the Theorem-1 structure
  // (FIFO ties at the max) must be unchanged.
  const std::vector<double> speeds{2.0, 1.0, 0.5};
  const core::Environment env = test_env();
  const auto outcomes = enumerate_order_pairs(speeds, env, 25.0);
  ASSERT_EQ(outcomes.size(), 36u);
  double best = 0.0;
  for (const auto& o : outcomes) best = std::max(best, o.total_work);
  for (const auto& o : outcomes) {
    if (o.orders.is_fifo()) EXPECT_NEAR(o.total_work, best, 1e-9 * best);
  }
}

}  // namespace
}  // namespace hetero::protocol
