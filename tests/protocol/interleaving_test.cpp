#include <gtest/gtest.h>

#include "hetero/numeric/stable.h"
#include "hetero/protocol/fifo.h"
#include "hetero/protocol/lp_solver.h"

namespace hetero::protocol {
namespace {

const core::Environment kEnv = core::Environment::paper_default();

TEST(ChannelMerges, EnumeratesCatalanStyleCounts) {
  EXPECT_EQ(all_channel_merges(1).size(), 2u);   // C(2,1)
  EXPECT_EQ(all_channel_merges(2).size(), 6u);   // C(4,2)
  EXPECT_EQ(all_channel_merges(3).size(), 20u);  // C(6,3)
  for (const auto& merge : all_channel_merges(3)) {
    EXPECT_EQ(merge.size(), 6u);
    EXPECT_EQ(std::count(merge.begin(), merge.end(), true), 3);
  }
}

TEST(ChannelMerges, CausalityFiltersResultsBeforeTheirSends) {
  const auto orders = ProtocolOrders::fifo(2);
  // send0 result0 send1 result1: machine 1's result after its send — causal.
  EXPECT_TRUE(merge_is_causal({true, false, true, false}, orders));
  // result first: machine 0's result before any send — acausal.
  EXPECT_FALSE(merge_is_causal({false, true, true, false}, orders));
  // all sends then all results: always causal.
  EXPECT_TRUE(merge_is_causal({true, true, false, false}, orders));
  // wrong length / wrong counts.
  EXPECT_FALSE(merge_is_causal({true, false}, orders));
  EXPECT_FALSE(merge_is_causal({true, true, true, false}, orders));
  // LIFO: first result is machine 1's; "send0 result(m1) ..." is acausal
  // because machine 1's send has not happened yet.
  const auto lifo = ProtocolOrders::lifo(2);
  EXPECT_FALSE(merge_is_causal({true, false, true, false}, lifo));
}

TEST(InterleavedLp, AllSendsFirstReproducesTheBaselineLp) {
  const std::vector<double> speeds{1.0, 0.5, 0.25};
  const double lifespan = 80.0;
  ChannelMerge non_interleaved(6, false);
  std::fill(non_interleaved.begin(), non_interleaved.begin() + 3, true);
  for (const auto& orders : {ProtocolOrders::fifo(3), ProtocolOrders::lifo(3)}) {
    const auto baseline = solve_protocol_lp(speeds, kEnv, lifespan, orders);
    const auto merged = solve_interleaved_lp(speeds, kEnv, lifespan, orders, non_interleaved);
    ASSERT_EQ(baseline.status, numeric::LpStatus::kOptimal);
    ASSERT_EQ(merged.status, numeric::LpStatus::kOptimal);
    EXPECT_LT(numeric::relative_difference(merged.total_work, baseline.total_work), 1e-9);
  }
}

TEST(InterleavedLp, ScheduleIsFeasible) {
  const std::vector<double> speeds{1.0, 0.4};
  const ChannelMerge merge{true, false, true, false};  // interleaved
  const auto lp = solve_interleaved_lp(speeds, kEnv, 50.0, ProtocolOrders::fifo(2), merge);
  ASSERT_EQ(lp.status, numeric::LpStatus::kOptimal);
  const auto violations = lp.schedule.validate(kEnv, 1e-6);
  EXPECT_TRUE(violations.empty()) << (violations.empty() ? "" : violations.front());
}

TEST(InterleavedLp, RejectsAcausalMergesAndBadInputs) {
  const std::vector<double> speeds{1.0, 0.5};
  EXPECT_THROW((void)solve_interleaved_lp(speeds, kEnv, 10.0, ProtocolOrders::fifo(2),
                                          ChannelMerge{false, true, true, false}),
               std::invalid_argument);
  EXPECT_THROW((void)solve_interleaved_lp(speeds, kEnv, -1.0, ProtocolOrders::fifo(2),
                                          ChannelMerge{true, true, false, false}),
               std::invalid_argument);
}

TEST(InterleavingAblation, InterleavingNeverBeatsFifoOnSmallClusters) {
  for (const auto& speeds :
       {std::vector<double>{1.0, 0.5}, std::vector<double>{1.0, 0.45, 0.2},
        std::vector<double>{0.7, 0.7, 0.7}}) {
    const auto report = interleaving_ablation(speeds, kEnv, 40.0);
    EXPECT_GT(report.programs_solved, 0u);
    EXPECT_FALSE(report.interleaving_helps) << speeds.size();
    // The interleaved sweep includes the non-interleaved merges, so its best
    // must at least match FIFO.
    EXPECT_GE(report.interleaved_best,
              report.non_interleaved_best * (1.0 - 1e-9));
  }
  EXPECT_THROW((void)interleaving_ablation(std::vector<double>(4, 1.0), kEnv, 10.0),
               std::invalid_argument);
}

TEST(FifoFeasibility, DetectsTheSufficientlyLongLifespanBoundary) {
  // Table-1 parameters: communication is negligible, gap-free FIFO exists.
  EXPECT_TRUE(fifo_gap_free_feasible(std::vector<double>{1.0, 0.45, 0.2}, kEnv));
  // Heavy communication: the gap-free FIFO of Theorem 2 collides on the
  // channel (Theorem 1's "sufficiently long lifespan" premise fails — and
  // since the schedule scales with L, it fails at *every* L).
  const core::Environment heavy{
      core::Environment::Params{.tau = 0.3, .pi = 0.1, .delta = 1.0}};
  EXPECT_FALSE(fifo_gap_free_feasible(std::vector<double>{1.0, 0.45, 0.2}, heavy));
  // And in that regime the closed form strictly over-reports the
  // channel-feasible optimum.
  const auto report = interleaving_ablation(std::vector<double>{1.0, 0.45, 0.2}, heavy, 40.0);
  EXPECT_FALSE(report.fifo_gap_free);
  EXPECT_LT(report.non_interleaved_best, report.fifo_closed_form);
  // Consistency everywhere: the interleaved sweep includes all
  // non-interleaved merges, so its best matches the feasible best.
  EXPECT_NEAR(report.interleaved_best, report.non_interleaved_best,
              1e-9 * report.non_interleaved_best);
}

TEST(InterleavingAblation, HoldsUnderHeavyCommunicationToo) {
  // Where interleaving would plausibly help — expensive communication —
  // it still does not (the channel time is conserved either way).
  const core::Environment heavy{
      core::Environment::Params{.tau = 0.3, .pi = 0.1, .delta = 1.0}};
  const auto report = interleaving_ablation(std::vector<double>{1.0, 0.5}, heavy, 30.0);
  EXPECT_FALSE(report.interleaving_helps);
}

}  // namespace
}  // namespace hetero::protocol
