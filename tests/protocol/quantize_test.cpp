#include "hetero/protocol/quantize.h"

#include <gtest/gtest.h>

#include "hetero/core/hetero.h"
#include "hetero/protocol/fifo.h"
#include "hetero/sim/worksharing.h"

namespace hetero::protocol {
namespace {

const core::Environment kEnv = core::Environment::paper_default();

TEST(Quantize, FloorsToWholeTasks) {
  const std::vector<double> allocations{10.7, 3.2, 0.9};
  const auto q = quantize_allocations(allocations, 1.0);
  EXPECT_EQ(q.tasks, (std::vector<long long>{10, 3, 0}));
  EXPECT_DOUBLE_EQ(q.work[0], 10.0);
  EXPECT_DOUBLE_EQ(q.work[2], 0.0);
  EXPECT_NEAR(q.lost, 0.7 + 0.2 + 0.9, 1e-12);
}

TEST(Quantize, ExactMultiplesLoseNothing) {
  const std::vector<double> allocations{4.0, 2.0, 6.0};
  const auto q = quantize_allocations(allocations, 2.0);
  EXPECT_NEAR(q.lost, 0.0, 1e-12);
  EXPECT_EQ(q.tasks, (std::vector<long long>{2, 1, 3}));
}

TEST(Quantize, Validation) {
  const std::vector<double> allocations{1.0};
  EXPECT_THROW((void)quantize_allocations(allocations, 0.0), std::invalid_argument);
  EXPECT_THROW((void)quantize_allocations(allocations, -1.0), std::invalid_argument);
  const std::vector<double> negative{-1.0};
  EXPECT_THROW((void)quantize_allocations(negative, 1.0), std::invalid_argument);
}

TEST(Quantize, LossFractionBoundedByTheoreticalBound) {
  // Each machine loses < one task, so the fraction is < n*task/W.
  const std::vector<double> speeds{1.0, 0.5, 0.25, 0.125};
  const double lifespan = 5000.0;
  const auto allocations = fifo_allocations(speeds, kEnv, lifespan);
  double total = 0.0;
  for (double w : allocations) total += w;
  for (double task_size : {0.1, 1.0, 10.0}) {
    const double loss = quantization_loss_fraction(allocations, task_size);
    EXPECT_GE(loss, 0.0);
    EXPECT_LT(loss, static_cast<double>(speeds.size()) * task_size / total) << task_size;
  }
}

TEST(Quantize, LossShrinksWithFinerTasks) {
  // Table 2's coarse-vs-finer contrast: finer tasks waste less.
  const std::vector<double> speeds{1.0, 0.6, 0.3};
  const auto allocations = fifo_allocations(speeds, kEnv, 1000.0);
  const double coarse = quantization_loss_fraction(allocations, 10.0);
  const double fine = quantization_loss_fraction(allocations, 1.0);
  const double finest = quantization_loss_fraction(allocations, 0.1);
  EXPECT_GT(coarse, fine);
  EXPECT_GT(fine, finest);
}

TEST(Quantize, QuantizedEpisodeStillSimulatesCleanly) {
  // Quantized allocations fit inside the original schedule: every phase only
  // shrinks, so the episode completes before the lifespan and the channel
  // invariant holds.
  const std::vector<double> speeds{1.0, 0.5, 0.25};
  const double lifespan = 500.0;
  const auto continuous = fifo_allocations(speeds, kEnv, lifespan);
  const auto q = quantize_allocations(continuous, 1.0);
  const auto result = sim::simulate_worksharing(speeds, kEnv, q.work,
                                                ProtocolOrders::fifo(speeds.size()));
  EXPECT_LE(result.makespan, lifespan);
  EXPECT_TRUE(result.trace.channel_exclusive());
  double quantized_total = 0.0;
  for (double w : q.work) quantized_total += w;
  EXPECT_NEAR(result.completed_work(lifespan), quantized_total, 1e-9 * lifespan);
}

}  // namespace
}  // namespace hetero::protocol
