#include "hetero/protocol/coded.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "hetero/protocol/fifo.h"

namespace hetero::protocol {
namespace {

const core::Environment kEnv = core::Environment::paper_default();
const std::vector<double> kSpeeds{1.0, 0.5, 0.25, 0.125, 0.0625, 0.03125};
constexpr double kDeadline = 3600.0;

double easy_target() { return 0.5 * fifo_total_work(kSpeeds, kEnv, kDeadline); }

TEST(CodedSizing, ReplicatedAllocationIsValidAndCoversTarget) {
  const CodedSizing sizing = size_replicated(kSpeeds, kEnv, kDeadline, easy_target());
  std::string why;
  ASSERT_TRUE(sizing.allocation.valid(kSpeeds.size(), &why)) << why;
  EXPECT_EQ(sizing.allocation.kind, ProtocolKind::kReplicated);
  EXPECT_GE(sizing.replication, 1u);
  EXPECT_EQ(sizing.allocation.recovery_threshold, sizing.allocation.num_shards);
  // Replication: distinct shard sizes sum to the target.
  double covered = 0.0;
  for (std::size_t s = 0; s < sizing.allocation.num_shards; ++s) {
    covered += sizing.allocation.decoded_size(s);
  }
  EXPECT_NEAR(covered, easy_target(), 1e-6 * easy_target());
  // Redundancy overhead is what was issued beyond the target.
  EXPECT_GE(sizing.allocation.issued_work(), covered - 1e-9);
  if (sizing.feasible) {
    EXPECT_LE(sizing.planned_makespan, kDeadline * (1.0 + 1e-9));
  }
}

TEST(CodedSizing, ReplicatedPrefersMoreRedundancyWhenDeadlineAllows) {
  // A tiny target leaves room for heavy replication; the sizing step picks
  // the largest feasible r (every extra copy is one more fault survived).
  const CodedSizing roomy =
      size_replicated(kSpeeds, kEnv, kDeadline, 0.05 * fifo_total_work(kSpeeds, kEnv, kDeadline));
  EXPECT_TRUE(roomy.feasible);
  EXPECT_GE(roomy.replication, 2u);
  // Every shard really carries r copies.
  std::vector<std::size_t> copies_per_shard(roomy.allocation.num_shards, 0);
  for (const ShardCopy& copy : roomy.allocation.copies) {
    ++copies_per_shard[copy.shard];
  }
  for (std::size_t count : copies_per_shard) EXPECT_GE(count, roomy.replication);
}

TEST(CodedSizing, ReplicationCapIsHonored) {
  const CodedSizing capped = size_replicated(
      kSpeeds, kEnv, kDeadline, 0.05 * fifo_total_work(kSpeeds, kEnv, kDeadline), 2);
  EXPECT_LE(capped.replication, 2u);
  std::string why;
  EXPECT_TRUE(capped.allocation.valid(kSpeeds.size(), &why)) << why;
}

TEST(CodedSizing, MdsWorstCaseRecoverySetCoversTarget) {
  const double target = easy_target();
  const CodedSizing sizing = size_mds(kSpeeds, kEnv, kDeadline, target);
  std::string why;
  ASSERT_TRUE(sizing.allocation.valid(kSpeeds.size(), &why)) << why;
  EXPECT_EQ(sizing.allocation.kind, ProtocolKind::kMds);
  EXPECT_EQ(sizing.shards_total, kSpeeds.size());
  ASSERT_GE(sizing.shards_needed, 1u);
  ASSERT_LE(sizing.shards_needed, sizing.shards_total);
  // The *smallest* k shards — the worst-case recovery set — cover the target.
  std::vector<double> sizes;
  for (std::size_t s = 0; s < sizing.allocation.num_shards; ++s) {
    sizes.push_back(sizing.allocation.decoded_size(s));
  }
  std::sort(sizes.begin(), sizes.end());
  double worst_case = 0.0;
  for (std::size_t i = 0; i < sizing.shards_needed; ++i) worst_case += sizes[i];
  EXPECT_GE(worst_case, target * (1.0 - 1e-6));
  // And k is minimal: one fewer shard cannot.
  if (sizing.shards_needed > 1) {
    EXPECT_LT(worst_case - sizes[sizing.shards_needed - 1], target * (1.0 - 1e-12));
  }
}

TEST(CodedSizing, SizingIsBitwiseDeterministic) {
  const double target = easy_target();
  const CodedSizing r1 = size_replicated(kSpeeds, kEnv, kDeadline, target);
  const CodedSizing r2 = size_replicated(kSpeeds, kEnv, kDeadline, target);
  EXPECT_EQ(r1.replication, r2.replication);
  EXPECT_EQ(r1.planned_makespan, r2.planned_makespan);  // bitwise
  ASSERT_EQ(r1.allocation.copies.size(), r2.allocation.copies.size());
  for (std::size_t i = 0; i < r1.allocation.copies.size(); ++i) {
    EXPECT_EQ(r1.allocation.copies[i].shard, r2.allocation.copies[i].shard);
    EXPECT_EQ(r1.allocation.copies[i].machine, r2.allocation.copies[i].machine);
    EXPECT_EQ(r1.allocation.copies[i].work, r2.allocation.copies[i].work);  // bitwise
  }
  const CodedSizing m1 = size_mds(kSpeeds, kEnv, kDeadline, target);
  const CodedSizing m2 = size_mds(kSpeeds, kEnv, kDeadline, target);
  EXPECT_EQ(m1.shards_needed, m2.shards_needed);
  ASSERT_EQ(m1.allocation.copies.size(), m2.allocation.copies.size());
  for (std::size_t i = 0; i < m1.allocation.copies.size(); ++i) {
    EXPECT_EQ(m1.allocation.copies[i].work, m2.allocation.copies[i].work);  // bitwise
  }
}

TEST(CodedSizing, SizingReportsItsLpActivity) {
  // An ambitious target forces the replicated search to walk many r
  // candidates; consecutive candidates with the same group count re-solve
  // the same LP dimensions, which is exactly when the resolver warm-starts.
  const CodedSizing sizing = size_replicated(
      kSpeeds, kEnv, kDeadline, 0.95 * fifo_total_work(kSpeeds, kEnv, kDeadline));
  EXPECT_GE(sizing.lp_solves, 2u);
  EXPECT_LE(sizing.lp_warm_starts, sizing.lp_solves);
  const CodedSizing mds = size_mds(kSpeeds, kEnv, kDeadline, easy_target());
  EXPECT_GE(mds.lp_solves, 1u);
}

TEST(CodedAllocation, ValidRejectsBrokenInvariants) {
  CodedSizing sizing = size_replicated(kSpeeds, kEnv, kDeadline, easy_target());
  ASSERT_TRUE(sizing.allocation.valid(kSpeeds.size()));
  std::string why;

  CodedAllocation broken = sizing.allocation;
  broken.recovery_threshold = 0;
  EXPECT_FALSE(broken.valid(kSpeeds.size(), &why));
  EXPECT_FALSE(why.empty());

  broken = sizing.allocation;
  broken.recovery_threshold = broken.num_shards + 1;
  EXPECT_FALSE(broken.valid(kSpeeds.size()));

  // Two copies on the same machine.
  broken = sizing.allocation;
  ASSERT_GE(broken.copies.size(), 2u);
  broken.copies[1].machine = broken.copies[0].machine;
  EXPECT_FALSE(broken.valid(kSpeeds.size()));

  // Copies of one shard must be the same size.
  broken = sizing.allocation;
  for (ShardCopy& copy : broken.copies) {
    if (copy.shard == broken.copies[0].shard && &copy != &broken.copies[0]) {
      copy.work *= 1.5;
      break;
    }
  }
  EXPECT_FALSE(broken.valid(kSpeeds.size()));

  // Machine index out of the fleet.
  broken = sizing.allocation;
  broken.copies[0].machine = kSpeeds.size();
  EXPECT_FALSE(broken.valid(kSpeeds.size()));

  // Replication must cover the target exactly.
  broken = sizing.allocation;
  broken.work_target *= 2.0;
  EXPECT_FALSE(broken.valid(kSpeeds.size()));
}

TEST(CodedSizing, ThrowsOnDegenerateInputs) {
  EXPECT_THROW((void)size_replicated(std::vector<double>{}, kEnv, kDeadline, 10.0),
               std::invalid_argument);
  EXPECT_THROW((void)size_replicated(kSpeeds, kEnv, 0.0, 10.0), std::invalid_argument);
  EXPECT_THROW((void)size_replicated(kSpeeds, kEnv, kDeadline, 0.0), std::invalid_argument);
  EXPECT_THROW((void)size_mds(kSpeeds, kEnv, kDeadline, -1.0), std::invalid_argument);
  EXPECT_THROW((void)size_mds(std::vector<double>{1.0, 0.0}, kEnv, kDeadline, 10.0),
               std::invalid_argument);
}

TEST(CodedProtocol, KindNamesAreStable) {
  // The sweep CSV serializes these names; they are a format contract.
  EXPECT_STREQ(to_string(ProtocolKind::kFifo), "fifo");
  EXPECT_STREQ(to_string(ProtocolKind::kReactiveFifo), "reactive_fifo");
  EXPECT_STREQ(to_string(ProtocolKind::kReplicated), "replicated");
  EXPECT_STREQ(to_string(ProtocolKind::kMds), "mds");
}

}  // namespace
}  // namespace hetero::protocol
