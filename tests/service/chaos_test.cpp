// The deterministic chaos proxy: fault plans are a pure function of
// (seed, connection index); torn relays exercise every parser split point
// against a live server without corrupting answers; lethal plans (resets,
// mid-response kills) fail requests cleanly — bounded, never hung — and the
// server's decision log is reproducible across identical request sequences.

#include "hetero/service/chaos.h"

#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "hetero/core/environment.h"
#include "hetero/core/power.h"
#include "hetero/service/client.h"
#include "hetero/service/json.h"
#include "hetero/service/planner.h"
#include "hetero/service/server.h"

namespace hetero::service {
namespace {

const core::Environment kEnv = core::Environment::paper_default();

/// Planner + Server + ChaosProxy stack on loopback ephemeral ports.
class ChaosStack {
 public:
  explicit ChaosStack(int force_kind) {
    ServerConfig server_config;
    server_config.port = 0;
    server_config.threads = 2;
    server_config.poll_interval_ms = 10;
    server_config.read_timeout_ms = 2000;
    server_.emplace(planner_, server_config);
    server_->listen();
    serve_thread_ = std::thread{[this] { server_->serve(); }};

    ChaosConfig chaos_config;
    chaos_config.seed = 42;
    chaos_config.upstream_port = server_->port();
    chaos_config.force_kind = force_kind;
    chaos_config.stall_ms = 30;  // well below the server read timeout
    proxy_.emplace(chaos_config);
    proxy_->start();
  }

  ~ChaosStack() {
    proxy_->stop();
    server_->request_stop();
    if (serve_thread_.joinable()) serve_thread_.join();
  }

  [[nodiscard]] std::uint16_t port() const { return proxy_->port(); }
  [[nodiscard]] Planner& planner() { return planner_; }
  [[nodiscard]] ChaosProxy& proxy() { return *proxy_; }

 private:
  Planner planner_;
  std::optional<Server> server_;
  std::optional<ChaosProxy> proxy_;
  std::thread serve_thread_;
};

TEST(ChaosPlanFor, IsDeterministicAndCoversEveryKind) {
  std::set<ChaosKind> seen;
  for (std::uint64_t conn = 0; conn < 64; ++conn) {
    const ChaosPlan a = ChaosProxy::plan_for(7, conn);
    const ChaosPlan b = ChaosProxy::plan_for(7, conn);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.trigger_offset, b.trigger_offset);
    EXPECT_LT(a.trigger_offset, 64u);
    seen.insert(a.kind);
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kChaosKindCount));

  // Different seeds produce different plan sequences (some index differs).
  bool any_difference = false;
  for (std::uint64_t conn = 0; conn < 16 && !any_difference; ++conn) {
    any_difference = ChaosProxy::plan_for(1, conn).kind != ChaosProxy::plan_for(2, conn).kind;
  }
  EXPECT_TRUE(any_difference);
}

TEST(ChaosProxyLive, TornRelayPreservesAnswersAtEveryByteSplit) {
  // Every byte of request and response travels in its own segment: the
  // server parser and the client response reader see every possible split
  // point, and the answer must still be bit-identical to the library.
  ChaosStack stack{static_cast<int>(ChaosKind::kTornEveryByte)};
  const std::vector<double> speeds{8.0, 4.0, 2.0, 1.0};
  for (int i = 0; i < 3; ++i) {
    HttpClient client{"127.0.0.1", stack.port(), /*io_timeout_ms=*/5000};
    const ClientResponse response = client.post("/v1/x", R"({"profile": [8, 4, 2, 1]})");
    ASSERT_EQ(response.status, 200);
    EXPECT_EQ(Json::parse(response.body).at("x").number(),
              core::x_measure_serial(speeds, kEnv));
  }
  EXPECT_EQ(stack.proxy().stats().by_kind[static_cast<int>(ChaosKind::kTornEveryByte)], 3u);
}

TEST(ChaosProxyLive, StallBelowReadTimeoutStillAnswers) {
  ChaosStack stack{static_cast<int>(ChaosKind::kStallRequest)};
  HttpClient client{"127.0.0.1", stack.port(), /*io_timeout_ms=*/5000};
  const ClientResponse response = client.post("/v1/x", R"({"profile": [2, 1]})");
  EXPECT_EQ(response.status, 200);
}

TEST(ChaosProxyLive, ResetRequestFailsCleanlyWithoutHanging) {
  // The proxy kills the connection inside the request head; the client must
  // observe a clean transport failure (bounded by its io timeout), and the
  // server must log nothing (the request never completed).
  ChaosStack stack{static_cast<int>(ChaosKind::kResetRequest)};
  HttpClient client{"127.0.0.1", stack.port(), /*io_timeout_ms=*/3000};
  EXPECT_THROW((void)client.post("/v1/x", R"({"profile": [2, 1]})"), std::runtime_error);
  EXPECT_TRUE(stack.planner().overload().decision_log().snapshot().empty());
}

TEST(ChaosProxyLive, KillResponseFailsCleanlyWithoutHanging) {
  ChaosStack stack{static_cast<int>(ChaosKind::kKillResponse)};
  HttpClient client{"127.0.0.1", stack.port(), /*io_timeout_ms=*/3000};
  // The request reaches the server (and may be fully processed); the torn
  // response must surface as an exception, never a wrong answer.
  EXPECT_THROW((void)client.post("/v1/x", R"({"profile": [2, 1]})"), std::runtime_error);
}

TEST(ChaosProxyLive, SeededDecisionSequenceReplaysByteIdentical) {
  // Two identical serial request sequences against two fresh stacks produce
  // byte-identical decision logs — the soak's determinism contract in
  // miniature (deadline sheds + tiny-budget degrades are the decisions).
  auto run_sequence = [](ChaosStack& stack) {
    for (int i = 0; i < 6; ++i) {
      HttpClient client{"127.0.0.1", stack.port(), /*io_timeout_ms=*/5000};
      try {
        if (i % 2 == 0) {
          (void)client.request("POST", "/v1/x", R"({"profile": [4, 2]})", "application/json",
                               {{"X-Hetero-Deadline-Ms", "0"}});
        } else {
          (void)client.request("POST", "/v1/allocate",
                               R"({"profile": [9, 5, 3], "lifespan": 50, "exact": true})",
                               "application/json", {{"X-Hetero-Deadline-Ms", "1"}});
        }
      } catch (const std::exception&) {
        // Chaos may kill a request; with force_kind clean it should not.
      }
    }
    return stack.planner().overload().decision_log().dump();
  };

  ChaosStack first{static_cast<int>(ChaosKind::kClean)};
  ChaosStack second{static_cast<int>(ChaosKind::kClean)};
  const std::string log_first = run_sequence(first);
  const std::string log_second = run_sequence(second);
  EXPECT_FALSE(log_first.empty());
  EXPECT_EQ(log_first, log_second);
}

}  // namespace
}  // namespace hetero::service
