// Plan-key canonicalization and fingerprinting: permutations of a profile
// MUST collide (X is permutation-invariant, Theorem 1), while scaled
// profiles, different environments, different endpoints, and different
// scalar parameters MUST NOT.

#include "hetero/service/fingerprint.h"

#include <gtest/gtest.h>

#include <vector>

#include "hetero/core/environment.h"

namespace hetero::service {
namespace {

const core::Environment kEnv = core::Environment::paper_default();

PlanKey key_of(std::vector<double> speeds, QueryKind kind = QueryKind::kX,
               double param0 = 0.0, double param1 = 0.0, std::uint32_t flags = 0,
               const core::Environment& env = kEnv) {
  return make_plan_key(kind, speeds, env, param0, param1, flags);
}

TEST(Fingerprint, PermutedProfilesCollideExactly) {
  const PlanKey sorted = key_of({8.0, 4.0, 2.0, 1.0});
  const std::vector<std::vector<double>> permutations = {
      {1.0, 2.0, 4.0, 8.0}, {4.0, 8.0, 1.0, 2.0}, {2.0, 1.0, 8.0, 4.0}};
  for (const auto& permuted : permutations) {
    const PlanKey key = key_of(permuted);
    EXPECT_TRUE(key == sorted);
    EXPECT_EQ(fingerprint(key), fingerprint(sorted));
  }
}

TEST(Fingerprint, ScaledProfilesDoNotCollide) {
  // X is not scale-invariant, so {1,2,4} and {2,4,8} are different plans.
  const PlanKey base = key_of({1.0, 2.0, 4.0});
  const PlanKey scaled = key_of({2.0, 4.0, 8.0});
  EXPECT_FALSE(base == scaled);
  EXPECT_NE(fingerprint(base), fingerprint(scaled));
}

TEST(Fingerprint, DistinctSizesDoNotCollide) {
  EXPECT_NE(fingerprint(key_of({1.0, 2.0})), fingerprint(key_of({1.0, 2.0, 2.0})));
}

TEST(Fingerprint, EndpointKindSeparatesPlans) {
  const std::vector<double> speeds{1.0, 2.0};
  EXPECT_NE(fingerprint(key_of(speeds, QueryKind::kX)),
            fingerprint(key_of(speeds, QueryKind::kHecr)));
  EXPECT_NE(fingerprint(key_of(speeds, QueryKind::kMakespan, 100.0)),
            fingerprint(key_of(speeds, QueryKind::kAllocate, 100.0)));
}

TEST(Fingerprint, ScalarsAndFlagsSeparatePlans) {
  const std::vector<double> speeds{1.0, 2.0};
  EXPECT_NE(fingerprint(key_of(speeds, QueryKind::kAllocate, 100.0)),
            fingerprint(key_of(speeds, QueryKind::kAllocate, 200.0)));
  EXPECT_NE(fingerprint(key_of(speeds, QueryKind::kAllocate, 100.0, 0.0, 0)),
            fingerprint(key_of(speeds, QueryKind::kAllocate, 100.0, 0.0, 1)));
  EXPECT_NE(fingerprint(key_of(speeds, QueryKind::kUpgrade, 0.5, 0.0)),
            fingerprint(key_of(speeds, QueryKind::kUpgrade, 0.5, 3.0)));
}

TEST(Fingerprint, EnvironmentSeparatesPlans) {
  core::Environment::Params params;
  params.tau = 2e-6;  // different from the paper default
  const core::Environment other{params};
  const std::vector<double> speeds{1.0, 2.0};
  EXPECT_NE(fingerprint(key_of(speeds)),
            fingerprint(key_of(speeds, QueryKind::kX, 0.0, 0.0, 0, other)));
}

TEST(Fingerprint, StableAcrossCalls) {
  // The fingerprint is a pure function of the key (fixed seed): the same
  // key always maps to the same 64-bit value, which is what lets tests and
  // the loadtest reason about cross-process cache behaviour.
  const PlanKey key = key_of({3.0, 1.0, 2.0}, QueryKind::kAllocate, 50.0, 0.0, 1);
  const std::uint64_t first = fingerprint(key);
  EXPECT_EQ(fingerprint(key), first);
  EXPECT_EQ(fingerprint(key_of({1.0, 2.0, 3.0}, QueryKind::kAllocate, 50.0, 0.0, 1)), first);
}

TEST(CanonicalSpeeds, SortsNonincreasing) {
  const std::vector<double> canonical = canonical_speeds(std::vector<double>{1.0, 4.0, 2.0});
  EXPECT_EQ(canonical, (std::vector<double>{4.0, 2.0, 1.0}));
}

}  // namespace
}  // namespace hetero::service
