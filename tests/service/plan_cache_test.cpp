// The sharded LRU plan cache: hit/miss accounting, byte-stable bodies,
// per-shard LRU eviction, fingerprint-collision safety, and concurrent
// hammering under TSan.

#include "hetero/service/plan_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "hetero/core/environment.h"

namespace hetero::service {
namespace {

const core::Environment kEnv = core::Environment::paper_default();

PlanKey key_of(double rho, QueryKind kind = QueryKind::kX) {
  return make_plan_key(kind, std::vector<double>{rho}, kEnv, 0.0, 0.0, 0);
}

TEST(PlanCache, MissThenHitReturnsTheExactBytes) {
  PlanCache cache{16, 1};
  const PlanKey key = key_of(1.0);
  const std::uint64_t fp = fingerprint(key);
  EXPECT_EQ(cache.find(key, fp), nullptr);
  cache.insert(key, fp, R"({"x":1.5})");
  const auto hit = cache.find(key, fp);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, R"({"x":1.5})");
  const PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(PlanCache, LruEvictionPrefersStaleEntries) {
  PlanCache cache{4, 1};  // one shard, four slots
  std::vector<PlanKey> keys;
  for (int i = 0; i < 5; ++i) keys.push_back(key_of(1.0 + i));
  for (int i = 0; i < 4; ++i) cache.insert(keys[static_cast<std::size_t>(i)],
                                           fingerprint(keys[static_cast<std::size_t>(i)]),
                                           "v" + std::to_string(i));
  // Touch key 0 so key 1 becomes the LRU tail.
  EXPECT_NE(cache.find(keys[0], fingerprint(keys[0])), nullptr);
  cache.insert(keys[4], fingerprint(keys[4]), "v4");  // evicts key 1
  EXPECT_NE(cache.find(keys[0], fingerprint(keys[0])), nullptr);
  EXPECT_EQ(cache.find(keys[1], fingerprint(keys[1])), nullptr);
  EXPECT_NE(cache.find(keys[4], fingerprint(keys[4])), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 4u);
}

TEST(PlanCache, FingerprintCollisionIsAMissNotAWrongAnswer) {
  PlanCache cache{16, 1};
  const PlanKey stored = key_of(1.0);
  const PlanKey other = key_of(2.0);  // different key...
  const std::uint64_t fp = fingerprint(stored);
  cache.insert(stored, fp, "stored-body");
  // ...probed under the stored key's fingerprint (simulated 64-bit
  // collision): the full-key compare must reject it.
  EXPECT_EQ(cache.find(other, fp), nullptr);
  // And inserting the collider replaces rather than duplicating.
  cache.insert(other, fp, "other-body");
  const auto hit = cache.find(other, fp);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "other-body");
  EXPECT_EQ(cache.find(stored, fp), nullptr);  // loser recomputes
  EXPECT_EQ(cache.stats().replacements, 1u);
}

TEST(PlanCache, ReinsertRefreshesInPlace) {
  PlanCache cache{16, 1};
  const PlanKey key = key_of(1.0);
  const std::uint64_t fp = fingerprint(key);
  cache.insert(key, fp, "first");
  cache.insert(key, fp, "second");
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(*cache.find(key, fp), "second");
}

TEST(PlanCache, ClearDropsEntriesButKeepsCounters) {
  PlanCache cache{16, 4};
  const PlanKey key = key_of(1.0);
  const std::uint64_t fp = fingerprint(key);
  cache.insert(key, fp, "body");
  EXPECT_NE(cache.find(key, fp), nullptr);
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.find(key, fp), nullptr);
  EXPECT_EQ(cache.stats().hits, 1u);  // preserved
}

TEST(PlanCache, ShardCountRoundsToPowerOfTwo) {
  PlanCache cache{64, 3};
  EXPECT_EQ(cache.shard_count(), 4u);
  EXPECT_EQ(cache.capacity_per_shard(), 16u);
  PlanCache tiny{2, 16};  // capacity below shard count: one slot per shard
  EXPECT_EQ(tiny.capacity_per_shard(), 1u);
}

TEST(PlanCache, HitBodySurvivesEviction) {
  // shared_ptr semantics: a body handed to a reader stays valid even when
  // the entry is evicted underneath it.
  PlanCache cache{1, 1};
  const PlanKey first = key_of(1.0);
  cache.insert(first, fingerprint(first), "held-body");
  const auto held = cache.find(first, fingerprint(first));
  ASSERT_NE(held, nullptr);
  const PlanKey second = key_of(2.0);
  cache.insert(second, fingerprint(second), "evictor");
  EXPECT_EQ(cache.find(first, fingerprint(first)), nullptr);
  EXPECT_EQ(*held, "held-body");
}

TEST(PlanCache, ConcurrentMixedLoadIsSafe) {
  PlanCache cache{64, 4};
  constexpr int kThreads = 4;
  constexpr int kOps = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOps; ++i) {
        const PlanKey key = key_of(1.0 + (t * kOps + i) % 97);
        const std::uint64_t fp = fingerprint(key);
        if (cache.find(key, fp) == nullptr) {
          cache.insert(key, fp, std::to_string(i));
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, static_cast<std::uint64_t>(kThreads) * kOps);
  EXPECT_LE(stats.entries, 64u);
}

}  // namespace
}  // namespace hetero::service
