// The overload-control and graceful-degradation contract:
//
//   - OverloadController unit behavior: cost classes, watermark admission
//     with RAII release, deadline sheds, the EWMA-with-floor LP cost model,
//     and the timestamp-free decision log.
//   - Planner deadline semantics: X-Hetero-Deadline-Ms threading, expired
//     deadlines shedding 503 + Retry-After, tiny budgets degrading exact
//     /v1/allocate to the closed form (marked, never cached), and malformed
//     headers answering 400.
//   - The acceptance bar: with every worker pinned by saturating clients
//     (4x the connection budget), GET /healthz keeps answering in bounded
//     time — p99 under 50ms — because overload is answered with immediate
//     503 + Retry-After sheds, never a queue.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "hetero/core/cancel.h"
#include "hetero/service/client.h"
#include "hetero/service/json.h"
#include "hetero/service/overload.h"
#include "hetero/service/planner.h"
#include "hetero/service/server.h"

namespace hetero::service {
namespace {

using namespace std::chrono_literals;

HttpRequest post(std::string target, std::string body) {
  HttpRequest request;
  request.method = "POST";
  request.target = std::move(target);
  request.version = "HTTP/1.1";
  request.body = std::move(body);
  return request;
}

HttpRequest post_with_deadline(std::string target, std::string body, std::string deadline_ms) {
  HttpRequest request = post(std::move(target), std::move(body));
  request.headers.emplace_back("X-Hetero-Deadline-Ms", std::move(deadline_ms));
  return request;
}

std::string_view response_header(const HttpResponse& response, std::string_view name) {
  for (const auto& [key, value] : response.headers) {
    if (key == name) return value;
  }
  return {};
}

// ---------------------------------------------------------------------------
// OverloadController units

TEST(OverloadController, ClassifiesEndpointsByCost) {
  EXPECT_EQ(OverloadController::classify("GET", "/healthz"), CostClass::kCheap);
  EXPECT_EQ(OverloadController::classify("GET", "/metrics"), CostClass::kCheap);
  EXPECT_EQ(OverloadController::classify("HEAD", "/version"), CostClass::kCheap);
  // POST to a cheap target is not cheap: only the read-only probes are.
  EXPECT_EQ(OverloadController::classify("POST", "/healthz"), CostClass::kNormal);
  EXPECT_EQ(OverloadController::classify("POST", "/v1/x"), CostClass::kNormal);
  EXPECT_EQ(OverloadController::classify("POST", "/v1/makespan"), CostClass::kNormal);
  EXPECT_EQ(OverloadController::classify("POST", "/v1/allocate"), CostClass::kHeavy);
  EXPECT_EQ(OverloadController::classify("POST", "/v1/upgrade"), CostClass::kHeavy);
}

TEST(OverloadController, WatermarksShedAndTicketsRelease) {
  OverloadConfig config;
  config.max_inflight = 2;
  config.max_inflight_heavy = 1;
  OverloadController controller{config};

  auto first = controller.admit(CostClass::kHeavy, "/v1/allocate", false);
  EXPECT_TRUE(first.admitted());
  auto second = controller.admit(CostClass::kHeavy, "/v1/allocate", false);
  EXPECT_FALSE(second.admitted());
  EXPECT_STREQ(second.shed_reason(), "heavy");

  // A normal request still fits (total watermark is 2, one slot held).
  auto third = controller.admit(CostClass::kNormal, "/v1/x", false);
  EXPECT_TRUE(third.admitted());
  auto fourth = controller.admit(CostClass::kNormal, "/v1/x", false);
  EXPECT_FALSE(fourth.admitted());
  EXPECT_STREQ(fourth.shed_reason(), "queue");

  // Cheap requests are never shed, even saturated.
  auto cheap = controller.admit(CostClass::kCheap, "/healthz", false);
  EXPECT_TRUE(cheap.admitted());

  // Destroying tickets frees the slots.
  { auto moved = std::move(first); }
  auto fifth = controller.admit(CostClass::kHeavy, "/v1/allocate", false);
  EXPECT_TRUE(fifth.admitted());

  const OverloadController::Stats stats = controller.stats();
  EXPECT_EQ(stats.shed_heavy, 1u);
  EXPECT_EQ(stats.shed_queue, 1u);
  EXPECT_EQ(stats.admitted, 3u);
}

TEST(OverloadController, ExpiredDeadlineShedsBeforeAnyWork) {
  OverloadController controller{};
  auto ticket = controller.admit(CostClass::kNormal, "/v1/x", /*deadline_expired=*/true);
  EXPECT_FALSE(ticket.admitted());
  EXPECT_STREQ(ticket.shed_reason(), "deadline");
  EXPECT_EQ(controller.stats().shed_deadline, 1u);
  EXPECT_EQ(controller.stats().inflight, 0u);
}

TEST(OverloadController, LpCostModelFloorsTheEwma) {
  OverloadConfig config;
  config.lp_cost_floor_us = 2000;
  OverloadController controller{config};

  // No observations yet: the floor rules.
  EXPECT_EQ(controller.lp_cost_estimate_us(), 2000);
  EXPECT_FALSE(controller.lp_budget_allows(1ms));
  EXPECT_TRUE(controller.lp_budget_allows(3ms));

  // Cheap observed solves cannot pull the estimate below the floor...
  for (int i = 0; i < 16; ++i) controller.observe_lp_cost(100us);
  EXPECT_EQ(controller.lp_cost_estimate_us(), 2000);
  EXPECT_FALSE(controller.lp_budget_allows(1ms));

  // ...but expensive ones raise it above.
  for (int i = 0; i < 16; ++i) controller.observe_lp_cost(10ms);
  EXPECT_GT(controller.lp_cost_estimate_us(), 2000);
  EXPECT_FALSE(controller.lp_budget_allows(3ms));
}

TEST(DecisionLog, LinesAreSequencedAndTimestampFree) {
  OverloadController controller{};
  auto shed = controller.admit(CostClass::kNormal, "/v1/x", /*deadline_expired=*/true);
  controller.record_degrade("/v1/allocate", "lp-budget");

  const std::vector<std::string> lines = controller.decision_log().snapshot();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "0 shed /v1/x class=normal reason=deadline inflight=0 heavy=0");
  EXPECT_EQ(lines[1], "1 degrade /v1/allocate class=heavy reason=lp-budget inflight=0 heavy=0");

  // The identical decision sequence on a fresh controller reproduces the
  // dump byte for byte — the chaos-replay determinism contract.
  OverloadController replay{};
  auto shed2 = replay.admit(CostClass::kNormal, "/v1/x", /*deadline_expired=*/true);
  replay.record_degrade("/v1/allocate", "lp-budget");
  EXPECT_EQ(controller.decision_log().dump(), replay.decision_log().dump());
}

TEST(DecisionLog, BoundedWithDropAccounting) {
  DecisionLog log{2};
  log.append("a");
  log.append("b");
  log.append("c");
  EXPECT_EQ(log.dropped(), 1u);
  const std::string dump = log.dump();
  EXPECT_EQ(dump, "1 b\n2 c\ndropped 1\n");
}

// ---------------------------------------------------------------------------
// Planner deadline semantics

TEST(PlannerDeadline, ExpiredDeadlineSheds503WithRetryAfter) {
  Planner planner;
  const HttpResponse response =
      planner.handle(post_with_deadline("/v1/x", R"({"profile": [4, 2, 1]})", "0"));
  EXPECT_EQ(response.status, 503);
  EXPECT_EQ(response_header(response, "Retry-After"), "1");
  EXPECT_EQ(planner.overload().stats().shed_deadline, 1u);
}

TEST(PlannerDeadline, MalformedDeadlineAnswers400) {
  Planner planner;
  EXPECT_EQ(planner.handle(post_with_deadline("/v1/x", R"({"profile": [1]})", "soon")).status,
            400);
  EXPECT_EQ(planner.handle(post_with_deadline("/v1/x", R"({"profile": [1]})", "-5")).status,
            400);
  EXPECT_EQ(planner.handle(post_with_deadline("/v1/x", R"({"profile": [1]})", "10x")).status,
            400);
}

TEST(PlannerDeadline, TinyBudgetDegradesExactAllocateAndNeverCachesIt) {
  Planner planner;
  const std::string query = R"({"profile": [9, 5, 3], "lifespan": 50, "exact": true})";

  // Budget (1ms) below the LP floor (2ms default): closed form, marked.
  const HttpResponse degraded = planner.handle(post_with_deadline("/v1/allocate", query, "1"));
  ASSERT_EQ(degraded.status, 200);
  EXPECT_EQ(response_header(degraded, "X-Hetero-Degraded"), "lp-budget");
  const Json degraded_body = Json::parse(degraded.body);
  EXPECT_TRUE(degraded_body.at("degraded").boolean());
  EXPECT_EQ(degraded_body.at("degraded_reason").string(), "lp-budget");
  EXPECT_FALSE(degraded_body.contains("lp"));  // the exact section was skipped
  EXPECT_EQ(planner.overload().stats().degraded, 1u);

  // Degraded bodies are not cached: the next budgeted request computes the
  // full answer (a miss, then cached), and repeats hit.
  const HttpResponse full = planner.handle(post("/v1/allocate", query));
  ASSERT_EQ(full.status, 200);
  EXPECT_EQ(response_header(full, "X-Hetero-Cache"), "miss");
  EXPECT_TRUE(Json::parse(full.body).contains("lp"));
  const HttpResponse repeat = planner.handle(post("/v1/allocate", query));
  EXPECT_EQ(response_header(repeat, "X-Hetero-Cache"), "hit");

  // Once the full answer is cached, even a tiny-deadline request serves it
  // (stale-while-revalidate: the cache probe runs before the budget check).
  const HttpResponse cached = planner.handle(post_with_deadline("/v1/allocate", query, "1"));
  ASSERT_EQ(cached.status, 200);
  EXPECT_EQ(response_header(cached, "X-Hetero-Cache"), "hit");
  EXPECT_TRUE(response_header(cached, "X-Hetero-Degraded").empty());
}

TEST(PlannerDeadline, TinyBudgetDegradesMultiRoundUpgradePlan) {
  Planner planner;
  const std::string query = R"({"profile": [4, 2, 1], "amount": 0.5, "rounds": 3})";
  const HttpResponse degraded = planner.handle(post_with_deadline("/v1/upgrade", query, "1"));
  ASSERT_EQ(degraded.status, 200);
  EXPECT_EQ(response_header(degraded, "X-Hetero-Degraded"), "plan-budget");
  EXPECT_TRUE(Json::parse(degraded.body).at("degraded").boolean());

  const HttpResponse full = planner.handle(post("/v1/upgrade", query));
  ASSERT_EQ(full.status, 200);
  EXPECT_TRUE(response_header(full, "X-Hetero-Degraded").empty());
}

TEST(PlannerDeadline, GenerousDeadlineAnswersFullFidelity) {
  Planner planner;
  const HttpResponse response = planner.handle(post_with_deadline(
      "/v1/allocate", R"({"profile": [4, 2], "lifespan": 10, "exact": true})", "60000"));
  ASSERT_EQ(response.status, 200);
  EXPECT_TRUE(response_header(response, "X-Hetero-Degraded").empty());
  EXPECT_TRUE(Json::parse(response.body).contains("lp"));
}

TEST(PlannerAdmission, WatermarkShedsCarryRetryAfter) {
  PlannerConfig config;
  config.overload.max_inflight = 1;  // the request itself fills the queue...
  Planner planner{config};
  // ...but a serial request holds its ticket only while computing, so a
  // normal request still passes.
  EXPECT_EQ(planner.handle(post("/v1/x", R"({"profile": [1]})")).status, 200);

  // Saturate from another thread by holding a ticket directly.
  auto held = planner.overload().admit(CostClass::kNormal, "/v1/x", false);
  ASSERT_TRUE(held.admitted());
  const HttpResponse shed = planner.handle(post("/v1/x", R"({"profile": [1]})"));
  EXPECT_EQ(shed.status, 503);
  EXPECT_EQ(response_header(shed, "Retry-After"), "1");
  // Cheap probes still answer while saturated.
  HttpRequest health;
  health.method = "GET";
  health.target = "/healthz";
  health.version = "HTTP/1.1";
  EXPECT_EQ(planner.handle(health).status, 200);
}

// ---------------------------------------------------------------------------
// Acceptance: /healthz stays answerable under 4x connection saturation.

TEST(OverloadLive, HealthzAnswersFastUnderConnectionSaturation) {
  Planner planner;
  ServerConfig config;
  config.port = 0;
  config.threads = 2;
  config.max_connections = 2;  // == workers: every accepted connection gets one
  config.poll_interval_ms = 10;
  Server server{planner, config};
  server.listen();
  std::thread serve_thread{[&server] { server.serve(); }};

  // Saturation: 4x the connection budget, keep-alive clients that hold
  // their connection (and its worker) for the whole test.
  std::atomic<bool> stop{false};
  std::vector<std::thread> hogs;
  for (int i = 0; i < 8; ++i) {
    hogs.emplace_back([&server, &stop] {
      while (!stop.load(std::memory_order_acquire)) {
        try {
          HttpClient client{"127.0.0.1", server.port(), /*io_timeout_ms=*/2000};
          while (!stop.load(std::memory_order_acquire)) {
            const ClientResponse response =
                client.post("/v1/x", R"({"profile": [8, 4, 2, 1]})");
            if (response.status != 200) break;  // shed: back off to reconnect
          }
        } catch (const std::exception&) {
          // Shed (connection closed after 503) — reconnect and try again.
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));  // let them pin the workers

  // Probe /healthz on fresh connections.  Every probe must be *answered* —
  // 200 through a free slot or an immediate 503 shed — inside the bound.
  std::vector<double> latencies_ms;
  std::uint64_t answered_200 = 0;
  std::uint64_t answered_503 = 0;
  for (int i = 0; i < 50; ++i) {
    const auto begin = std::chrono::steady_clock::now();
    try {
      HttpClient probe{"127.0.0.1", server.port(), /*io_timeout_ms=*/2000};
      const ClientResponse response = probe.get("/healthz");
      if (response.status == 200) ++answered_200;
      if (response.status == 503) {
        ++answered_503;
        EXPECT_FALSE(response.header("Retry-After").empty());
      }
    } catch (const std::exception&) {
      // A torn shed write still counts as an answer attempt; time it anyway.
    }
    latencies_ms.push_back(std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - begin)
                               .count());
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  stop.store(true, std::memory_order_release);
  for (std::thread& hog : hogs) hog.join();
  server.request_stop();
  serve_thread.join();

  ASSERT_EQ(latencies_ms.size(), 50u);
  std::sort(latencies_ms.begin(), latencies_ms.end());
  const double p99 = latencies_ms[static_cast<std::size_t>(49)];
  EXPECT_LT(p99, 50.0) << "healthz p99 under saturation";
  // The cap actually fired: connections beyond the budget were shed 503.
  EXPECT_GT(server.shed_connections(), 0u);
  EXPECT_GT(answered_200 + answered_503, 0u);
}

}  // namespace
}  // namespace hetero::service
