// The incremental HTTP/1.1 request parser: torn reads at every split point,
// pipelining, Content-Length framing (including 0-byte bodies), the limit
// errors (413/431), malformed-request 400s, and keep-alive semantics.

#include "hetero/service/http.h"

#include <gtest/gtest.h>

#include <string>

namespace hetero::service {
namespace {

constexpr const char* kSimplePost =
    "POST /v1/x HTTP/1.1\r\n"
    "Host: localhost\r\n"
    "Content-Type: application/json\r\n"
    "Content-Length: 18\r\n"
    "\r\n"
    R"({"profile": [1.0]})";

TEST(RequestParser, ParsesACompleteRequest) {
  RequestParser parser;
  parser.feed(kSimplePost);
  HttpRequest request;
  ASSERT_EQ(parser.poll(request), RequestParser::Status::kReady);
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.target, "/v1/x");
  EXPECT_EQ(request.version, "HTTP/1.1");
  EXPECT_EQ(request.body, R"({"profile": [1.0]})");
  EXPECT_EQ(request.header("content-type"), "application/json");  // case-insensitive
  EXPECT_EQ(request.header("HOST"), "localhost");
  EXPECT_EQ(request.header("absent"), "");
  EXPECT_TRUE(request.keep_alive());
  EXPECT_FALSE(parser.mid_request());
  // Nothing further buffered.
  EXPECT_EQ(parser.poll(request), RequestParser::Status::kNeedMore);
}

TEST(RequestParser, EverySplitPointYieldsTheSameRequest) {
  // Torn reads: the request split at every byte boundary — including inside
  // the request line, mid-header-name, inside "\r\n\r\n", and mid-body —
  // must produce an identical parse.
  const std::string wire = kSimplePost;
  for (std::size_t split = 0; split <= wire.size(); ++split) {
    RequestParser parser;
    HttpRequest request;
    parser.feed(std::string_view{wire}.substr(0, split));
    const RequestParser::Status first = parser.poll(request);
    if (split < wire.size()) {
      ASSERT_EQ(first, RequestParser::Status::kNeedMore) << "split at " << split;
      EXPECT_EQ(parser.mid_request(), split > 0) << "split at " << split;
      parser.feed(std::string_view{wire}.substr(split));
      ASSERT_EQ(parser.poll(request), RequestParser::Status::kReady) << "split at " << split;
    } else {
      ASSERT_EQ(first, RequestParser::Status::kReady);
    }
    EXPECT_EQ(request.target, "/v1/x");
    EXPECT_EQ(request.body, R"({"profile": [1.0]})");
  }
}

TEST(RequestParser, PipelinedRequestsDrainInOrder) {
  const std::string get =
      "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
  RequestParser parser;
  parser.feed(get + kSimplePost + get);
  HttpRequest request;
  ASSERT_EQ(parser.poll(request), RequestParser::Status::kReady);
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.body, "");
  ASSERT_EQ(parser.poll(request), RequestParser::Status::kReady);
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.body, R"({"profile": [1.0]})");
  ASSERT_EQ(parser.poll(request), RequestParser::Status::kReady);
  EXPECT_EQ(request.target, "/healthz");
  EXPECT_EQ(parser.poll(request), RequestParser::Status::kNeedMore);
}

TEST(RequestParser, ZeroByteBody) {
  RequestParser parser;
  parser.feed("POST /v1/x HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
  HttpRequest request;
  ASSERT_EQ(parser.poll(request), RequestParser::Status::kReady);
  EXPECT_EQ(request.body, "");
}

TEST(RequestParser, MissingContentLengthMeansNoBody) {
  RequestParser parser;
  parser.feed("GET /metrics HTTP/1.1\r\n\r\n");
  HttpRequest request;
  ASSERT_EQ(parser.poll(request), RequestParser::Status::kReady);
  EXPECT_EQ(request.body, "");
}

TEST(RequestParser, TornContentLengthWaitsForTheFullBody) {
  RequestParser parser;
  parser.feed("POST /v1/x HTTP/1.1\r\nContent-Length: 10\r\n\r\n12345");
  HttpRequest request;
  // Header complete, body torn: must wait, not deliver a truncated body.
  EXPECT_EQ(parser.poll(request), RequestParser::Status::kNeedMore);
  EXPECT_TRUE(parser.mid_request());
  parser.feed("67890");
  ASSERT_EQ(parser.poll(request), RequestParser::Status::kReady);
  EXPECT_EQ(request.body, "1234567890");
}

TEST(RequestParser, MalformedContentLengthIs400) {
  for (const char* bad : {"Content-Length: ten\r\n", "Content-Length: -5\r\n",
                          "Content-Length: 1e3\r\n", "Content-Length:\r\n"}) {
    RequestParser parser;
    parser.feed(std::string{"POST /v1/x HTTP/1.1\r\n"} + bad + "\r\n");
    HttpRequest request;
    ASSERT_EQ(parser.poll(request), RequestParser::Status::kError) << bad;
    EXPECT_EQ(parser.error_status(), 400) << bad;
  }
}

TEST(RequestParser, OversizedBodyIs413) {
  RequestParser::Limits limits;
  limits.max_body_bytes = 16;
  RequestParser parser{limits};
  parser.feed("POST /v1/x HTTP/1.1\r\nContent-Length: 17\r\n\r\n");
  HttpRequest request;
  ASSERT_EQ(parser.poll(request), RequestParser::Status::kError);
  EXPECT_EQ(parser.error_status(), 413);
  // The error latches: further polls keep reporting it.
  EXPECT_EQ(parser.poll(request), RequestParser::Status::kError);
}

TEST(RequestParser, OversizedHeadersAre431) {
  RequestParser::Limits limits;
  limits.max_header_bytes = 64;
  RequestParser parser{limits};
  parser.feed("GET /healthz HTTP/1.1\r\nX-Padding: " + std::string(100, 'a'));
  HttpRequest request;
  ASSERT_EQ(parser.poll(request), RequestParser::Status::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(RequestParser, MalformedRequestLineIs400) {
  for (const char* bad :
       {"GARBAGE\r\n\r\n", "GET\r\n\r\n", "GET /x\r\n\r\n", "GET /x HTTP/2.0\r\n\r\n",
        "GET /x SPDY/1\r\n\r\n", " GET /x HTTP/1.1\r\n\r\n"}) {
    RequestParser parser;
    parser.feed(bad);
    HttpRequest request;
    ASSERT_EQ(parser.poll(request), RequestParser::Status::kError) << bad;
    EXPECT_EQ(parser.error_status(), 400) << bad;
  }
}

TEST(RequestParser, MalformedHeaderLineIs400) {
  for (const char* bad : {"NoColonHere\r\n", "Bad Header : x\r\n"}) {
    RequestParser parser;
    parser.feed(std::string{"GET /x HTTP/1.1\r\n"} + bad + "\r\n");
    HttpRequest request;
    ASSERT_EQ(parser.poll(request), RequestParser::Status::kError) << bad;
    EXPECT_EQ(parser.error_status(), 400) << bad;
  }
}

TEST(RequestParser, ChunkedTransferIs501) {
  RequestParser parser;
  parser.feed("POST /v1/x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
  HttpRequest request;
  ASSERT_EQ(parser.poll(request), RequestParser::Status::kError);
  EXPECT_EQ(parser.error_status(), 501);
}

TEST(HttpRequest, KeepAliveSemantics) {
  const auto parse_one = [](const std::string& wire) {
    RequestParser parser;
    parser.feed(wire);
    HttpRequest request;
    EXPECT_EQ(parser.poll(request), RequestParser::Status::kReady);
    return request;
  };
  // HTTP/1.1: keep-alive unless closed.
  EXPECT_TRUE(parse_one("GET / HTTP/1.1\r\n\r\n").keep_alive());
  EXPECT_FALSE(parse_one("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").keep_alive());
  EXPECT_FALSE(parse_one("GET / HTTP/1.1\r\nConnection: Close\r\n\r\n").keep_alive());
  // HTTP/1.0: close unless kept alive.
  EXPECT_FALSE(parse_one("GET / HTTP/1.0\r\n\r\n").keep_alive());
  EXPECT_TRUE(parse_one("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").keep_alive());
  // Connection is a comma-separated list.
  EXPECT_FALSE(parse_one("GET / HTTP/1.1\r\nConnection: foo, close\r\n\r\n").keep_alive());
}

TEST(HttpResponse, SerializeFramesTheBody) {
  HttpResponse response = HttpResponse::json(200, R"({"x":1})");
  const std::string wire = response.serialize(/*keep_alive=*/true);
  EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Type: application/json\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 7\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: keep-alive\r\n"), std::string::npos);
  EXPECT_EQ(wire.substr(wire.size() - 7), R"({"x":1})");

  response.headers.emplace_back("X-Hetero-Cache", "hit");
  const std::string closed = response.serialize(/*keep_alive=*/false);
  EXPECT_NE(closed.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(closed.find("X-Hetero-Cache: hit\r\n"), std::string::npos);
}

TEST(HttpResponse, ErrorBodiesAreJson) {
  const HttpResponse response = HttpResponse::error(404, "unknown route /nope");
  EXPECT_EQ(response.status, 404);
  EXPECT_EQ(response.content_type, "application/json");
  EXPECT_NE(response.body.find("unknown route"), std::string::npos);
  EXPECT_NE(response.serialize(false).find("HTTP/1.1 404 Not Found\r\n"), std::string::npos);
}

TEST(HttpResponse, ParseLimitErrorsForceConnectionClose) {
  // Parse-limit failures poison the stream: their responses must carry
  // Connection: close even when the caller asks for keep-alive.
  for (const int status : {408, 413, 431, 501}) {
    const HttpResponse response = HttpResponse::error(status, "limit");
    EXPECT_TRUE(response.close) << "status " << status;
    EXPECT_NE(response.serialize(/*keep_alive=*/true).find("Connection: close\r\n"),
              std::string::npos)
        << "status " << status;
  }
  // Plain 400s are shared with body validation (a clean parser state), so
  // error() leaves close to the caller; the server sets it on parser 400s.
  const HttpResponse bad_request = HttpResponse::error(400, "bad member");
  EXPECT_FALSE(bad_request.close);
  EXPECT_NE(bad_request.serialize(/*keep_alive=*/true).find("Connection: keep-alive\r\n"),
            std::string::npos);
}

TEST(HttpResponse, CloseFlagOverridesKeepAlive) {
  HttpResponse response = HttpResponse::json(503, R"({"error":"overloaded"})");
  response.close = true;
  EXPECT_NE(response.serialize(/*keep_alive=*/true).find("Connection: close\r\n"),
            std::string::npos);
}

TEST(HttpResponse, TooManyRequestsHasAReasonPhrase) {
  EXPECT_NE(HttpResponse::error(429, "slow down").serialize(false).find(
                "HTTP/1.1 429 Too Many Requests\r\n"),
            std::string::npos);
}

}  // namespace
}  // namespace hetero::service
