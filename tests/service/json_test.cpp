// The service JSON layer: strict parsing with byte offsets, deterministic
// serialization (the plan cache's byte-stability rests on it), and the
// number grammar.

#include "hetero/service/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>

namespace hetero::service {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").boolean(), true);
  EXPECT_EQ(Json::parse("false").boolean(), false);
  EXPECT_DOUBLE_EQ(Json::parse("42").number(), 42.0);
  EXPECT_DOUBLE_EQ(Json::parse("-0.5").number(), -0.5);
  EXPECT_DOUBLE_EQ(Json::parse("1e3").number(), 1000.0);
  EXPECT_DOUBLE_EQ(Json::parse("2.5E-2").number(), 0.025);
  EXPECT_EQ(Json::parse("\"hi\"").string(), "hi");
}

TEST(JsonParse, Structures) {
  const Json value = Json::parse(R"({"a": [1, 2, 3], "b": {"c": "x"}, "d": null})");
  ASSERT_TRUE(value.is_object());
  EXPECT_EQ(value.at("a").items().size(), 3u);
  EXPECT_DOUBLE_EQ(value.at("a").items()[1].number(), 2.0);
  EXPECT_EQ(value.at("b").at("c").string(), "x");
  EXPECT_TRUE(value.at("d").is_null());
  EXPECT_TRUE(value.contains("a"));
  EXPECT_FALSE(value.contains("zz"));
  EXPECT_EQ(value.find("zz"), nullptr);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(Json::parse(R"("a\nb\t\"\\/")").string(), "a\nb\t\"\\/");
  EXPECT_EQ(Json::parse(R"("\u0041")").string(), "A");
  EXPECT_EQ(Json::parse(R"("\u00e9")").string(), "\xc3\xa9");          // é
  EXPECT_EQ(Json::parse(R"("\u4e16")").string(), "\xe4\xb8\x96");      // 世
  EXPECT_EQ(Json::parse(R"("\ud83d\ude00")").string(),                 // 😀 (surrogate pair)
            "\xf0\x9f\x98\x80");
}

TEST(JsonParse, RejectsMalformedInput) {
  const char* bad[] = {
      "",            // empty
      "{",           // unterminated object
      "[1, 2",       // unterminated array
      "[1, 2,]",     // trailing comma
      "{\"a\" 1}",   // missing colon
      "{'a': 1}",    // single quotes
      "{a: 1}",      // unquoted key
      "01",          // leading zero
      "1.",          // bare decimal point
      ".5",          // leading decimal point
      "+1",          // explicit plus
      "1e",          // dangling exponent
      "NaN",         // non-finite
      "Infinity",    // non-finite
      "\"\\x41\"",   // bad escape
      "\"\\ud83d\"", // lone high surrogate
      "nul",         // truncated literal
      "[1] 2",       // trailing bytes
      "\"ab",        // unterminated string
      "\"a\tb\"",    // raw control char in string
  };
  for (const char* text : bad) {
    EXPECT_THROW(static_cast<void>(Json::parse(text)), JsonError) << "input: " << text;
  }
}

TEST(JsonParse, ErrorsCarryByteOffsets) {
  try {
    static_cast<void>(Json::parse(R"({"a": 1, "b": })"));
    FAIL() << "expected JsonError";
  } catch (const JsonError& error) {
    EXPECT_EQ(error.offset(), 14u);
    EXPECT_NE(std::string{error.what()}.find("byte 14"), std::string::npos);
  }
}

TEST(JsonParse, DepthLimitIsEnforced) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  for (int i = 0; i < 100; ++i) deep += ']';
  EXPECT_THROW(static_cast<void>(Json::parse(deep)), JsonError);
  // 32 levels is comfortably inside the limit.
  std::string ok;
  for (int i = 0; i < 32; ++i) ok += '[';
  for (int i = 0; i < 32; ++i) ok += ']';
  EXPECT_NO_THROW(static_cast<void>(Json::parse(ok)));
}

TEST(JsonDump, DeterministicKeyOrderAndRoundTrip) {
  Json value = Json::object();
  value.set("zebra", Json{1});
  value.set("alpha", Json{2});
  value.set("mid", Json::array());
  // Members serialize in sorted key order regardless of insertion order.
  EXPECT_EQ(value.dump(), R"({"alpha":2,"mid":[],"zebra":1})");
  // Parse → dump → parse is a fixed point.
  const std::string text = value.dump();
  EXPECT_EQ(Json::parse(text).dump(), text);
}

TEST(JsonDump, NumberRendering) {
  EXPECT_EQ(Json::number_to_string(0.0), "0");
  EXPECT_EQ(Json::number_to_string(-0.0), "0");
  EXPECT_EQ(Json::number_to_string(3.0), "3");
  EXPECT_EQ(Json::number_to_string(-17.0), "-17");
  EXPECT_EQ(Json::number_to_string(9007199254740992.0), "9007199254740992");  // 2^53
  EXPECT_EQ(Json::number_to_string(0.5), "0.5");
  // %.17g round-trips every double exactly.  (strtod, not stod: stod throws
  // out_of_range on the subnormal because glibc flags it with ERANGE.)
  const double pi = 3.14159265358979312;
  EXPECT_EQ(std::strtod(Json::number_to_string(pi).c_str(), nullptr), pi);
  const double tiny = 5e-324;
  EXPECT_EQ(std::strtod(Json::number_to_string(tiny).c_str(), nullptr), tiny);
}

TEST(JsonDump, NonFiniteNumbersThrow) {
  EXPECT_THROW(static_cast<void>(Json{std::numeric_limits<double>::infinity()}.dump()),
               std::exception);
  EXPECT_THROW(static_cast<void>(Json{std::nan("")}.dump()), std::exception);
}

TEST(JsonDump, StringEscaping) {
  EXPECT_EQ(Json{"a\"b\\c\nd\te\x01"}.dump(), R"("a\"b\\c\nd\te\u0001")");
  // Escaped output re-parses to the original bytes.
  const std::string original = std::string{"nul\0byte", 8} + "\x1f high \xc3\xa9";
  EXPECT_EQ(Json::parse(Json{original}.dump()).string(), original);
}

TEST(JsonAccessors, TypeMismatchesThrow) {
  const Json value = Json::parse("[1]");
  EXPECT_THROW(static_cast<void>(value.number()), std::runtime_error);
  EXPECT_THROW(static_cast<void>(value.members()), std::runtime_error);
  EXPECT_THROW(static_cast<void>(value.at("k")), std::runtime_error);
  EXPECT_THROW(static_cast<void>(Json{1.0}.items()), std::runtime_error);
}

}  // namespace
}  // namespace hetero::service
