// The Planner's endpoint contract, exercised in-process (no sockets):
// correct answers against the library ground truth, the caching contract
// (hit/miss headers, byte-stable bodies, permutation collapse), and the 4xx
// error surface.

#include "hetero/service/planner.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "hetero/core/batch.h"
#include "hetero/core/environment.h"
#include "hetero/core/power.h"
#include "hetero/core/profile.h"
#include "hetero/core/speedup.h"
#include "hetero/service/json.h"

namespace hetero::service {
namespace {

const core::Environment kEnv = core::Environment::paper_default();

HttpRequest post(std::string target, std::string body) {
  HttpRequest request;
  request.method = "POST";
  request.target = std::move(target);
  request.version = "HTTP/1.1";
  request.body = std::move(body);
  return request;
}

HttpRequest get(std::string target) {
  HttpRequest request;
  request.method = "GET";
  request.target = std::move(target);
  request.version = "HTTP/1.1";
  return request;
}

std::string_view cache_header(const HttpResponse& response) {
  for (const auto& [key, value] : response.headers) {
    if (key == "X-Hetero-Cache") return value;
  }
  return {};
}

TEST(Planner, HealthVersionAndMetrics) {
  Planner planner;
  EXPECT_EQ(planner.handle(get("/healthz")).status, 200);
  EXPECT_EQ(planner.handle(get("/healthz")).body, "ok\n");

  const HttpResponse version = planner.handle(get("/version"));
  EXPECT_EQ(version.status, 200);
  const Json parsed = Json::parse(version.body);
  EXPECT_EQ(parsed.at("api").string(), "v1");
  EXPECT_NE(parsed.at("server").string().find("heterod/"), std::string::npos);

  const HttpResponse metrics = planner.handle(get("/metrics"));
  EXPECT_EQ(metrics.status, 200);
  EXPECT_EQ(metrics.content_type, "text/plain; charset=utf-8");
}

TEST(Planner, XMatchesTheSerialReferenceBitForBit) {
  Planner planner;
  // n < 8: x_measure (vectorized) and x_measure_serial are bit-identical,
  // so the service's incremental-evaluator answer must equal both.
  const std::vector<double> speeds{8.0, 4.0, 2.0, 1.0};
  const HttpResponse response = planner.handle(post("/v1/x", R"({"profile": [8, 4, 2, 1]})"));
  ASSERT_EQ(response.status, 200);
  const double x = Json::parse(response.body).at("x").number();
  EXPECT_EQ(x, core::x_measure_serial(speeds, kEnv));
  EXPECT_EQ(x, core::x_measure(speeds, kEnv));
}

TEST(Planner, RepeatAndPermutedQueriesHitTheCache) {
  Planner planner;
  const HttpResponse cold = planner.handle(post("/v1/x", R"({"profile": [1, 2, 4]})"));
  ASSERT_EQ(cold.status, 200);
  EXPECT_EQ(cache_header(cold), "miss");

  const HttpResponse warm = planner.handle(post("/v1/x", R"({"profile": [1, 2, 4]})"));
  EXPECT_EQ(cache_header(warm), "hit");
  EXPECT_EQ(warm.body, cold.body);  // byte-stable

  // A permutation of the profile is the same plan (Theorem 1).
  const HttpResponse permuted = planner.handle(post("/v1/x", R"({"profile": [4, 1, 2]})"));
  EXPECT_EQ(cache_header(permuted), "hit");
  EXPECT_EQ(permuted.body, cold.body);

  // A scaled profile is NOT the same plan.
  const HttpResponse scaled = planner.handle(post("/v1/x", R"({"profile": [2, 4, 8]})"));
  EXPECT_EQ(cache_header(scaled), "miss");
  EXPECT_NE(scaled.body, cold.body);

  EXPECT_EQ(planner.cache().stats().hits, 2u);
}

TEST(Planner, EnvOverrideChangesTheAnswerAndTheCacheKey) {
  Planner planner;
  const HttpResponse base = planner.handle(post("/v1/x", R"({"profile": [1, 2]})"));
  const HttpResponse other =
      planner.handle(post("/v1/x", R"({"profile": [1, 2], "env": {"tau": 2e-6}})"));
  ASSERT_EQ(other.status, 200);
  EXPECT_EQ(cache_header(other), "miss");
  EXPECT_NE(other.body, base.body);
  core::Environment::Params params;
  params.tau = 2e-6;
  EXPECT_EQ(Json::parse(other.body).at("x").number(),
            core::x_measure_serial(std::vector<double>{2.0, 1.0}, core::Environment{params}));
}

TEST(Planner, BatchProfilesMatchBatchEvaluateAndBypassTheCache) {
  Planner planner;
  const HttpResponse response =
      planner.handle(post("/v1/x", R"({"profiles": [[1, 2, 4], [1, 1], [8, 4, 2, 1]]})"));
  ASSERT_EQ(response.status, 200);
  EXPECT_EQ(cache_header(response), "bypass");
  const Json parsed = Json::parse(response.body);
  const std::vector<std::vector<double>> profiles{{1, 2, 4}, {1, 1}, {8, 4, 2, 1}};
  std::vector<std::span<const double>> views{profiles.begin(), profiles.end()};
  core::BatchRequest measures;
  const auto expected = core::batch_evaluate(views, kEnv, measures);
  ASSERT_EQ(parsed.at("x").items().size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(parsed.at("x").items()[i].number(), expected[i].x) << "profile " << i;
  }
  EXPECT_EQ(planner.cache().stats().insertions, 0u);
}

TEST(Planner, MakespanBothDirections) {
  Planner planner;
  const core::Profile profile{std::vector<double>{1.0, 2.0, 4.0}};
  const HttpResponse forward =
      planner.handle(post("/v1/makespan", R"({"profile": [1, 2, 4], "lifespan": 100})"));
  ASSERT_EQ(forward.status, 200);
  EXPECT_DOUBLE_EQ(Json::parse(forward.body).at("work").number(),
                   core::work_production(100.0, profile, kEnv));

  const HttpResponse inverse =
      planner.handle(post("/v1/makespan", R"({"profile": [1, 2, 4], "work": 50})"));
  ASSERT_EQ(inverse.status, 200);
  EXPECT_DOUBLE_EQ(Json::parse(inverse.body).at("lifespan").number(),
                   core::rental_time(50.0, profile, kEnv));

  // Exactly one of lifespan/work.
  EXPECT_EQ(planner.handle(post("/v1/makespan", R"({"profile": [1, 2]})")).status, 400);
  EXPECT_EQ(planner
                .handle(post("/v1/makespan",
                             R"({"profile": [1, 2], "lifespan": 1, "work": 1})"))
                .status,
            400);
}

TEST(Planner, HecrMatchesTheLibrary) {
  Planner planner;
  const HttpResponse response = planner.handle(post("/v1/hecr", R"({"profile": [1, 2, 4]})"));
  ASSERT_EQ(response.status, 200);
  const double x = core::x_measure_serial(std::vector<double>{4.0, 2.0, 1.0}, kEnv);
  EXPECT_DOUBLE_EQ(Json::parse(response.body).at("hecr").number(),
                   core::hecr_from_x(x, 3, kEnv));
}

TEST(Planner, AllocateMatchesFifoClosedForm) {
  Planner planner;
  const HttpResponse response = planner.handle(
      post("/v1/allocate", R"({"profile": [1, 2, 4], "lifespan": 100})"));
  ASSERT_EQ(response.status, 200);
  const Json parsed = Json::parse(response.body);
  // The service canonicalizes to nonincreasing speed order.
  const std::vector<double> expected =
      core::fifo_allocations_in_order(std::vector<double>{4.0, 2.0, 1.0}, kEnv, 100.0);
  const Json::Array& allocations = parsed.at("allocations").items();
  ASSERT_EQ(allocations.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(allocations[i].number(), expected[i]);
  }
  EXPECT_FALSE(parsed.contains("lp"));
}

TEST(Planner, AllocateExactRunsTheLp) {
  Planner planner;
  const HttpResponse response = planner.handle(
      post("/v1/allocate", R"({"profile": [1, 2, 4], "lifespan": 100, "exact": true})"));
  ASSERT_EQ(response.status, 200);
  const Json parsed = Json::parse(response.body);
  ASSERT_TRUE(parsed.contains("lp"));
  EXPECT_EQ(parsed.at("lp").at("status").string(), "optimal");
  // The LP's optimum agrees with the closed form to LP tolerance.
  EXPECT_NEAR(parsed.at("lp").at("total_work").number(),
              parsed.at("total_work").number(), 1e-6);

  // The exact path is capped to keep LP sizes sane.
  std::string big = R"({"profile": [)";
  for (int i = 0; i < 13; ++i) big += (i ? std::string{", "} : std::string{}) + "1";
  big += R"(], "lifespan": 10, "exact": true})";
  EXPECT_EQ(planner.handle(post("/v1/allocate", big)).status, 400);
}

TEST(Planner, UpgradeMatchesTheLibrary) {
  Planner planner;
  const HttpResponse response = planner.handle(
      post("/v1/upgrade", R"({"profile": [1, 2, 4], "amount": 0.5, "rounds": 2})"));
  ASSERT_EQ(response.status, 200);
  const Json parsed = Json::parse(response.body);
  // The service canonicalizes the profile to nonincreasing order before
  // evaluating, so the reference must use the same ordering.
  const core::Profile profile{std::vector<double>{4.0, 2.0, 1.0}};
  const auto expected = core::evaluate_additive_upgrades(profile, 0.5, kEnv);
  EXPECT_EQ(parsed.at("best_power_index").number(),
            static_cast<double>(expected.best_power_index));
  EXPECT_EQ(parsed.at("best_x").number(), expected.best_x);
  EXPECT_EQ(parsed.at("plan").items().size(), 2u);

  const HttpResponse mult = planner.handle(post(
      "/v1/upgrade", R"({"profile": [1, 2, 4], "amount": 0.5, "kind": "multiplicative"})"));
  ASSERT_EQ(mult.status, 200);
  EXPECT_EQ(Json::parse(mult.body).at("kind").string(), "multiplicative");

  EXPECT_EQ(planner
                .handle(post("/v1/upgrade",
                             R"({"profile": [1, 2], "amount": 0.5, "kind": "sideways"})"))
                .status,
            400);
}

TEST(Planner, ErrorSurface) {
  Planner planner;
  // Malformed JSON → 400 with a parse message.
  const HttpResponse bad_json = planner.handle(post("/v1/x", "{nope"));
  EXPECT_EQ(bad_json.status, 400);
  EXPECT_NE(bad_json.body.find("malformed JSON"), std::string::npos);
  // Wrong shapes → 400.
  EXPECT_EQ(planner.handle(post("/v1/x", "[1, 2]")).status, 400);
  EXPECT_EQ(planner.handle(post("/v1/x", R"({"profile": []})")).status, 400);
  EXPECT_EQ(planner.handle(post("/v1/x", R"({"profile": [0]})")).status, 400);
  EXPECT_EQ(planner.handle(post("/v1/x", R"({"profile": [-1]})")).status, 400);
  EXPECT_EQ(planner.handle(post("/v1/x", R"({"profile": ["fast"]})")).status, 400);
  EXPECT_EQ(planner.handle(post("/v1/x", R"({"profile": 7})")).status, 400);
  EXPECT_EQ(planner.handle(post("/v1/x", "")).status, 400);  // empty body, no profile
  // Invalid env → 400.
  EXPECT_EQ(
      planner.handle(post("/v1/x", R"({"profile": [1], "env": {"delta": 99}})")).status, 400);
  // Unknown route → 404; wrong method → 405.
  EXPECT_EQ(planner.handle(post("/v1/unknown", "{}")).status, 404);
  EXPECT_EQ(planner.handle(get("/v1/x")).status, 405);
  EXPECT_EQ(planner.handle(post("/healthz", "")).status, 405);
  // None of the above may poison the planner for good requests.
  EXPECT_EQ(planner.handle(post("/v1/x", R"({"profile": [1]})")).status, 200);
}

TEST(Planner, MachineLimitIsEnforced) {
  PlannerConfig config;
  config.max_machines = 4;
  Planner planner{config};
  EXPECT_EQ(planner.handle(post("/v1/x", R"({"profile": [1, 1, 1, 1]})")).status, 200);
  EXPECT_EQ(planner.handle(post("/v1/x", R"({"profile": [1, 1, 1, 1, 1]})")).status, 400);
}

}  // namespace
}  // namespace hetero::service
