// The resilient service::Client: jittered-backoff retries, Retry-After
// honored on sheds, degraded answers surfaced as their own disposition, and
// the consecutive-failure circuit breaker (open → cooldown → half-open
// probe → closed).  Driven against a scripted raw-socket stub server so
// every failure mode is exact.

#include "hetero/service/client.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace hetero::service {
namespace {

/// Scripted server: accepts connections serially and answers request k with
/// the k-th scripted wire response (repeating the last one when the script
/// runs out), reading until it sees the end of the request head + body.
class StubServer {
 public:
  explicit StubServer(std::vector<std::string> responses)
      : responses_{std::move(responses)} {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    address.sin_port = 0;
    ::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address), sizeof address);
    ::listen(listen_fd_, 8);
    socklen_t len = sizeof address;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&address), &len);
    port_ = ntohs(address.sin_port);
    thread_ = std::thread{[this] { serve(); }};
  }

  ~StubServer() {
    stop_.store(true);
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    if (thread_.joinable()) thread_.join();
  }

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] int requests_seen() const { return requests_seen_.load(); }
  [[nodiscard]] std::string last_request() {
    const std::lock_guard<std::mutex> lock{mutex_};
    return last_request_;
  }

 private:
  void serve() {
    std::size_t index = 0;
    while (!stop_.load()) {
      const int conn = ::accept(listen_fd_, nullptr, nullptr);
      if (conn < 0) return;
      // One request per connection is all these tests need.
      std::string request;
      char chunk[4096];
      while (request.find("\r\n\r\n") == std::string::npos) {
        const ssize_t got = ::read(conn, chunk, sizeof chunk);
        if (got <= 0) break;
        request.append(chunk, static_cast<std::size_t>(got));
      }
      {
        const std::lock_guard<std::mutex> lock{mutex_};
        last_request_ = request;
      }
      requests_seen_.fetch_add(1);
      const std::string& wire =
          responses_[std::min(index, responses_.size() - 1)];
      ++index;
      (void)::send(conn, wire.data(), wire.size(), MSG_NOSIGNAL);
      ::close(conn);
    }
  }

  std::vector<std::string> responses_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<int> requests_seen_{0};
  std::mutex mutex_;
  std::string last_request_;
};

[[nodiscard]] std::string wire_response(int status, const std::string& reason,
                                        const std::string& extra_headers,
                                        const std::string& body) {
  std::string wire = "HTTP/1.1 " + std::to_string(status) + " " + reason + "\r\n";
  wire += "Content-Type: application/json\r\n";
  wire += extra_headers;
  wire += "Content-Length: " + std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n";
  wire += body;
  return wire;
}

ClientConfig fast_config() {
  ClientConfig config;
  config.backoff.initial = 1.0;  // keep test wall-clock tiny
  config.backoff.max_retries = 3;
  config.io_timeout_ms = 2000;
  return config;
}

TEST(ResilientClient, RetriesShedsAndSucceeds) {
  StubServer stub{{
      wire_response(503, "Service Unavailable", "Retry-After: 0\r\n", R"({"error":"overloaded"})"),
      wire_response(503, "Service Unavailable", "Retry-After: 0\r\n", R"({"error":"overloaded"})"),
      wire_response(200, "OK", "", R"({"x":1})"),
  }};
  Client client{"127.0.0.1", stub.port(), fast_config()};
  const Client::Outcome outcome = client.get("/v1/x");
  EXPECT_EQ(outcome.disposition, Disposition::kOk);
  EXPECT_EQ(outcome.response.status, 200);
  EXPECT_EQ(outcome.attempts, 3u);
  EXPECT_EQ(client.stats().sheds_seen, 2u);
  EXPECT_EQ(client.stats().retries, 2u);
}

TEST(ResilientClient, ExhaustedShedsReportKShed) {
  StubServer stub{{
      wire_response(503, "Service Unavailable", "Retry-After: 0\r\n", R"({"error":"overloaded"})"),
  }};
  ClientConfig config = fast_config();
  config.backoff.max_retries = 2;
  Client client{"127.0.0.1", stub.port(), config};
  const Client::Outcome outcome = client.get("/v1/x");
  EXPECT_EQ(outcome.disposition, Disposition::kShed);
  EXPECT_EQ(outcome.response.status, 503);
  EXPECT_EQ(outcome.attempts, 3u);  // initial + 2 retries
  // Sheds do not trip the breaker: the server is alive and protecting itself.
  EXPECT_FALSE(client.breaker_open());
}

TEST(ResilientClient, DegradedAnswersAreFlagged) {
  StubServer stub{{
      wire_response(200, "OK", "X-Hetero-Degraded: lp-budget\r\n", R"({"degraded":true})"),
  }};
  Client client{"127.0.0.1", stub.port(), fast_config()};
  const Client::Outcome outcome = client.post("/v1/allocate", "{}");
  EXPECT_EQ(outcome.disposition, Disposition::kDegraded);
  EXPECT_EQ(outcome.response.status, 200);
  EXPECT_EQ(client.stats().degraded_seen, 1u);
}

TEST(ResilientClient, DeadlineHeaderRidesEveryRequest) {
  StubServer stub{{wire_response(200, "OK", "", R"({"x":1})")}};
  ClientConfig config = fast_config();
  config.deadline_ms = 250;
  Client client{"127.0.0.1", stub.port(), config};
  const Client::Outcome outcome = client.post("/v1/x", R"({"profile":[1]})");
  EXPECT_EQ(outcome.disposition, Disposition::kOk);
  EXPECT_NE(stub.last_request().find("X-Hetero-Deadline-Ms: 250\r\n"), std::string::npos);
}

TEST(ResilientClient, FourXxIsNotRetried) {
  StubServer stub{{wire_response(400, "Bad Request", "", R"({"error":"bad"})")}};
  Client client{"127.0.0.1", stub.port(), fast_config()};
  const Client::Outcome outcome = client.post("/v1/x", "{}");
  EXPECT_EQ(outcome.disposition, Disposition::kOk);  // answered, caller's bug
  EXPECT_EQ(outcome.response.status, 400);
  EXPECT_EQ(outcome.attempts, 1u);
  EXPECT_EQ(stub.requests_seen(), 1);
}

TEST(ResilientClient, BreakerOpensFastFailsAndRecovers) {
  // A stub that stays alive for the recovery leg of the test.
  StubServer live_server{{wire_response(200, "OK", "", "{}")}};

  ClientConfig config = fast_config();
  config.backoff.max_retries = 0;  // one attempt per call
  config.breaker_threshold = 2;
  config.breaker_cooldown_ms = 50;

  Client client{"127.0.0.1", 1, config};  // port 1: nothing listens, connect refused
  EXPECT_EQ(client.call("GET", "/healthz").disposition, Disposition::kTransport);
  EXPECT_EQ(client.call("GET", "/healthz").disposition, Disposition::kTransport);
  EXPECT_TRUE(client.breaker_open());

  // While open, calls fail instantly without touching the network.
  const auto begin = std::chrono::steady_clock::now();
  const Client::Outcome fast = client.call("GET", "/healthz");
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - begin)
          .count();
  EXPECT_EQ(fast.disposition, Disposition::kCircuitOpen);
  EXPECT_LT(elapsed_ms, 10.0);
  EXPECT_EQ(client.stats().breaker_fastfails, 1u);
  EXPECT_EQ(client.stats().breaker_opens, 1u);

  // After the cooldown the half-open probe goes through; a live server
  // closes the breaker again.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  const Client::Outcome probe_fail = client.call("GET", "/healthz");
  EXPECT_EQ(probe_fail.disposition, Disposition::kTransport);  // still dead
  EXPECT_TRUE(client.breaker_open());

  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  Client alive{"127.0.0.1", live_server.port(), config};
  EXPECT_EQ(alive.call("GET", "/healthz").disposition, Disposition::kOk);
}

}  // namespace
}  // namespace hetero::service
