// Full-stack round trip: a real Server on an ephemeral port, driven over a
// real socket by HttpClient.  Asserts the two load-bearing service
// guarantees end to end: (1) `/v1/x` answers are bit-identical to the
// library evaluators, and (2) a plan-cache hit answers a repeated exact
// query without a new LP solve (witnessed by the `service.lp_solves`
// counter).  Also covers keep-alive reuse and graceful drain.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "hetero/core/environment.h"
#include "hetero/core/power.h"
#include "hetero/obs/metrics.h"
#include "hetero/service/client.h"
#include "hetero/service/json.h"
#include "hetero/service/planner.h"
#include "hetero/service/server.h"

namespace hetero::service {
namespace {

const core::Environment kEnv = core::Environment::paper_default();

/// Planner + Server on 127.0.0.1:<ephemeral>, serving on a background
/// thread; the destructor drains and joins.
class LiveServer {
 public:
  LiveServer() : server_{planner_, config()} {
    server_.listen();
    thread_ = std::thread{[this] { server_.serve(); }};
  }

  ~LiveServer() {
    server_.request_stop();
    if (thread_.joinable()) thread_.join();
  }

  [[nodiscard]] std::uint16_t port() const { return server_.port(); }
  [[nodiscard]] Planner& planner() { return planner_; }
  [[nodiscard]] Server& server() { return server_; }

 private:
  static ServerConfig config() {
    ServerConfig config;
    config.port = 0;           // ephemeral
    config.threads = 2;        // keep the test light
    config.poll_interval_ms = 10;
    return config;
  }

  Planner planner_;
  Server server_;
  std::thread thread_;
};

TEST(ServiceRoundTrip, XMatchesTheLibraryBitForBit) {
  LiveServer live;
  HttpClient client{"127.0.0.1", live.port()};
  // n < 8 keeps the vectorized x_measure and the serial reference
  // bit-identical, so the served value must equal BOTH exactly.
  const std::vector<double> speeds{8.0, 4.0, 2.0, 1.0};
  const ClientResponse response =
      client.post("/v1/x", R"({"profile": [8, 4, 2, 1]})");
  ASSERT_EQ(response.status, 200);
  const double served = Json::parse(response.body).at("x").number();
  EXPECT_EQ(served, core::x_measure(speeds, kEnv));
  EXPECT_EQ(served, core::x_measure_serial(speeds, kEnv));
}

TEST(ServiceRoundTrip, CacheHitAnswersWithoutANewLpSolve) {
  LiveServer live;
  HttpClient client{"127.0.0.1", live.port()};
  const std::string query = R"({"profile": [1, 2, 4], "lifespan": 100, "exact": true})";

  const std::uint64_t solves_before = obs::counter("service.lp_solves").value();
  const ClientResponse cold = client.post("/v1/allocate", query);
  ASSERT_EQ(cold.status, 200);
  EXPECT_EQ(cold.header("X-Hetero-Cache"), "miss");
  const std::uint64_t solves_cold = obs::counter("service.lp_solves").value();
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(solves_cold, solves_before + 1);  // the cold query solved an LP
  }

  // The repeat — and a permutation of it — must be answered from the cache:
  // identical bytes, a "hit" header, and NO new LP solve.
  const ClientResponse warm = client.post("/v1/allocate", query);
  ASSERT_EQ(warm.status, 200);
  EXPECT_EQ(warm.header("X-Hetero-Cache"), "hit");
  EXPECT_EQ(warm.body, cold.body);
  const ClientResponse permuted = client.post(
      "/v1/allocate", R"({"profile": [4, 1, 2], "lifespan": 100, "exact": true})");
  EXPECT_EQ(permuted.header("X-Hetero-Cache"), "hit");
  EXPECT_EQ(permuted.body, cold.body);
  EXPECT_EQ(obs::counter("service.lp_solves").value(), solves_cold);
  EXPECT_GE(live.planner().cache().stats().hits, 2u);
}

TEST(ServiceRoundTrip, KeepAliveReusesOneConnection) {
  LiveServer live;
  HttpClient client{"127.0.0.1", live.port()};
  // Several requests over the one pooled connection; the server must frame
  // each response correctly for the next one to parse.
  for (int i = 0; i < 5; ++i) {
    const ClientResponse response = client.get("/healthz");
    ASSERT_EQ(response.status, 200);
    EXPECT_EQ(response.body, "ok\n");
  }
  const ClientResponse version = client.get("/version");
  ASSERT_EQ(version.status, 200);
  EXPECT_EQ(Json::parse(version.body).at("api").string(), "v1");
}

TEST(ServiceRoundTrip, ErrorsComeBackAsHttpStatuses) {
  LiveServer live;
  HttpClient client{"127.0.0.1", live.port()};
  EXPECT_EQ(client.post("/v1/x", "{nope").status, 400);
  EXPECT_EQ(client.post("/v1/nope", "{}").status, 404);
  EXPECT_EQ(client.get("/v1/x").status, 405);
  // The connection survives the errors.
  EXPECT_EQ(client.post("/v1/x", R"({"profile": [1, 2]})").status, 200);
}

TEST(ServiceRoundTrip, MetricsExportsThePrometheusSurface) {
  LiveServer live;
  HttpClient client{"127.0.0.1", live.port()};
  ASSERT_EQ(client.post("/v1/x", R"({"profile": [3, 1]})").status, 200);
  const ClientResponse metrics = client.get("/metrics");
  ASSERT_EQ(metrics.status, 200);
  if constexpr (obs::kEnabled) {
    EXPECT_NE(metrics.body.find("hetero_service_requests"), std::string::npos);
  }
}

TEST(ServiceRoundTrip, RequestStopDrainsAndServeReturns) {
  Planner planner;
  ServerConfig config;
  config.port = 0;
  config.threads = 2;
  config.poll_interval_ms = 10;
  Server server{planner, config};
  server.listen();
  std::thread serving{[&server] { server.serve(); }};

  {
    HttpClient client{"127.0.0.1", server.port()};
    ASSERT_EQ(client.get("/healthz").status, 200);
  }

  server.request_stop();
  serving.join();  // serve() must return once drained
  EXPECT_TRUE(server.draining());
}

}  // namespace
}  // namespace hetero::service
