#include "hetero/random/samplers.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hetero::random {
namespace {

TEST(UniformRhoValues, RespectsBoundsAndValidates) {
  Xoshiro256StarStar rng{1};
  const auto values = uniform_rho_values(1000, rng, 0.1, 0.9);
  ASSERT_EQ(values.size(), 1000u);
  for (double v : values) {
    ASSERT_GE(v, 0.1);
    ASSERT_LT(v, 0.9);
  }
  EXPECT_THROW(uniform_rho_values(4, rng, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(uniform_rho_values(4, rng, 0.9, 0.1), std::invalid_argument);
}

TEST(MatchMeanByShifting, ShiftsToExactTargetAndPreservesVariance) {
  std::vector<double> values{0.2, 0.4, 0.6};
  const double spread_before = values[2] - values[0];
  const auto shifted = match_mean_by_shifting(values, 0.5, 0.0, 1.0);
  ASSERT_TRUE(shifted.has_value());
  double sum = 0.0;
  for (double v : *shifted) sum += v;
  EXPECT_NEAR(sum / 3.0, 0.5, 1e-14);
  EXPECT_NEAR((*shifted)[2] - (*shifted)[0], spread_before, 1e-14);
}

TEST(MatchMeanByShifting, RejectsOutOfBoundsShifts) {
  EXPECT_FALSE(match_mean_by_shifting({0.1, 0.2}, 0.99, 0.0, 1.0).has_value());
  EXPECT_FALSE(match_mean_by_shifting({0.8, 0.9}, 0.05, 0.0, 1.0).has_value());
}

TEST(EqualMeanPair, MeansMatchToTightTolerance) {
  Xoshiro256StarStar rng{2};
  for (int trial = 0; trial < 50; ++trial) {
    const ProfilePair pair = equal_mean_pair(16, rng);
    EXPECT_NEAR(pair.first.mean(), pair.second.mean(), 1e-9);
    EXPECT_EQ(pair.first.size(), 16u);
    EXPECT_EQ(pair.second.size(), 16u);
    for (double v : pair.second.values()) {
      EXPECT_GT(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(EqualMeanPair, VariancesActuallyVary) {
  Xoshiro256StarStar rng{3};
  int distinct = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const ProfilePair pair = equal_mean_pair(8, rng);
    if (std::fabs(pair.first.variance() - pair.second.variance()) > 1e-6) ++distinct;
  }
  EXPECT_GT(distinct, 25);  // shift-matching leaves variance free
}

TEST(EqualMeanPair, WorksForTwoMachineClusters) {
  Xoshiro256StarStar rng{4};
  const ProfilePair pair = equal_mean_pair(2, rng);
  EXPECT_NEAR(pair.first.mean(), pair.second.mean(), 1e-9);
  EXPECT_THROW(equal_mean_pair(0, rng), std::invalid_argument);
}

TEST(ProfileWithMoments, HitsRequestedMeanAndVariance) {
  Xoshiro256StarStar rng{5};
  const core::Profile p = profile_with_moments(10, 0.5, 0.04, rng);
  EXPECT_NEAR(p.mean(), 0.5, 1e-12);
  EXPECT_NEAR(p.variance(), 0.04, 1e-12);
}

TEST(ProfileWithMoments, OddSizeParksOneMachineAtMean) {
  Xoshiro256StarStar rng{6};
  const core::Profile p = profile_with_moments(5, 0.5, 0.01, rng);
  EXPECT_NEAR(p.mean(), 0.5, 1e-12);
  EXPECT_NEAR(p.variance(), 0.01, 1e-12);
  // One machine must sit exactly at the mean.
  bool found = false;
  for (double v : p.values()) {
    if (v == 0.5) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ProfileWithMoments, JitterPreservesMeanApproximatelyVariance) {
  Xoshiro256StarStar rng{7};
  const core::Profile p = profile_with_moments(64, 0.5, 0.03, rng, /*jitter=*/0.01);
  EXPECT_NEAR(p.mean(), 0.5, 1e-12);  // re-centered exactly
  EXPECT_NEAR(p.variance(), 0.03, 5e-3);
}

TEST(ProfileWithMoments, RejectsInfeasibleMoments) {
  Xoshiro256StarStar rng{8};
  // d = sqrt(0.36) = 0.6 > mean 0.5: machines would go nonpositive.
  EXPECT_THROW(profile_with_moments(4, 0.5, 0.36, rng), std::invalid_argument);
  // Exceeds the hi bound on the slow side.
  EXPECT_THROW(profile_with_moments(4, 0.9, 0.04, rng), std::invalid_argument);
  // One machine cannot have nonzero variance.
  EXPECT_THROW(profile_with_moments(1, 0.5, 0.01, rng), std::invalid_argument);
  EXPECT_NO_THROW(profile_with_moments(1, 0.5, 0.0, rng));
}

TEST(VarianceGapPair, DeliversAtLeastTheRequestedGap) {
  Xoshiro256StarStar rng{9};
  for (double gap : {0.0, 0.05, 0.167}) {
    const ProfilePair pair = variance_gap_pair(16, gap, rng);
    EXPECT_NEAR(pair.first.mean(), pair.second.mean(), 1e-9) << gap;
    EXPECT_GE(pair.first.variance() - pair.second.variance(), gap) << gap;
  }
}

TEST(VarianceGapPair, RejectsInfeasibleGap) {
  Xoshiro256StarStar rng{10};
  // Max achievable variance with rho in (0,1] and mean near 1/2 is ~0.25.
  EXPECT_THROW(variance_gap_pair(8, 0.5, rng), std::invalid_argument);
  EXPECT_THROW(variance_gap_pair(8, -0.1, rng), std::invalid_argument);
}

TEST(Samplers, DeterministicGivenSeed) {
  Xoshiro256StarStar rng_a{42};
  Xoshiro256StarStar rng_b{42};
  const ProfilePair a = equal_mean_pair(8, rng_a);
  const ProfilePair b = equal_mean_pair(8, rng_b);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

}  // namespace
}  // namespace hetero::random
