#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "hetero/random/samplers.h"

namespace hetero::random {
namespace {

TEST(LogUniform, StaysInRangeAndCoversDecades) {
  Xoshiro256StarStar rng{1};
  const auto values = log_uniform_rho_values(20000, rng, 0.01, 1.0);
  std::size_t bottom_decade = 0;  // [0.01, 0.1)
  for (double v : values) {
    ASSERT_GE(v, 0.01);
    ASSERT_LE(v, 1.0);
    if (v < 0.1) ++bottom_decade;
  }
  // Log-uniform: each decade gets ~half the mass (a linear uniform would put
  // < 10% below 0.1).
  EXPECT_NEAR(static_cast<double>(bottom_decade) / 20000.0, 0.5, 0.02);
  EXPECT_THROW(log_uniform_rho_values(4, rng, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(log_uniform_rho_values(4, rng, 0.5, 0.5), std::invalid_argument);
}

TEST(Bimodal, PopulationsLandInTheirRanges) {
  Xoshiro256StarStar rng{2};
  const auto values = bimodal_rho_values(10000, rng, 0.05, 0.1, 0.8, 1.0, 0.25);
  std::size_t fast = 0;
  for (double v : values) {
    const bool in_fast = v >= 0.05 && v < 0.1;
    const bool in_slow = v >= 0.8 && v < 1.0;
    ASSERT_TRUE(in_fast || in_slow) << v;
    if (in_fast) ++fast;
  }
  EXPECT_NEAR(static_cast<double>(fast) / 10000.0, 0.25, 0.02);
}

TEST(Bimodal, ExtremeFractions) {
  Xoshiro256StarStar rng{3};
  for (double v : bimodal_rho_values(100, rng, 0.05, 0.1, 0.8, 1.0, 0.0)) {
    ASSERT_GE(v, 0.8);
  }
  for (double v : bimodal_rho_values(100, rng, 0.05, 0.1, 0.8, 1.0, 1.0)) {
    ASSERT_LT(v, 0.1);
  }
  EXPECT_THROW(bimodal_rho_values(4, rng, 0.0, 0.1, 0.8, 1.0, 0.5), std::invalid_argument);
  EXPECT_THROW(bimodal_rho_values(4, rng, 0.05, 0.1, 0.8, 1.0, 1.5), std::invalid_argument);
}

TEST(ScaleSpread, PreservesMeanAndScalesVariance) {
  const std::vector<double> values{0.3, 0.5, 0.7};
  const auto doubled = scale_spread(values, 2.0, 0.0, 1.5);
  ASSERT_TRUE(doubled.has_value());
  EXPECT_NEAR((*doubled)[0], 0.1, 1e-12);
  EXPECT_NEAR((*doubled)[1], 0.5, 1e-12);
  EXPECT_NEAR((*doubled)[2], 0.9, 1e-12);
  // Shrinking to zero collapses onto the mean.
  const auto collapsed = scale_spread(values, 0.0, 0.0, 1.0);
  ASSERT_TRUE(collapsed.has_value());
  for (double v : *collapsed) EXPECT_DOUBLE_EQ(v, 0.5);
}

TEST(ScaleSpread, RejectsOutOfBoundsResults) {
  const std::vector<double> values{0.1, 0.9};
  EXPECT_FALSE(scale_spread(values, 3.0, 0.0, 1.0).has_value());  // exceeds both bounds
  EXPECT_TRUE(scale_spread(values, 1.1, 0.0, 1.0).has_value());
  EXPECT_THROW((void)scale_spread(values, -1.0, 0.0, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace hetero::random
