#include "hetero/random/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace hetero::random {
namespace {

TEST(Xoshiro, DeterministicForSameSeed) {
  Xoshiro256StarStar a{123};
  Xoshiro256StarStar b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256StarStar a{1};
  Xoshiro256StarStar b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Xoshiro, StreamsAreIndependentAndReproducible) {
  auto s0 = Xoshiro256StarStar::for_stream(9, 0);
  auto s1 = Xoshiro256StarStar::for_stream(9, 1);
  auto s0_again = Xoshiro256StarStar::for_stream(9, 0);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    const auto a = s0();
    if (a == s1()) ++equal;
    EXPECT_EQ(a, s0_again());  // same (seed, stream) replays exactly
  }
  EXPECT_LT(equal, 3);  // different streams look unrelated
}

TEST(Xoshiro, Uniform01StaysInRangeAndLooksUniform) {
  Xoshiro256StarStar rng{7};
  double sum = 0.0;
  double min = 1.0;
  double max = 0.0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
    min = std::min(min, u);
    max = std::max(max, u);
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
  EXPECT_LT(min, 0.001);
  EXPECT_GT(max, 0.999);
}

TEST(Xoshiro, UniformRangeRespectsBounds) {
  Xoshiro256StarStar rng{8};
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform(0.25, 0.75);
    ASSERT_GE(u, 0.25);
    ASSERT_LT(u, 0.75);
  }
}

TEST(Xoshiro, BelowIsUnbiasedAcrossSmallRange) {
  Xoshiro256StarStar rng{10};
  std::vector<int> counts(7, 0);
  constexpr int kN = 70'000;
  for (int i = 0; i < kN; ++i) ++counts[rng.below(7)];
  for (int c : counts) EXPECT_NEAR(c, kN / 7, 500);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro, BelowNeverReturnsOutOfRange) {
  Xoshiro256StarStar rng{11};
  for (std::uint64_t bound : {2ull, 3ull, 16ull, 1000ull, (1ull << 40) + 7}) {
    for (int i = 0; i < 1000; ++i) ASSERT_LT(rng.below(bound), bound);
  }
}

TEST(Xoshiro, LongJumpChangesSequence) {
  Xoshiro256StarStar a{5};
  Xoshiro256StarStar b{5};
  b.long_jump();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Xoshiro, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Xoshiro256StarStar>);
  EXPECT_EQ(Xoshiro256StarStar::min(), 0u);
  EXPECT_EQ(Xoshiro256StarStar::max(), ~std::uint64_t{0});
}

TEST(SplitMix, KnownFirstOutputs) {
  // Reference values from the splitmix64 reference implementation.
  std::uint64_t state = 0;
  const std::uint64_t first = splitmix64(state);
  const std::uint64_t second = splitmix64(state);
  EXPECT_EQ(first, 0xe220a8397b1dcdafull);
  EXPECT_EQ(second, 0x6e789e6aa1b965f4ull);
}

}  // namespace
}  // namespace hetero::random
