#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <numeric>
#include <random>
#include <string>
#include <vector>

#include "hetero/numeric/bigint.h"
#include "hetero/numeric/rational.h"

// Differential tests for the small-value (single-word) fast paths: every
// word-sized operation must agree bit-for-bit with ground truth computed in
// 128-bit integers, and values pushed through the limb representation must
// canonicalize back to the identical inline form.  Inputs deliberately
// straddle the 2^63 / 2^64 boundaries where the representation switches.

namespace hetero::numeric {
namespace {

__extension__ using int128 = __int128;
__extension__ using uint128 = unsigned __int128;

std::string to_string(int128 value) {
  if (value == 0) return "0";
  const bool negative = value < 0;
  uint128 magnitude = negative ? -static_cast<uint128>(value) : static_cast<uint128>(value);
  std::string digits;
  while (magnitude != 0) {
    digits.insert(digits.begin(), static_cast<char>('0' + static_cast<int>(magnitude % 10)));
    magnitude /= 10;
  }
  return negative ? "-" + digits : digits;
}

// Interesting operands: zero, units, and every power-of-two shoulder where
// the inline word overflows or the sign boundary sits.
std::vector<std::int64_t> boundary_values() {
  std::vector<std::int64_t> values{0,
                                   1,
                                   -1,
                                   2,
                                   -2,
                                   (std::int64_t{1} << 31) - 1,
                                   std::int64_t{1} << 31,
                                   (std::int64_t{1} << 32) - 1,
                                   std::int64_t{1} << 32,
                                   (std::int64_t{1} << 62) + 12345,
                                   std::numeric_limits<std::int64_t>::max(),
                                   std::numeric_limits<std::int64_t>::min(),
                                   std::numeric_limits<std::int64_t>::min() + 1};
  return values;
}

TEST(BigIntFastPath, AddSubMulAgreeWith128BitGroundTruth) {
  std::mt19937_64 gen{7};
  std::uniform_int_distribution<std::int64_t> dist(std::numeric_limits<std::int64_t>::min(),
                                                   std::numeric_limits<std::int64_t>::max());
  auto values = boundary_values();
  for (int trial = 0; trial < 200; ++trial) values.push_back(dist(gen));
  for (std::size_t i = 0; i < values.size(); ++i) {
    for (std::size_t step = 1; step <= 7; ++step) {
      const std::int64_t a = values[i];
      const std::int64_t b = values[(i + step) % values.size()];
      const BigInt big_a{a};
      const BigInt big_b{b};
      EXPECT_EQ((big_a + big_b).to_string(),
                to_string(static_cast<int128>(a) + static_cast<int128>(b)))
          << a << " + " << b;
      EXPECT_EQ((big_a - big_b).to_string(),
                to_string(static_cast<int128>(a) - static_cast<int128>(b)))
          << a << " - " << b;
      EXPECT_EQ((big_a * big_b).to_string(),
                to_string(static_cast<int128>(a) * static_cast<int128>(b)))
          << a << " * " << b;
    }
  }
}

TEST(BigIntFastPath, DivModAgreeWithHardwareAndSatisfyIdentity) {
  std::mt19937_64 gen{11};
  std::uniform_int_distribution<std::int64_t> dist(std::numeric_limits<std::int64_t>::min(),
                                                   std::numeric_limits<std::int64_t>::max());
  auto values = boundary_values();
  for (int trial = 0; trial < 200; ++trial) values.push_back(dist(gen));
  for (std::size_t i = 0; i < values.size(); ++i) {
    for (std::size_t step = 1; step <= 5; ++step) {
      const std::int64_t a = values[i];
      const std::int64_t b = values[(i + step) % values.size()];
      if (b == 0) continue;
      const auto result = div_mod(BigInt{a}, BigInt{b});
      // int64 division overflows only for INT64_MIN / -1; ground-truth in 128 bits.
      const int128 q = static_cast<int128>(a) / b;
      const int128 r = static_cast<int128>(a) % b;
      EXPECT_EQ(result.quotient.to_string(), to_string(q)) << a << " / " << b;
      EXPECT_EQ(result.remainder.to_string(), to_string(r)) << a << " % " << b;
      EXPECT_EQ(result.quotient * BigInt{b} + result.remainder, BigInt{a});
    }
  }
}

TEST(BigIntFastPath, WordOverflowPromotesAndStaysCanonical) {
  const BigInt u64_max{std::numeric_limits<std::uint64_t>::max()};
  EXPECT_TRUE(u64_max.is_small());

  const BigInt promoted = u64_max + BigInt{1};  // 2^64: first non-inline value
  EXPECT_FALSE(promoted.is_small());
  EXPECT_EQ(promoted.to_string(), "18446744073709551616");
  EXPECT_EQ(promoted, BigInt::from_string("18446744073709551616"));

  // Subtracting back must demote to the identical inline representation.
  const BigInt demoted = promoted - BigInt{1};
  EXPECT_TRUE(demoted.is_small());
  EXPECT_EQ(demoted, u64_max);

  const BigInt doubled = u64_max + u64_max;
  EXPECT_FALSE(doubled.is_small());
  EXPECT_EQ(doubled, BigInt{std::uint64_t{2}} * u64_max);
  EXPECT_EQ(doubled - u64_max, u64_max);

  // Mixed-sign addition of word operands always fits a word.
  EXPECT_EQ(u64_max + (-u64_max), BigInt{0});
  EXPECT_TRUE((u64_max + BigInt{std::numeric_limits<std::int64_t>::min()}).is_small());
}

TEST(BigIntFastPath, LimbRoundTripCanonicalizesToInlineForm) {
  std::mt19937_64 gen{13};
  for (int trial = 0; trial < 100; ++trial) {
    const std::uint64_t word = gen();
    const BigInt small{word};
    // Push the magnitude through the limb representation and back.
    const BigInt round_tripped = (small << 96) >> 96;
    EXPECT_TRUE(round_tripped.is_small()) << word;
    EXPECT_EQ(round_tripped, small) << word;
    // Equality is structural, so this also proves representation canonicality.
    const BigInt via_division = (small * (BigInt{1} << 64)) / (BigInt{1} << 64);
    EXPECT_EQ(via_division, small) << word;
  }
}

TEST(BigIntFastPath, ShiftsAgreeWithMultiplicationByPowersOfTwo) {
  std::mt19937_64 gen{17};
  const std::vector<std::size_t> shifts{1, 5, 31, 32, 33, 63, 64, 65, 96, 130};
  for (int trial = 0; trial < 50; ++trial) {
    const auto word = static_cast<std::int64_t>(gen() >> 1);
    for (std::size_t bits : shifts) {
      const BigInt value{word};
      const BigInt shifted = value << bits;
      EXPECT_EQ(shifted, value * BigInt::pow(BigInt{2}, bits)) << word << " << " << bits;
      EXPECT_EQ(shifted >> bits, value) << word << " << " << bits;
    }
  }
}

TEST(BigIntFastPath, GcdMatchesStdGcdOnWords) {
  std::mt19937_64 gen{19};
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t a = gen();
    const std::uint64_t b = gen();
    const std::uint64_t expected = std::gcd(a, b);
    EXPECT_EQ(BigInt::gcd(BigInt{a}, BigInt{b}), BigInt{expected}) << a << " " << b;
    EXPECT_EQ(BigInt::gcd(-BigInt{a}, BigInt{b}), BigInt{expected});
    EXPECT_EQ(BigInt::gcd(BigInt{a}, BigInt{0}), BigInt{a});
  }
  // gcd mixing a word against a large operand exercises the Euclid-loop demotion.
  const BigInt large = (BigInt{1} << 100) * BigInt{9} * BigInt{5};
  EXPECT_EQ(BigInt::gcd(large, BigInt{15}), BigInt{15});
}

// ---------------------------------------------------------------------------
// Rational fast paths: every gcd-skipping branch must produce exactly the
// lowest-terms representation that a from-scratch reduction produces
// (operator== is structural, so EXPECT_EQ checks the representation too).

Rational reference(std::int64_t num, std::int64_t den) {
  return Rational{BigInt{num}, BigInt{den}};  // ctor reduces fully
}

TEST(RationalFastPath, ArithmeticMatchesFullyReducedReference) {
  std::mt19937_64 gen{23};
  std::uniform_int_distribution<std::int64_t> dist(-1'000'000, 1'000'000);
  for (int trial = 0; trial < 500; ++trial) {
    const std::int64_t an = dist(gen);
    std::int64_t ad = dist(gen);
    const std::int64_t bn = dist(gen);
    std::int64_t bd = dist(gen);
    if (ad == 0) ad = 1;
    if (bd == 0) bd = 1;
    const Rational a = reference(an, ad);
    const Rational b = reference(bn, bd);

    EXPECT_EQ(a + b, reference(an * bd + bn * ad, ad * bd)) << a << " + " << b;
    EXPECT_EQ(a - b, reference(an * bd - bn * ad, ad * bd)) << a << " - " << b;
    EXPECT_EQ(a * b, reference(an * bn, ad * bd)) << a << " * " << b;
    if (bn != 0) {
      EXPECT_EQ(a / b, reference(an * bd, ad * bn)) << a << " / " << b;
      EXPECT_EQ(b.reciprocal(), reference(bd, bn)) << b;
    }
  }
}

TEST(RationalFastPath, IntegerOperandAndCoprimeDenominatorBranches) {
  // rhs integral: denominator must survive untouched.
  EXPECT_EQ(reference(3, 7) + Rational{2}, reference(17, 7));
  EXPECT_EQ(reference(3, 7) - Rational{2}, reference(-11, 7));
  // lhs integral.
  EXPECT_EQ(Rational{2} + reference(3, 7), reference(17, 7));
  // Coprime denominators: no reduction needed, product denominator exact.
  EXPECT_EQ(reference(1, 4) + reference(1, 9), reference(13, 36));
  // Shared denominator factor with surviving gcd (Knuth 4.5.1 general case).
  EXPECT_EQ(reference(1, 6) + reference(1, 10), reference(4, 15));
  // Cancellation to zero must canonicalize the denominator to 1.
  const Rational zero = reference(5, 8) - reference(5, 8);
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.denominator(), BigInt{1});
}

TEST(RationalFastPath, AliasingOperandsAreSafe) {
  Rational square = reference(-6, 10);
  square *= square;
  EXPECT_EQ(square, reference(9, 25));

  Rational self_div = reference(-6, 10);
  self_div /= self_div;
  EXPECT_EQ(self_div, Rational{1});

  Rational doubled = reference(3, 8);
  doubled += doubled;
  EXPECT_EQ(doubled, reference(3, 4));

  Rational cancelled = reference(3, 8);
  cancelled -= cancelled;
  EXPECT_TRUE(cancelled.is_zero());
}

TEST(RationalFastPath, FromDoubleIsReducedByConstruction) {
  std::mt19937_64 gen{29};
  std::uniform_real_distribution<double> dist(-1.0e6, 1.0e6);
  std::vector<double> cases{0.5, -0.75, 1.0 / 3.0, 1e-300, -1e300, 6.02214076e23};
  for (int trial = 0; trial < 200; ++trial) cases.push_back(dist(gen));
  for (double value : cases) {
    const Rational lifted = Rational::from_double(value);
    EXPECT_EQ(lifted.to_double(), value) << value;  // dyadic lift is exact
    EXPECT_EQ(BigInt::gcd(lifted.numerator(), lifted.denominator()), BigInt{1}) << value;
    EXPECT_FALSE(lifted.denominator().is_negative()) << value;
  }
}

}  // namespace
}  // namespace hetero::numeric
