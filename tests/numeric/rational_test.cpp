#include "hetero/numeric/rational.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace hetero::numeric {
namespace {

TEST(Rational, DefaultIsZeroWithUnitDenominator) {
  const Rational zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.denominator(), BigInt{1});
  EXPECT_EQ(zero.to_string(), "0");
}

TEST(Rational, ReducesToLowestTermsWithPositiveDenominator) {
  const Rational r{BigInt{6}, BigInt{-8}};
  EXPECT_EQ(r.numerator(), BigInt{-3});
  EXPECT_EQ(r.denominator(), BigInt{4});
  EXPECT_EQ(r.to_string(), "-3/4");
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW((Rational{BigInt{1}, BigInt{0}}), std::domain_error);
}

TEST(Rational, ArithmeticMatchesExactFractions) {
  const Rational third{1, 3};
  const Rational quarter{1, 4};
  EXPECT_EQ((third + quarter).to_string(), "7/12");
  EXPECT_EQ((third - quarter).to_string(), "1/12");
  EXPECT_EQ((third * quarter).to_string(), "1/12");
  EXPECT_EQ((third / quarter).to_string(), "4/3");
  EXPECT_EQ((-third).to_string(), "-1/3");
}

TEST(Rational, DivisionByZeroThrows) {
  EXPECT_THROW(Rational{1} / Rational{0}, std::domain_error);
  EXPECT_THROW(Rational{0}.reciprocal(), std::domain_error);
}

TEST(Rational, ComparisonUsesCrossMultiplication) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(-1, 3), Rational(-1, 2));
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(1, 1000000));
}

TEST(Rational, FromDoubleIsExactForDyadics) {
  EXPECT_EQ(Rational::from_double(0.5).to_string(), "1/2");
  EXPECT_EQ(Rational::from_double(0.75).to_string(), "3/4");
  EXPECT_EQ(Rational::from_double(-2.25).to_string(), "-9/4");
  EXPECT_EQ(Rational::from_double(3.0).to_string(), "3");
  EXPECT_TRUE(Rational::from_double(0.0).is_zero());
}

TEST(Rational, FromDoubleRejectsNonFinite) {
  EXPECT_THROW(Rational::from_double(std::nan("")), std::invalid_argument);
  EXPECT_THROW(Rational::from_double(INFINITY), std::invalid_argument);
}

TEST(Rational, FromDoubleToDoubleRoundTripsRandomDoubles) {
  std::mt19937_64 gen{11};
  std::uniform_real_distribution<double> dist{-1e6, 1e6};
  for (int i = 0; i < 500; ++i) {
    const double x = dist(gen);
    // from_double is exact, and to_double rounds back to the nearest double,
    // so the round trip must be the identity.
    EXPECT_DOUBLE_EQ(Rational::from_double(x).to_double(), x);
  }
}

TEST(Rational, FromDoubleToDoubleRoundTripsTinyAndHugeMagnitudes) {
  for (double x : {1e-300, -1e300, 0x1.fffffffffffffp+1023, std::ldexp(1.0, -1000)}) {
    EXPECT_DOUBLE_EQ(Rational::from_double(x).to_double(), x) << x;
  }
}

TEST(Rational, ToDoubleOfSimpleFractions) {
  EXPECT_DOUBLE_EQ(Rational(1, 3).to_double(), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(Rational(-22, 7).to_double(), -22.0 / 7.0);
  EXPECT_DOUBLE_EQ((Rational(1, 3) * Rational(3, 1)).to_double(), 1.0);
}

TEST(Rational, PowHandlesNegativeExponents) {
  EXPECT_EQ(Rational::pow(Rational(2, 3), 3).to_string(), "8/27");
  EXPECT_EQ(Rational::pow(Rational(2, 3), -2).to_string(), "9/4");
  EXPECT_EQ(Rational::pow(Rational(5, 1), 0).to_string(), "1");
}

TEST(Rational, FieldAxiomsOnRandomFractions) {
  std::mt19937_64 gen{13};
  std::uniform_int_distribution<std::int64_t> dist{-1000, 1000};
  for (int i = 0; i < 200; ++i) {
    std::int64_t an = dist(gen);
    std::int64_t ad = dist(gen);
    std::int64_t bn = dist(gen);
    std::int64_t bd = dist(gen);
    if (ad == 0 || bd == 0) continue;
    const Rational a{BigInt{an}, BigInt{ad}};
    const Rational b{BigInt{bn}, BigInt{bd}};
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ(a + (b - b), a);
    EXPECT_EQ((a + b) - b, a);
    if (!b.is_zero()) EXPECT_EQ((a / b) * b, a);
  }
}

TEST(Rational, AbsAndSignum) {
  EXPECT_EQ(Rational(-3, 4).abs(), Rational(3, 4));
  EXPECT_EQ(Rational(-3, 4).signum(), -1);
  EXPECT_EQ(Rational(3, 4).signum(), 1);
  EXPECT_EQ(Rational{}.signum(), 0);
}

}  // namespace
}  // namespace hetero::numeric
