#include "hetero/numeric/simplex.h"

#include <gtest/gtest.h>

#include <vector>

namespace hetero::numeric {
namespace {

TEST(Simplex, SolvesTextbookTwoVariableProgram) {
  // max 3x + 5y  s.t.  x <= 4, 2y <= 12, 3x + 2y <= 18  =>  (2, 6), obj 36.
  const std::vector<double> c{3.0, 5.0};
  const Matrix a{{1.0, 0.0}, {0.0, 2.0}, {3.0, 2.0}};
  const std::vector<double> b{4.0, 12.0, 18.0};
  const LpSolution solution = SimplexSolver{}.maximize(c, a, b);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 36.0, 1e-9);
  EXPECT_NEAR(solution.x[0], 2.0, 1e-9);
  EXPECT_NEAR(solution.x[1], 6.0, 1e-9);
}

TEST(Simplex, DetectsUnboundedProgram) {
  // max x with only x - y <= 1: push y and x together forever.
  const std::vector<double> c{1.0, 0.0};
  const Matrix a{{1.0, -1.0}};
  const std::vector<double> b{1.0};
  EXPECT_EQ(SimplexSolver{}.maximize(c, a, b).status, LpStatus::kUnbounded);
}

TEST(Simplex, DetectsInfeasibleProgram) {
  // x <= 1 and -x <= -3  (i.e. x >= 3) cannot both hold.
  const std::vector<double> c{1.0};
  const Matrix a{{1.0}, {-1.0}};
  const std::vector<double> b{1.0, -3.0};
  EXPECT_EQ(SimplexSolver{}.maximize(c, a, b).status, LpStatus::kInfeasible);
}

TEST(Simplex, HandlesNegativeRhsViaPhase1) {
  // max -x - y  s.t.  x >= 2 (as -x <= -2), y >= 1, x + y <= 10.
  const std::vector<double> c{-1.0, -1.0};
  const Matrix a{{-1.0, 0.0}, {0.0, -1.0}, {1.0, 1.0}};
  const std::vector<double> b{-2.0, -1.0, 10.0};
  const LpSolution solution = SimplexSolver{}.maximize(c, a, b);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.x[0], 2.0, 1e-9);
  EXPECT_NEAR(solution.x[1], 1.0, 1e-9);
  EXPECT_NEAR(solution.objective, -3.0, 1e-9);
}

TEST(Simplex, DegenerateProgramTerminates) {
  // Redundant constraints producing degenerate vertices; Bland's rule must
  // still terminate at the optimum.
  const std::vector<double> c{1.0, 1.0};
  const Matrix a{{1.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}};
  const std::vector<double> b{5.0, 5.0, 5.0, 10.0};
  const LpSolution solution = SimplexSolver{}.maximize(c, a, b);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 10.0, 1e-9);
}

TEST(Simplex, MinimizeIsMaximizeOfNegation) {
  // min x + 2y  s.t.  x >= 1, y >= 2  => 5.
  const std::vector<double> c{1.0, 2.0};
  const Matrix a{{-1.0, 0.0}, {0.0, -1.0}};
  const std::vector<double> b{-1.0, -2.0};
  const LpSolution solution = SimplexSolver{}.minimize(c, a, b);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 5.0, 1e-9);
}

TEST(Simplex, ZeroRowsGiveTrivialOptimum) {
  const std::vector<double> c{-1.0, -2.0};
  const Matrix a{{1.0, 1.0}};
  const std::vector<double> b{100.0};
  const LpSolution solution = SimplexSolver{}.maximize(c, a, b);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 0.0, 1e-12);  // x = 0 is optimal
}

TEST(Simplex, RejectsShapeMismatch) {
  const std::vector<double> c{1.0};
  const Matrix a{{1.0, 2.0}};
  const std::vector<double> b{1.0};
  EXPECT_THROW((void)SimplexSolver{}.maximize(c, a, b), std::invalid_argument);
}

TEST(Simplex, SolutionSatisfiesAllConstraints) {
  const std::vector<double> c{2.0, 3.0, 1.0};
  const Matrix a{{1.0, 1.0, 1.0}, {2.0, 1.0, 0.0}, {0.0, 1.0, 3.0}};
  const std::vector<double> b{10.0, 8.0, 9.0};
  const LpSolution solution = SimplexSolver{}.maximize(c, a, b);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  for (std::size_t row = 0; row < 3; ++row) {
    double lhs = 0.0;
    for (std::size_t col = 0; col < 3; ++col) lhs += a(row, col) * solution.x[col];
    EXPECT_LE(lhs, b[row] + 1e-9);
  }
  for (double xi : solution.x) EXPECT_GE(xi, -1e-9);
}

TEST(Simplex, StatusToStringCoversAllValues) {
  EXPECT_STREQ(to_string(LpStatus::kOptimal), "optimal");
  EXPECT_STREQ(to_string(LpStatus::kInfeasible), "infeasible");
  EXPECT_STREQ(to_string(LpStatus::kUnbounded), "unbounded");
  EXPECT_STREQ(to_string(LpStatus::kIterationLimit), "iteration-limit");
}

}  // namespace
}  // namespace hetero::numeric
