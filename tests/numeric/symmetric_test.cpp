#include "hetero/numeric/symmetric.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

namespace hetero::numeric {
namespace {

TEST(ElementarySymmetric, MatchesTable5ForFourVariables) {
  // Table 5 of the paper lists F_1..F_4 of (rho1..rho4); check against the
  // hand-expanded sums for distinct primes so every monomial is unique.
  const std::vector<double> rho{2.0, 3.0, 5.0, 7.0};
  const auto e = elementary_symmetric(std::span<const double>{rho});
  ASSERT_EQ(e.size(), 5u);
  EXPECT_EQ(e[0], 1.0);
  EXPECT_EQ(e[1], 2 + 3 + 5 + 7);
  EXPECT_EQ(e[2], 2 * 3 + 2 * 5 + 2 * 7 + 3 * 5 + 3 * 7 + 5 * 7);
  EXPECT_EQ(e[3], 2 * 3 * 5 + 2 * 3 * 7 + 2 * 5 * 7 + 3 * 5 * 7);
  EXPECT_EQ(e[4], 2 * 3 * 5 * 7);
}

TEST(ElementarySymmetric, SingleVariable) {
  const std::vector<double> rho{4.5};
  const auto e = elementary_symmetric(std::span<const double>{rho});
  ASSERT_EQ(e.size(), 2u);
  EXPECT_EQ(e[0], 1.0);
  EXPECT_EQ(e[1], 4.5);
}

TEST(ElementarySymmetric, IsPermutationInvariant) {
  std::vector<double> rho{0.9, 0.31, 0.77, 0.12, 0.5};
  const auto base = elementary_symmetric(std::span<const double>{rho});
  std::mt19937_64 gen{5};
  for (int shuffle = 0; shuffle < 20; ++shuffle) {
    std::shuffle(rho.begin(), rho.end(), gen);
    const auto permuted = elementary_symmetric(std::span<const double>{rho});
    for (std::size_t k = 0; k < base.size(); ++k) {
      EXPECT_NEAR(permuted[k], base[k], 1e-12 * base[k]);
    }
  }
}

TEST(ElementarySymmetric, ExactRationalsMatchVietaOnPolynomialRoots) {
  // prod (x + rho_i) has coefficients exactly the elementary symmetric
  // functions; verify by expanding with exact rationals.
  const std::vector<double> rho{0.5, 0.25, 0.125};
  const auto exact = elementary_symmetric_exact(rho);
  ASSERT_EQ(exact.size(), 4u);
  EXPECT_EQ(exact[0], Rational{1});
  EXPECT_EQ(exact[1], Rational(7, 8));
  EXPECT_EQ(exact[2], Rational(1, 8) + Rational(1, 16) + Rational(1, 32));
  EXPECT_EQ(exact[3], Rational(1, 64));
}

TEST(PowerSums, MatchDirectComputation) {
  const std::vector<double> values{1.0, 2.0, 3.0};
  const auto p = power_sums(std::span<const double>{values}, 4);
  ASSERT_EQ(p.size(), 5u);
  EXPECT_EQ(p[0], 3.0);  // n
  EXPECT_EQ(p[1], 6.0);
  EXPECT_EQ(p[2], 14.0);
  EXPECT_EQ(p[3], 36.0);
  EXPECT_EQ(p[4], 98.0);
}

TEST(NewtonIdentities, RecoverElementaryFromPowerSums) {
  const std::vector<double> values{0.3, 0.7, 1.1, 1.9, 2.3};
  const std::size_t n = values.size();
  const auto direct = elementary_symmetric(std::span<const double>{values});
  const auto p = power_sums(std::span<const double>{values}, n);
  const auto via_newton = newton_to_elementary(std::span<const double>{p}, n);
  ASSERT_EQ(via_newton.size(), direct.size());
  for (std::size_t k = 0; k <= n; ++k) {
    EXPECT_NEAR(via_newton[k], direct[k], 1e-10 * std::max(1.0, direct[k])) << k;
  }
}

TEST(NewtonIdentities, ExactOverRationals) {
  const std::vector<double> doubles{0.5, 0.25, 2.0, 4.0};
  const auto exact_values = to_rationals(doubles);
  const auto direct = elementary_symmetric(std::span<const Rational>{exact_values});
  const auto p = power_sums(std::span<const Rational>{exact_values}, 4);
  const auto via_newton = newton_to_elementary(std::span<const Rational>{p}, 4);
  for (std::size_t k = 0; k <= 4; ++k) EXPECT_EQ(via_newton[k], direct[k]) << k;
}

TEST(NewtonIdentities, ThrowsOnTooFewPowerSums) {
  const std::vector<double> p{3.0, 1.0};
  EXPECT_THROW(newton_to_elementary(std::span<const double>{p}, 3), std::invalid_argument);
}

TEST(ToRationals, LiftsDoublesExactly) {
  const std::vector<double> values{0.1, 0.5};
  const auto exact = to_rationals(values);
  // 0.1 is NOT 1/10 in binary; the lift must reproduce the double exactly.
  EXPECT_DOUBLE_EQ(exact[0].to_double(), 0.1);
  EXPECT_EQ(exact[1], Rational(1, 2));
}

}  // namespace
}  // namespace hetero::numeric
