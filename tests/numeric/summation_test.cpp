#include "hetero/numeric/summation.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

namespace hetero::numeric {
namespace {

TEST(NeumaierSum, EmptySumIsZero) {
  const NeumaierSum sum;
  EXPECT_EQ(sum.value(), 0.0);
  EXPECT_EQ(sum.count(), 0u);
}

TEST(NeumaierSum, RecoversCancellationThatBreaksNaiveSummation) {
  // Classic Neumaier stress input: naive left-to-right gives 0 (the 1.0
  // vanishes into 1e100), compensated gives 2.
  NeumaierSum sum;
  sum.add(1.0);
  sum.add(1e100);
  sum.add(1.0);
  sum.add(-1e100);
  EXPECT_EQ(sum.value(), 2.0);
  const double naive = ((1.0 + 1e100) + 1.0) + -1e100;
  EXPECT_EQ(naive, 0.0);  // demonstrates the failure the accumulator fixes
}

TEST(NeumaierSum, SumsManySmallTermsAccurately) {
  NeumaierSum sum;
  constexpr int kN = 10'000'000;
  for (int i = 0; i < kN; ++i) sum.add(0.1);
  EXPECT_NEAR(sum.value(), 0.1 * kN, 1e-6);
  EXPECT_EQ(sum.count(), static_cast<std::size_t>(kN));
}

TEST(NeumaierSum, MergeEqualsSequentialAccumulation) {
  std::mt19937_64 gen{3};
  std::uniform_real_distribution<double> dist{-1.0, 1.0};
  NeumaierSum whole;
  NeumaierSum left;
  NeumaierSum right;
  for (int i = 0; i < 1000; ++i) {
    const double x = dist(gen);
    whole.add(x);
    (i < 500 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_NEAR(left.value(), whole.value(), 1e-15);
  EXPECT_EQ(left.count(), whole.count());
}

TEST(CompensatedSum, MatchesAccumulator) {
  const std::vector<double> values{0.1, 0.2, 0.3, 1e16, -1e16, 0.4};
  EXPECT_NEAR(compensated_sum(values), 1.0, 1e-12);
}

TEST(PairwiseSum, ExactOnSmallInputsAndCloseOnLarge) {
  const std::vector<double> small{1.0, 2.0, 3.0};
  EXPECT_EQ(pairwise_sum(small), 6.0);
  std::vector<double> large(100'000, 0.001);
  EXPECT_NEAR(pairwise_sum(large), 100.0, 1e-9);
}

TEST(PairwiseSum, EmptyIsZero) {
  EXPECT_EQ(pairwise_sum(std::span<const double>{}), 0.0);
}

}  // namespace
}  // namespace hetero::numeric
