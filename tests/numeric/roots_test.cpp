#include "hetero/numeric/roots.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hetero::numeric {
namespace {

TEST(Brent, FindsRootOfCubic) {
  const auto f = [](double x) { return x * x * x - 2.0 * x - 5.0; };
  const auto result = brent(f, 2.0, 3.0);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->converged);
  EXPECT_NEAR(result->root, 2.0945514815423265, 1e-12);
}

TEST(Brent, HandlesRootAtBracketEndpoint) {
  const auto f = [](double x) { return x - 1.0; };
  const auto at_lo = brent(f, 1.0, 2.0);
  ASSERT_TRUE(at_lo.has_value());
  EXPECT_EQ(at_lo->root, 1.0);
  const auto at_hi = brent(f, 0.0, 1.0);
  ASSERT_TRUE(at_hi.has_value());
  EXPECT_EQ(at_hi->root, 1.0);
}

TEST(Brent, RejectsUnbracketedInterval) {
  const auto f = [](double x) { return x * x + 1.0; };
  EXPECT_FALSE(brent(f, -1.0, 1.0).has_value());
}

TEST(Brent, RejectsNonFiniteFunctionValues) {
  const auto g = [](double) { return std::nan(""); };
  EXPECT_FALSE(brent(g, 0.0, 1.0).has_value());
  EXPECT_FALSE(bisect(g, 0.0, 1.0).has_value());
}

TEST(Brent, ConvergesOnFlatExponentialDifference) {
  // The HECR inversion shape: tiny function values near the root.
  const auto f = [](double x) { return std::expm1(1e-5 * (x - 0.25)); };
  const auto result = brent(f, 0.01, 1.0);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->root, 0.25, 1e-9);
}

TEST(Bisect, MatchesBrentOnSmoothFunction) {
  const auto f = [](double x) { return std::cos(x) - x; };
  const auto a = brent(f, 0.0, 1.0);
  const auto b = bisect(f, 0.0, 1.0, RootOptions{.x_tolerance = 1e-13, .max_iterations = 200});
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_NEAR(a->root, b->root, 1e-10);
  EXPECT_NEAR(a->root, 0.7390851332151607, 1e-12);
}

TEST(Bisect, ReportsNonConvergenceUnderIterationStarvation) {
  const auto f = [](double x) { return x - 0.123456789; };
  const auto result = bisect(f, 0.0, 1.0, RootOptions{.x_tolerance = 1e-15, .max_iterations = 3});
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->converged);
}

TEST(Brent, UsesFewerIterationsThanBisection) {
  const auto f = [](double x) { return std::exp(x) - 5.0; };
  const RootOptions options{.x_tolerance = 1e-14, .max_iterations = 500};
  const auto fast = brent(f, 0.0, 10.0, options);
  const auto slow = bisect(f, 0.0, 10.0, options);
  ASSERT_TRUE(fast.has_value());
  ASSERT_TRUE(slow.has_value());
  EXPECT_LT(fast->iterations, slow->iterations);
}

}  // namespace
}  // namespace hetero::numeric
