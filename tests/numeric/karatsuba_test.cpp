// The BigInt multiply switches to Karatsuba above a limb threshold; these
// tests force operands across that boundary and cross-check against
// independent ground truths (decimal identities, shifts, random split
// products).

#include <gtest/gtest.h>

#include <random>

#include "hetero/numeric/bigint.h"

namespace hetero::numeric {
namespace {

BigInt random_bits(std::mt19937_64& gen, std::size_t bits) {
  BigInt value{0};
  for (std::size_t produced = 0; produced < bits; produced += 32) {
    value = (value << 32) + BigInt{std::uint64_t{static_cast<std::uint32_t>(gen())}};
  }
  return value + BigInt{1};  // never zero
}

TEST(Karatsuba, MatchesShiftIdentityOnHugeOperands) {
  // (2^k)^2 = 2^(2k) exercises the recursion with sparse limbs.
  for (std::size_t k : {1024u, 2048u, 4100u}) {
    const BigInt x = BigInt{1} << k;
    EXPECT_EQ(x * x, BigInt{1} << (2 * k)) << k;
  }
}

TEST(Karatsuba, SquareOfRepunitHasKnownDigitPattern) {
  // 111111111^2 = 12345678987654321; scale up to multi-limb via (10^n-1)/9
  // identities: ((10^n - 1)/9)^2 * 81 = (10^n - 1)^2 = 10^2n - 2*10^n + 1.
  for (std::uint64_t n : {40u, 200u, 1200u}) {
    const BigInt ten_n = BigInt::pow(BigInt{10}, n);
    const BigInt lhs = (ten_n - BigInt{1}) * (ten_n - BigInt{1});
    const BigInt rhs = BigInt::pow(BigInt{10}, 2 * n) - (ten_n + ten_n) + BigInt{1};
    EXPECT_EQ(lhs, rhs) << n;
  }
}

TEST(Karatsuba, DistributesOverAdditionRandomized) {
  std::mt19937_64 gen{2026};
  for (int trial = 0; trial < 20; ++trial) {
    const BigInt a = random_bits(gen, 3000);
    const BigInt b = random_bits(gen, 2500);
    const BigInt c = random_bits(gen, 2800);
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ((a + b) * c, a * c + b * c);
  }
}

TEST(Karatsuba, AgreesWithSplitProductIdentity) {
  // a = hi*2^s + lo multiplied out manually must equal the direct product;
  // this is exactly the decomposition Karatsuba recombines.
  std::mt19937_64 gen{7};
  for (int trial = 0; trial < 10; ++trial) {
    const BigInt a = random_bits(gen, 4096);
    const BigInt b = random_bits(gen, 4096);
    const std::size_t s = 2048;
    const BigInt a_hi = a >> s;
    const BigInt a_lo = a - (a_hi << s);
    const BigInt manual = ((a_hi * b) << s) + a_lo * b;
    EXPECT_EQ(a * b, manual);
  }
}

TEST(Karatsuba, HighlyAsymmetricOperands) {
  std::mt19937_64 gen{13};
  const BigInt big = random_bits(gen, 8192);
  const BigInt small{12345};
  // Cross-check against repeated addition through a decimal identity:
  // big * 12345 = big*12000 + big*345.
  EXPECT_EQ(big * small, big * BigInt{12000} + big * BigInt{345});
}

TEST(Karatsuba, DivModRoundTripsThroughLargeProducts) {
  std::mt19937_64 gen{99};
  for (int trial = 0; trial < 10; ++trial) {
    const BigInt a = random_bits(gen, 3333);
    const BigInt b = random_bits(gen, 1111);
    const BigInt product = a * b;
    EXPECT_TRUE((product % a).is_zero());
    EXPECT_TRUE((product % b).is_zero());
    EXPECT_EQ(product / a, b);
    EXPECT_EQ(product / b, a);
  }
}

}  // namespace
}  // namespace hetero::numeric
