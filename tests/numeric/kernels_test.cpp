// Differential tests for the SIMD float kernels (numeric/kernels.h): each
// kernel against an exact-rational (or libm) reference over random profiles
// and adversarial inputs, within the accuracy bounds documented in the
// header, plus the bit-identity contract of the fused sweep.

#include "hetero/numeric/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "hetero/numeric/rational.h"
#include "hetero/numeric/summation.h"
#include "hetero/numeric/symmetric.h"
#include "hetero/random/rng.h"

namespace hetero::numeric {
namespace {

// X(P) carried entirely in exact rational arithmetic; one rounding at the
// end.  The gold standard the float kernel is measured against.
double x_measure_rational(std::span<const double> rho, double a, double b, double td) {
  const Rational ra = Rational::from_double(a);
  const Rational rb = Rational::from_double(b);
  const Rational rtd = Rational::from_double(td);
  Rational sum;
  Rational running_product{1};
  for (double r : rho) {
    const Rational rr = Rational::from_double(r);
    const Rational denom = rb * rr + ra;
    sum += running_product / denom;
    running_product *= (rb * rr + rtd) / denom;
  }
  return sum.to_double();
}

std::vector<double> random_speeds(std::size_t n, std::uint64_t stream) {
  auto rng = random::Xoshiro256StarStar::for_stream(0xfeedface12345678ull, stream);
  std::vector<double> rho(n);
  for (double& r : rho) r = rng.uniform(0.05, 20.0);
  return rho;
}

double rel_err(double got, double want) {
  if (want == 0.0) return std::fabs(got);
  return std::fabs(got - want) / std::fabs(want);
}

constexpr double kA = 3.5;
constexpr double kB = 1.25;
constexpr double kTd = 0.75;

TEST(KernelsTest, XMeasureMatchesRationalReferenceRandom) {
  for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{5},
                        std::size_t{8}, std::size_t{13}, std::size_t{64}, std::size_t{129}}) {
    const std::vector<double> rho = random_speeds(n, n);
    const double got = x_measure_kernel(rho, kA, kB, kTd);
    const double want = x_measure_rational(rho, kA, kB, kTd);
    EXPECT_LT(rel_err(got, want), 5e-13) << "n=" << n;
  }
}

TEST(KernelsTest, XMeasureEmptyAndSingleton) {
  EXPECT_EQ(x_measure_kernel({}, kA, kB, kTd), 0.0);
  const std::vector<double> one{2.0};
  EXPECT_DOUBLE_EQ(x_measure_kernel(one, kA, kB, kTd), 1.0 / (kB * 2.0 + kA));
}

TEST(KernelsTest, XMeasureAdversarialInputs) {
  // All-equal speeds (maximally correlated prefix products).
  const std::vector<double> equal(100, 1.0);
  EXPECT_LT(rel_err(x_measure_kernel(equal, kA, kB, kTd),
                    x_measure_rational(equal, kA, kB, kTd)),
            5e-13);
  // Mixed magnitudes: nine orders apart, shuffled hot/cold.
  std::vector<double> mixed;
  for (int i = 0; i < 40; ++i) mixed.push_back((i % 2) != 0 ? 1e-6 : 1e3);
  EXPECT_LT(rel_err(x_measure_kernel(mixed, kA, kB, kTd),
                    x_measure_rational(mixed, kA, kB, kTd)),
            5e-13);
  // Subnormal speeds: b*rho + a collapses to a, every term is 1/a-ish.
  const std::vector<double> tiny(16, std::numeric_limits<double>::denorm_min());
  EXPECT_LT(rel_err(x_measure_kernel(tiny, kA, kB, kTd),
                    x_measure_rational(tiny, kA, kB, kTd)),
            5e-13);
}

TEST(KernelsTest, ElementarySymmetricMatchesExactRational) {
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{3},
                        std::size_t{4}, std::size_t{7}, std::size_t{16}, std::size_t{33},
                        std::size_t{64}}) {
    const std::vector<double> values = random_speeds(n, 1000 + n);
    const std::vector<double> got = elementary_symmetric_double(values);
    const std::vector<Rational> want = elementary_symmetric_exact(values);
    ASSERT_EQ(got.size(), n + 1);
    ASSERT_EQ(want.size(), n + 1);
    for (std::size_t k = 0; k <= n; ++k) {
      EXPECT_LT(rel_err(got[k], want[k].to_double()), 1e-13) << "n=" << n << " k=" << k;
    }
  }
}

TEST(KernelsTest, ElementarySymmetricAdversarialInputs) {
  // Subnormals: products underflow to zero in the float path, which is the
  // correctly rounded double of the exact value, so only e_0, e_1 survive.
  const std::vector<double> tiny(8, std::numeric_limits<double>::denorm_min());
  const std::vector<double> got = elementary_symmetric_double(tiny);
  EXPECT_EQ(got[0], 1.0);
  EXPECT_DOUBLE_EQ(got[1], 8.0 * std::numeric_limits<double>::denorm_min());
  // Mixed magnitudes with positive values keep the serial error bound.
  std::vector<double> mixed;
  for (int i = 0; i < 24; ++i) mixed.push_back((i % 3) != 0 ? 1e-8 : 1e8);
  const std::vector<double> got_mixed = elementary_symmetric_double(mixed);
  const std::vector<Rational> want_mixed = elementary_symmetric_exact(mixed);
  for (std::size_t k = 0; k < got_mixed.size(); ++k) {
    EXPECT_LT(rel_err(got_mixed[k], want_mixed[k].to_double()), 1e-12) << "k=" << k;
  }
}

TEST(KernelsTest, Log1pRatioSumMatchesLibmReference) {
  const double c = kA - kTd;
  for (std::size_t n : {std::size_t{1}, std::size_t{4}, std::size_t{9}, std::size_t{128}}) {
    const std::vector<double> rho = random_speeds(n, 2000 + n);
    NeumaierSum want;
    for (double r : rho) want.add(std::log1p(-c / (kB * r + kA)));
    EXPECT_LT(rel_err(log1p_ratio_sum(rho, kA, kB, c), want.value()), 1e-13) << "n=" << n;
  }
  EXPECT_EQ(log1p_ratio_sum({}, kA, kB, c), 0.0);
}

TEST(KernelsTest, FusedKernelBitIdenticalToSeparateSweeps) {
  const double c = kA - kTd;
  for (std::size_t n = 0; n <= 70; ++n) {
    const std::vector<double> rho = random_speeds(n, 3000 + n);
    const XLogSums fused = x_and_log1p_kernel(rho, kA, kB, kTd, c);
    const double x = x_measure_kernel(rho, kA, kB, kTd);
    const double log_sum = log1p_ratio_sum(rho, kA, kB, c);
    // Bit identity, not closeness: the fused sweep replays the exact same
    // operation chains.
    EXPECT_EQ(std::memcmp(&fused.x, &x, sizeof x), 0) << "n=" << n;
    EXPECT_EQ(std::memcmp(&fused.log_sum, &log_sum, sizeof log_sum), 0) << "n=" << n;
  }
}

}  // namespace
}  // namespace hetero::numeric
