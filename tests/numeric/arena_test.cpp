// Unit tests for the bump arena behind exact-arithmetic temporaries
// (numeric/arena.h): scope/pause mechanics, ownership checks, block reuse
// across reset, and the contract that arena-backed BigInt/Rational
// arithmetic produces exactly the heap results.

#include "hetero/numeric/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "hetero/numeric/bigint.h"
#include "hetero/numeric/rational.h"

namespace hetero::numeric {
namespace {

TEST(ArenaTest, AllocationsInsideScopeAreArenaOwned) {
  Arena arena;
  EXPECT_EQ(active_arena(), nullptr);
  {
    ArenaScope scope{arena};
    ASSERT_EQ(active_arena(), &arena);
    void* p = arena.allocate(64, 16);
    EXPECT_TRUE(arena.owns(p));
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 16, 0u);
  }
  EXPECT_EQ(active_arena(), nullptr);
}

TEST(ArenaTest, PauseRedirectsToHeapButKeepsInstalled) {
  Arena arena;
  ArenaScope scope{arena};
  {
    ArenaPause pause;
    EXPECT_EQ(active_arena(), nullptr);
    EXPECT_EQ(installed_arena(), &arena);
  }
  EXPECT_EQ(active_arena(), &arena);
}

TEST(ArenaTest, FallbackAllocatorUsesArenaOnlyInsideScope) {
  Arena arena;
  ArenaFallbackAllocator<std::uint32_t> alloc;
  // No scope: plain heap.
  std::uint32_t* heap_ptr = alloc.allocate(8);
  EXPECT_FALSE(arena.owns(heap_ptr));
  alloc.deallocate(heap_ptr, 8);
  {
    ArenaScope scope{arena};
    std::uint32_t* arena_ptr = alloc.allocate(8);
    EXPECT_TRUE(arena.owns(arena_ptr));
    alloc.deallocate(arena_ptr, 8);  // no-op: the arena reclaims in bulk
    // Heap pointers freed while a scope is active must still be recognized
    // as foreign and heap-deleted (exercised for leaks under ASan).
    ArenaPause pause;
    std::uint32_t* paused_ptr = alloc.allocate(8);
    EXPECT_FALSE(arena.owns(paused_ptr));
    alloc.deallocate(paused_ptr, 8);
  }
}

TEST(ArenaTest, GrowsAcrossBlocksAndReusesThemAfterReset) {
  Arena arena;
  {
    ArenaScope scope{arena};
    // Far beyond the first block, forcing several doublings.
    for (int i = 0; i < 100; ++i) {
      void* p = arena.allocate(4096, 8);
      ASSERT_TRUE(arena.owns(p));
    }
  }
  arena.reset();
  {
    ArenaScope scope{arena};
    void* p = arena.allocate(64, 8);
    EXPECT_TRUE(arena.owns(p));
  }
  arena.reset();
}

TEST(ArenaTest, BigIntArithmeticMatchesHeapExactly) {
  // 100! computed twice: once heap-backed, once arena-backed with the result
  // deep-copied out under a pause.  Multi-limb magnitudes guarantee the limb
  // buffers actually route through the arena.
  const auto factorial = [] {
    BigInt f{1};
    for (int i = 2; i <= 100; ++i) f *= BigInt{static_cast<std::int64_t>(i)};
    return f;
  };
  const BigInt heap_result = factorial();
  Arena arena;
  BigInt arena_result;
  {
    ArenaScope scope{arena};
    const BigInt scratch = factorial();
    ArenaPause pause;
    arena_result = scratch;  // copy allocates on the heap
  }
  arena.reset();
  EXPECT_EQ(arena_result, heap_result);
  EXPECT_EQ(arena_result.to_string(), heap_result.to_string());
}

TEST(ArenaTest, RationalArithmeticMatchesHeapExactly) {
  const auto compute = [] {
    Rational sum;
    for (int i = 1; i <= 200; ++i) sum += Rational{1} / Rational{i};
    return sum;
  };
  const Rational heap_result = compute();
  Arena arena;
  Rational arena_result;
  {
    ArenaScope scope{arena};
    const Rational scratch = compute();
    ArenaPause pause;
    arena_result = scratch;
  }
  arena.reset();
  EXPECT_EQ(arena_result, heap_result);
  EXPECT_EQ(arena_result.to_string(), heap_result.to_string());
}

TEST(ArenaTest, VectorsSurviveArenaHeapBoundaryMoves) {
  // An always-equal allocator must let buffers move across the boundary:
  // grow a vector inside the scope, move it out, keep using it after reset.
  Arena arena;
  std::vector<std::uint32_t, ArenaFallbackAllocator<std::uint32_t>> survivor;
  {
    ArenaScope scope{arena};
    std::vector<std::uint32_t, ArenaFallbackAllocator<std::uint32_t>> inside;
    for (std::uint32_t i = 0; i < 1000; ++i) inside.push_back(i);
    ArenaPause pause;
    survivor = inside;  // element-wise copy into a heap buffer
  }
  arena.reset();
  ASSERT_EQ(survivor.size(), 1000u);
  for (std::uint32_t i = 0; i < 1000; ++i) ASSERT_EQ(survivor[i], i);
}

}  // namespace
}  // namespace hetero::numeric
