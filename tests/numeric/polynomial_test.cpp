#include "hetero/numeric/polynomial.h"

#include <gtest/gtest.h>

#include <vector>

namespace hetero::numeric {
namespace {

TEST(Polynomial, ZeroPolynomialBasics) {
  const Polynomial zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.degree(), 0u);
  EXPECT_EQ(zero(3.0), 0.0);
}

TEST(Polynomial, TrimsTrailingZeroCoefficients) {
  const Polynomial p{{1.0, 2.0, 0.0, 0.0}};
  EXPECT_EQ(p.degree(), 1u);
  EXPECT_EQ(p.coefficient(0), 1.0);
  EXPECT_EQ(p.coefficient(5), 0.0);
}

TEST(Polynomial, HornerEvaluation) {
  const Polynomial p{{-6.0, 11.0, -6.0, 1.0}};  // (x-1)(x-2)(x-3)
  EXPECT_EQ(p(1.0), 0.0);
  EXPECT_EQ(p(2.0), 0.0);
  EXPECT_EQ(p(3.0), 0.0);
  EXPECT_EQ(p(0.0), -6.0);
  EXPECT_EQ(p(4.0), 6.0);
}

TEST(Polynomial, FromRootsExpandsCorrectly) {
  const std::vector<double> roots{1.0, 2.0, 3.0};
  const Polynomial p = Polynomial::from_roots(roots);
  EXPECT_EQ(p.degree(), 3u);
  EXPECT_EQ(p.coefficient(0), -6.0);
  EXPECT_EQ(p.coefficient(1), 11.0);
  EXPECT_EQ(p.coefficient(2), -6.0);
  EXPECT_EQ(p.coefficient(3), 1.0);
}

TEST(Polynomial, FromLinearFactorsBuildsTheXDenominatorProduct) {
  // prod (B*rho_i * 1 + (A)) style expansion used for Lemma-1 validation:
  // (2x+1)(3x+4) = 6x^2 + 11x + 4.
  const std::vector<double> scales{2.0, 3.0};
  const std::vector<double> offsets{1.0, 4.0};
  const Polynomial p = Polynomial::from_linear_factors(scales, offsets);
  EXPECT_EQ(p.coefficient(0), 4.0);
  EXPECT_EQ(p.coefficient(1), 11.0);
  EXPECT_EQ(p.coefficient(2), 6.0);
}

TEST(Polynomial, ArithmeticIdentities) {
  const Polynomial p{{1.0, 2.0, 3.0}};
  const Polynomial q{{5.0, -1.0}};
  EXPECT_EQ((p + q) - q, p);
  EXPECT_EQ(p * Polynomial{{1.0}}, p);
  EXPECT_TRUE((p * Polynomial{}).is_zero());
  EXPECT_TRUE((p - p).is_zero());
}

TEST(Polynomial, MultiplicationMatchesEvaluation) {
  const Polynomial p{{1.0, 2.0}};
  const Polynomial q{{-3.0, 0.0, 1.0}};
  const Polynomial pq = p * q;
  for (double x : {-2.0, -0.5, 0.0, 1.0, 3.7}) {
    EXPECT_NEAR(pq(x), p(x) * q(x), 1e-12);
  }
}

TEST(Polynomial, DerivativeOfCubic) {
  const Polynomial p{{7.0, 0.0, 3.0, 2.0}};  // 2x^3 + 3x^2 + 7
  const Polynomial d = p.derivative();
  EXPECT_EQ(d.coefficient(0), 0.0);
  EXPECT_EQ(d.coefficient(1), 6.0);
  EXPECT_EQ(d.coefficient(2), 6.0);
  EXPECT_TRUE(Polynomial{{5.0}}.derivative().is_zero());
}

TEST(Polynomial, ScalarMultiplication) {
  const Polynomial p{{1.0, -2.0}};
  EXPECT_EQ((p * 3.0).coefficient(1), -6.0);
  EXPECT_TRUE((p * 0.0).is_zero());
}

}  // namespace
}  // namespace hetero::numeric
