#include "hetero/numeric/matrix.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

namespace hetero::numeric {
namespace {

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m(1, 2), 1.5);
  m(0, 0) = -2.0;
  EXPECT_EQ(m(0, 0), -2.0);
}

TEST(Matrix, BraceInitializationRejectsRaggedRows) {
  EXPECT_NO_THROW((Matrix{{1.0, 2.0}, {3.0, 4.0}}));
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, IdentityActsAsMultiplicativeUnit) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(a * Matrix::identity(2), a);
  EXPECT_EQ(Matrix::identity(2) * a, a);
}

TEST(Matrix, MultiplicationAgainstHandComputedProduct) {
  const Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix b{{7.0, 8.0}, {9.0, 10.0}, {11.0, 12.0}};
  const Matrix expected{{58.0, 64.0}, {139.0, 154.0}};
  EXPECT_EQ(a * b, expected);
  EXPECT_THROW(b * Matrix(3, 3), std::invalid_argument);
}

TEST(Matrix, TransposeInvolution) {
  const Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  EXPECT_EQ(a.transposed().transposed(), a);
  EXPECT_EQ(a.transposed()(2, 1), 6.0);
}

TEST(Matrix, VectorMultiply) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const std::vector<double> x{5.0, 6.0};
  const std::vector<double> y = a.multiply(x);
  EXPECT_EQ(y[0], 17.0);
  EXPECT_EQ(y[1], 39.0);
  EXPECT_THROW(a.multiply(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(Lu, SolvesHandCheckedSystem) {
  const Matrix a{{2.0, 1.0, -1.0}, {-3.0, -1.0, 2.0}, {-2.0, 1.0, 2.0}};
  const std::vector<double> b{8.0, -11.0, -3.0};
  const std::vector<double> x = solve_linear_system(a, b);
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
  EXPECT_NEAR(x[2], -1.0, 1e-12);
  EXPECT_LT(residual_max_norm(a, x, b), 1e-12);
}

TEST(Lu, DeterminantMatchesCofactorExpansion) {
  const Matrix a{{4.0, 3.0}, {6.0, 3.0}};
  EXPECT_NEAR(LuDecomposition{a}.determinant(), -6.0, 1e-12);
  EXPECT_NEAR(LuDecomposition{Matrix::identity(5)}.determinant(), 1.0, 1e-12);
}

TEST(Lu, DetectsSingularMatrix) {
  const Matrix singular{{1.0, 2.0}, {2.0, 4.0}};
  const LuDecomposition lu{singular};
  EXPECT_FALSE(lu.is_invertible());
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW(lu.solve(b), std::runtime_error);
}

TEST(Lu, RequiresPivotingForZeroLeadingEntry) {
  // Without partial pivoting this matrix divides by zero immediately.
  const Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  const std::vector<double> b{2.0, 3.0};
  const std::vector<double> x = solve_linear_system(a, b);
  EXPECT_NEAR(x[0], 3.0, 1e-14);
  EXPECT_NEAR(x[1], 2.0, 1e-14);
}

TEST(Lu, InverseTimesOriginalIsIdentity) {
  const Matrix a{{2.0, 0.0, 1.0}, {1.0, 3.0, 2.0}, {0.0, 1.0, 4.0}};
  const Matrix inv = LuDecomposition{a}.inverse();
  const Matrix product = a * inv;
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_NEAR(product(r, c), r == c ? 1.0 : 0.0, 1e-12);
    }
  }
}

TEST(Lu, RandomizedSolveHasTinyResidual) {
  std::mt19937_64 gen{17};
  std::uniform_real_distribution<double> dist{-10.0, 10.0};
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(gen() % 12);
    Matrix a(n, n);
    std::vector<double> b(n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) a(r, c) = dist(gen);
      a(r, r) += 20.0;  // diagonally dominant => comfortably invertible
      b[r] = dist(gen);
    }
    const std::vector<double> x = solve_linear_system(a, b);
    EXPECT_LT(residual_max_norm(a, x, b), 1e-9);
  }
}

TEST(Lu, RejectsNonSquareAndSizeMismatch) {
  EXPECT_THROW(LuDecomposition{Matrix(2, 3)}, std::invalid_argument);
  const LuDecomposition lu{Matrix::identity(2)};
  EXPECT_THROW(lu.solve(std::vector<double>{1.0, 2.0, 3.0}), std::invalid_argument);
}

}  // namespace
}  // namespace hetero::numeric
