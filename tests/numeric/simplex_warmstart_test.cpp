// Warm-start contract of the exact simplex solver: solutions are
// bit-identical to cold starts across perturbed LP families, and malformed,
// stale, or infeasible bases fall back to a cold start silently.

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "hetero/numeric/simplex.h"

namespace hetero::numeric {
namespace {

void expect_bit_identical(const LpSolution& warm, const LpSolution& cold) {
  EXPECT_EQ(warm.status, cold.status);
  EXPECT_EQ(warm.objective, cold.objective);  // exact, not NEAR: same Rational
  ASSERT_EQ(warm.x.size(), cold.x.size());
  for (std::size_t i = 0; i < warm.x.size(); ++i) EXPECT_EQ(warm.x[i], cold.x[i]);
}

// max 3x + 5y s.t. x <= 4, 2y <= 12 - t, 3x + 2y <= 18 + t: a one-parameter
// family whose optimal basis is stable, the sweep-neighbor shape
// warm-starting is built for.
struct Family {
  std::vector<double> c{3.0, 5.0};
  Matrix a{{1.0, 0.0}, {0.0, 2.0}, {3.0, 2.0}};
  [[nodiscard]] std::vector<double> rhs(double t) const { return {4.0, 12.0 - t, 18.0 + t}; }
};

TEST(SimplexWarmStart, ChainedSweepIsBitIdenticalToColdStarts) {
  const Family family;
  const SimplexSolver solver;
  SimplexBasis basis;  // empty: first solve is cold
  bool any_warm = false;
  for (int step = 0; step <= 20; ++step) {
    const double t = 0.1 * step;
    const std::vector<double> b = family.rhs(t);
    const LpSolution cold = solver.maximize(family.c, family.a, b);
    const LpSolution warm = solver.maximize(family.c, family.a, b, basis);
    ASSERT_EQ(cold.status, LpStatus::kOptimal);
    expect_bit_identical(warm, cold);
    any_warm = any_warm || warm.warm_started;
    basis = warm.basis;
    EXPECT_FALSE(basis.empty());
  }
  EXPECT_TRUE(any_warm);  // neighbouring cells really do share their basis
}

TEST(SimplexWarmStart, WarmStartSkipsPivotsOnIdenticalResolve) {
  const Family family;
  const SimplexSolver solver;
  const std::vector<double> b = family.rhs(0.5);
  const LpSolution cold = solver.maximize(family.c, family.a, b);
  ASSERT_EQ(cold.status, LpStatus::kOptimal);
  const LpSolution warm = solver.maximize(family.c, family.a, b, cold.basis);
  expect_bit_identical(warm, cold);
  EXPECT_TRUE(warm.warm_started);
  EXPECT_LE(warm.iterations, cold.iterations);
}

TEST(SimplexWarmStart, MalformedBasesFallBackCleanly) {
  const Family family;
  const SimplexSolver solver;
  const std::vector<double> b = family.rhs(1.0);
  const LpSolution cold = solver.maximize(family.c, family.a, b);

  SimplexBasis wrong_size;
  wrong_size.basic = {0, 1};  // 2 entries for a 3-row tableau
  SimplexBasis out_of_range;
  out_of_range.basic = {0, 1, 99};
  SimplexBasis duplicated;
  duplicated.basic = {0, 0, 1};
  for (const SimplexBasis& bad : {wrong_size, out_of_range, duplicated}) {
    const LpSolution warm = solver.maximize(family.c, family.a, b, bad);
    expect_bit_identical(warm, cold);
    EXPECT_FALSE(warm.warm_started);
  }
}

TEST(SimplexWarmStart, InfeasibleNeighborFallsBackToColdVerdict) {
  const Family family;
  const SimplexSolver solver;
  const LpSolution donor = solver.maximize(family.c, family.a, family.rhs(0.0));
  ASSERT_EQ(donor.status, LpStatus::kOptimal);
  // Same shape, but x >= 3 and x <= 1 cannot both hold.
  const Matrix a{{1.0, 0.0}, {-1.0, 0.0}, {0.0, 1.0}};
  const std::vector<double> b{1.0, -3.0, 5.0};
  const LpSolution cold = solver.maximize(family.c, a, b);
  ASSERT_EQ(cold.status, LpStatus::kInfeasible);
  const LpSolution warm = solver.maximize(family.c, a, b, donor.basis);
  EXPECT_EQ(warm.status, LpStatus::kInfeasible);
}

TEST(SimplexWarmStart, UnboundedProgramKeepsItsVerdictUnderWarmStart) {
  const std::vector<double> c{1.0, 0.0};
  const Matrix a{{1.0, -1.0}};
  const std::vector<double> b{1.0};
  const SimplexSolver solver;
  SimplexBasis warm;
  warm.basic = {0};  // structural x basic in the single row
  EXPECT_EQ(solver.maximize(c, a, b, warm).status, LpStatus::kUnbounded);
}

TEST(SimplexWarmStart, DegenerateVertexStaysBitIdentical) {
  // Degenerate optimum: three constraints meet at (1, 1); multiple bases
  // describe the same vertex, so x and objective must still agree exactly.
  const std::vector<double> c{1.0, 1.0};
  const Matrix a{{1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}};
  const std::vector<double> b{1.0, 1.0, 2.0};
  const SimplexSolver solver;
  const LpSolution cold = solver.maximize(c, a, b);
  ASSERT_EQ(cold.status, LpStatus::kOptimal);
  const LpSolution warm = solver.maximize(c, a, b, cold.basis);
  expect_bit_identical(warm, cold);
}

TEST(SimplexWarmStart, MinimizeWarmOverloadMatchesCold) {
  const std::vector<double> c{-1.0, -1.0};
  const Matrix a{{-1.0, 0.0}, {0.0, -1.0}, {1.0, 1.0}};
  const std::vector<double> b{-2.0, -1.0, 10.0};
  const SimplexSolver solver;
  const LpSolution cold = solver.minimize(c, a, b);
  ASSERT_EQ(cold.status, LpStatus::kOptimal);
  const LpSolution warm = solver.minimize(c, a, b, cold.basis);
  expect_bit_identical(warm, cold);
  EXPECT_TRUE(warm.warm_started);
}

}  // namespace
}  // namespace hetero::numeric
