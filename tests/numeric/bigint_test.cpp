#include "hetero/numeric/bigint.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>

namespace hetero::numeric {
namespace {

TEST(BigInt, DefaultConstructedIsZero) {
  const BigInt zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.signum(), 0);
  EXPECT_EQ(zero.to_string(), "0");
  EXPECT_EQ(zero.bit_length(), 0u);
}

TEST(BigInt, ConstructsFromInt64Extremes) {
  const BigInt max{std::numeric_limits<std::int64_t>::max()};
  const BigInt min{std::numeric_limits<std::int64_t>::min()};
  EXPECT_EQ(max.to_string(), "9223372036854775807");
  EXPECT_EQ(min.to_string(), "-9223372036854775808");
  EXPECT_EQ(max.to_int64(), std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(min.to_int64(), std::numeric_limits<std::int64_t>::min());
}

TEST(BigInt, RoundTripsDecimalStrings) {
  for (const char* text :
       {"0", "1", "-1", "4294967295", "4294967296", "18446744073709551616",
        "-340282366920938463463374607431768211456", "999999999999999999999999999999"}) {
    EXPECT_EQ(BigInt::from_string(text).to_string(), text) << text;
  }
}

TEST(BigInt, FromStringRejectsMalformedInput) {
  EXPECT_THROW(BigInt::from_string(""), std::invalid_argument);
  EXPECT_THROW(BigInt::from_string("-"), std::invalid_argument);
  EXPECT_THROW(BigInt::from_string("12a3"), std::invalid_argument);
  EXPECT_THROW(BigInt::from_string(" 1"), std::invalid_argument);
}

TEST(BigInt, AdditionCarriesAcrossLimbs) {
  const BigInt a = BigInt::from_string("4294967295");  // 2^32 - 1
  EXPECT_EQ((a + BigInt{1}).to_string(), "4294967296");
  const BigInt b = BigInt::from_string("18446744073709551615");  // 2^64 - 1
  EXPECT_EQ((b + b).to_string(), "36893488147419103230");
}

TEST(BigInt, SignedAdditionMatchesInt64) {
  std::mt19937_64 gen{42};
  std::uniform_int_distribution<std::int64_t> dist{-1'000'000'000, 1'000'000'000};
  for (int i = 0; i < 200; ++i) {
    const std::int64_t x = dist(gen);
    const std::int64_t y = dist(gen);
    EXPECT_EQ((BigInt{x} + BigInt{y}).to_int64(), x + y);
    EXPECT_EQ((BigInt{x} - BigInt{y}).to_int64(), x - y);
    EXPECT_EQ((BigInt{x} * BigInt{y}).to_int64(), x * y);
  }
}

TEST(BigInt, SubtractionToZeroNormalizes) {
  const BigInt a = BigInt::from_string("123456789012345678901234567890");
  EXPECT_TRUE((a - a).is_zero());
  EXPECT_EQ((a - a).to_string(), "0");
}

TEST(BigInt, MultiplicationMatchesKnownBigProduct) {
  const BigInt a = BigInt::from_string("123456789123456789");
  const BigInt b = BigInt::from_string("987654321987654321");
  EXPECT_EQ((a * b).to_string(), "121932631356500531347203169112635269");
}

TEST(BigInt, DivModSatisfiesEuclideanIdentityRandomized) {
  std::mt19937_64 gen{7};
  std::uniform_int_distribution<int> limbs_dist{1, 8};
  std::uniform_int_distribution<std::uint32_t> limb{};
  for (int trial = 0; trial < 300; ++trial) {
    // Build random multi-limb values via decimal strings of random chunks.
    auto random_big = [&](int limbs) {
      BigInt value{0};
      for (int i = 0; i < limbs; ++i) {
        value = value * BigInt{std::uint64_t{1} << 32} + BigInt{std::uint64_t{limb(gen)}};
      }
      return value;
    };
    BigInt dividend = random_big(limbs_dist(gen));
    BigInt divisor = random_big(limbs_dist(gen));
    if (divisor.is_zero()) divisor = BigInt{1};
    if (trial % 3 == 0) dividend = dividend.negated();
    if (trial % 5 == 0) divisor = divisor.negated();
    const auto [q, r] = div_mod(dividend, divisor);
    EXPECT_EQ(q * divisor + r, dividend);
    EXPECT_LT(r.abs(), divisor.abs());
    // Truncated division: remainder carries dividend's sign (or is zero).
    if (!r.is_zero()) EXPECT_EQ(r.signum(), dividend.signum());
  }
}

TEST(BigInt, DivModHandlesQhatCorrectionCases) {
  // Dividend/divisor chosen so the Knuth-D trial quotient needs adjustment:
  // top limbs equal forces q_hat == base - 1 paths.
  const BigInt a = (BigInt{1} << 96) - BigInt{1};
  const BigInt b = (BigInt{1} << 64) - BigInt{1};
  const auto [q, r] = div_mod(a, b);
  EXPECT_EQ(q * b + r, a);
  EXPECT_EQ(q.to_string(), "4294967296");  // 2^32
  EXPECT_EQ(r.to_string(), "4294967295");  // 2^32 - 1
}

TEST(BigInt, DivisionByZeroThrows) {
  EXPECT_THROW(BigInt{1} / BigInt{0}, std::domain_error);
  EXPECT_THROW(BigInt{1} % BigInt{0}, std::domain_error);
}

TEST(BigInt, ShiftsMatchMultiplicationByPowersOfTwo) {
  BigInt x = BigInt::from_string("123456789123456789");
  for (std::size_t k : {1u, 31u, 32u, 33u, 64u, 100u}) {
    EXPECT_EQ(x << k, x * BigInt::pow(BigInt{2}, k)) << k;
    EXPECT_EQ((x << k) >> k, x) << k;
  }
  EXPECT_TRUE((BigInt{1} >> 1).is_zero());
}

TEST(BigInt, ComparisonIsATotalOrder) {
  const BigInt values[] = {BigInt::from_string("-100000000000000000000"), BigInt{-3}, BigInt{0},
                           BigInt{7}, BigInt::from_string("100000000000000000000")};
  for (std::size_t i = 0; i < std::size(values); ++i) {
    for (std::size_t j = 0; j < std::size(values); ++j) {
      EXPECT_EQ(values[i] < values[j], i < j);
      EXPECT_EQ(values[i] == values[j], i == j);
    }
  }
}

TEST(BigInt, GcdMatchesKnownValues) {
  EXPECT_EQ(BigInt::gcd(BigInt{12}, BigInt{18}).to_string(), "6");
  EXPECT_EQ(BigInt::gcd(BigInt{-12}, BigInt{18}).to_string(), "6");
  EXPECT_EQ(BigInt::gcd(BigInt{0}, BigInt{5}).to_string(), "5");
  EXPECT_EQ(BigInt::gcd(BigInt::from_string("123456789123456789123456789"),
                        BigInt::from_string("987654321987654321"))
                .to_string(),
            "9");
  EXPECT_EQ(BigInt::gcd(BigInt::pow(BigInt{2}, 100) * BigInt{81},
                        BigInt::pow(BigInt{2}, 90) * BigInt{27})
                .to_string(),
            (BigInt::pow(BigInt{2}, 90) * BigInt{27}).to_string());
}

TEST(BigInt, PowComputesLargePowers) {
  EXPECT_EQ(BigInt::pow(BigInt{2}, 128).to_string(), "340282366920938463463374607431768211456");
  EXPECT_EQ(BigInt::pow(BigInt{10}, 30).to_string(), std::string("1") + std::string(30, '0'));
  EXPECT_EQ(BigInt::pow(BigInt{-3}, 3).to_int64(), -27);
  EXPECT_EQ(BigInt::pow(BigInt{7}, 0).to_int64(), 1);
}

TEST(BigInt, ToDoubleIsAccurateForLargeValues) {
  const BigInt big = BigInt::pow(BigInt{10}, 40);
  EXPECT_NEAR(big.to_double(), 1e40, 1e25);
  EXPECT_DOUBLE_EQ(BigInt{-123456}.to_double(), -123456.0);
}

TEST(BigInt, FromIntegralDoubleRoundTrips) {
  EXPECT_EQ(BigInt::from_integral_double(0.0).to_string(), "0");
  EXPECT_EQ(BigInt::from_integral_double(-9007199254740992.0).to_string(), "-9007199254740992");
  EXPECT_EQ(BigInt::from_integral_double(std::ldexp(1.0, 100)).to_double(),
            std::ldexp(1.0, 100));
  EXPECT_THROW(BigInt::from_integral_double(0.5), std::invalid_argument);
  EXPECT_THROW(BigInt::from_integral_double(std::nan("")), std::invalid_argument);
}

TEST(BigInt, FitsInt64Boundaries) {
  EXPECT_TRUE(BigInt::from_string("9223372036854775807").fits_int64());
  EXPECT_FALSE(BigInt::from_string("9223372036854775808").fits_int64());
  EXPECT_TRUE(BigInt::from_string("-9223372036854775808").fits_int64());
  EXPECT_FALSE(BigInt::from_string("-9223372036854775809").fits_int64());
  EXPECT_THROW((void)BigInt::from_string("9223372036854775808").to_int64(), std::overflow_error);
}

}  // namespace
}  // namespace hetero::numeric
