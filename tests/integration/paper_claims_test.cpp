// End-to-end audits of the paper's claims, treated as testable properties of
// the whole library rather than of any single module.

#include <gtest/gtest.h>

#include <random>

#include "hetero/core/hetero.h"
#include "hetero/random/samplers.h"

namespace hetero {
namespace {

using core::Environment;
using core::Prediction;
using core::Profile;

const Environment kEnv = Environment::paper_default();

// ---- Proposition 2: any single-machine speedup increases work production.

class Proposition2Test : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Proposition2Test, SpeedupsAlwaysIncreaseWork) {
  random::Xoshiro256StarStar rng{GetParam()};
  const auto rho = random::uniform_rho_values(6, rng, 0.05, 1.0);
  const Profile p{rho};
  const double base = core::x_measure(p, kEnv);
  for (std::size_t k = 0; k < p.size(); ++k) {
    const double phi = 0.5 * p.rho(k);
    EXPECT_GT(core::x_measure(p.with_additive_speedup(k, phi), kEnv), base);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Proposition2Test, ::testing::Range<std::uint64_t>(0, 25));

// ---- Theorem 3: under additive speedup, the fastest machine is the best
// target, across random clusters, phis, and environments.

class Theorem3Test
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double, double>> {};

TEST_P(Theorem3Test, FastestMachineIsBestAdditiveTarget) {
  const auto [seed, tau, pi] = GetParam();
  const Environment env{Environment::Params{.tau = tau, .pi = pi, .delta = 1.0}};
  random::Xoshiro256StarStar rng{seed};
  const auto rho = random::uniform_rho_values(5, rng, 0.1, 1.0);
  const Profile p{rho};
  const double phi = 0.9 * p.fastest();
  const auto eval = core::evaluate_additive_upgrades(p, phi, env);
  EXPECT_EQ(eval.best_power_index, p.size() - 1);
}

INSTANTIATE_TEST_SUITE_P(SeedsAndEnvironments, Theorem3Test,
                         ::testing::Combine(::testing::Range<std::uint64_t>(0, 10),
                                            ::testing::Values(1e-6, 1e-3, 0.2),
                                            ::testing::Values(1e-5, 1e-2)));

// ---- Theorem 4: the iff holds against brute-force X comparison for random
// speed pairs straddling the threshold.

TEST(Theorem4, BoundaryClassificationMatchesBruteForce) {
  const Environment env{Environment::Params{.tau = 0.2, .pi = 0.01, .delta = 1.0}};
  const double threshold = env.theorem4_threshold();
  random::Xoshiro256StarStar rng{99};
  int above = 0;
  int below = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const double rho_i = rng.uniform(0.01, 1.0);
    const double rho_j = rng.uniform(0.005, rho_i * 0.99);
    const double psi = rng.uniform(0.05, 0.95);
    const double key = psi * rho_i * rho_j;
    if (std::fabs(key - threshold) < 0.1 * threshold) continue;  // skip razor edge
    const double x_speed_slower = core::x_measure(std::vector<double>{psi * rho_i, rho_j}, env);
    const double x_speed_faster = core::x_measure(std::vector<double>{rho_i, psi * rho_j}, env);
    const bool faster_wins = x_speed_faster > x_speed_slower;
    EXPECT_EQ(faster_wins, key > threshold) << rho_i << " " << rho_j << " " << psi;
    (key > threshold ? above : below) += 1;
  }
  // The sample must actually exercise both regimes.
  EXPECT_GT(above, 10);
  EXPECT_GT(below, 10);
}

// ---- Proposition 3 + Theorem 5 consistency on equal-mean pairs.

TEST(Theorem5, SymmetricFunctionVerdictImpliesLargerVariance) {
  // Thm 5(1): if Prop. 3 decides between equal-mean clusters, the winner has
  // the larger variance.
  random::Xoshiro256StarStar rng{123};
  int decided = 0;
  for (int trial = 0; trial < 400 && decided < 40; ++trial) {
    const auto pair = random::equal_mean_pair(4, rng);
    const Prediction verdict = core::symmetric_function_predictor(pair.first, pair.second);
    if (verdict == Prediction::kInconclusive) continue;
    ++decided;
    if (verdict == Prediction::kFirstWins) {
      EXPECT_GT(pair.first.variance(), pair.second.variance());
    } else {
      EXPECT_LT(pair.first.variance(), pair.second.variance());
    }
  }
  EXPECT_GT(decided, 0);
}

TEST(Theorem5, TwoMachineBiconditionalOnRandomEqualMeanPairs) {
  random::Xoshiro256StarStar rng{321};
  for (int trial = 0; trial < 100; ++trial) {
    const auto pair = random::equal_mean_pair(2, rng);
    if (std::fabs(pair.first.variance() - pair.second.variance()) < 1e-12) continue;
    const Prediction by_variance = core::variance_predictor(pair.first, pair.second);
    const Prediction by_x = core::x_value_ground_truth(pair.first, pair.second, kEnv);
    EXPECT_EQ(by_variance, by_x);
  }
}

TEST(Corollary1, HeterogeneityLendsPowerAtEveryMeanAndSpread) {
  // Any 2-machine heterogeneous cluster beats the homogeneous cluster with
  // the same mean speed.
  for (double mean : {0.2, 0.5, 0.8}) {
    for (double spread : {0.01, 0.1, 0.19}) {
      const Profile heterogeneous{{mean + spread, mean - spread}};
      const Profile homogeneous = Profile::homogeneous(2, mean);
      EXPECT_GT(core::x_measure(heterogeneous, kEnv), core::x_measure(homogeneous, kEnv))
          << mean << " " << spread;
    }
  }
}

// ---- Section 4's minorization counterexample, plus transitivity sanity.

TEST(Section4, MeanSpeedIsNotAValidPredictor) {
  // <0.99, 0.02> has the *worse* (larger) mean rho yet outperforms <0.5, 0.5>.
  const Profile p1{{0.99, 0.02}};
  const Profile p2{{0.5, 0.5}};
  EXPECT_GT(p1.mean(), p2.mean());
  EXPECT_GT(core::x_measure(p1, kEnv), core::x_measure(p2, kEnv));
  EXPECT_LT(core::hecr(p1, kEnv), core::hecr(p2, kEnv));
}

TEST(Section4, MinorizationImpliesXOrderOnRandomPairs) {
  random::Xoshiro256StarStar rng{555};
  int exercised = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const auto rho = random::uniform_rho_values(5, rng, 0.1, 0.9);
    const Profile p{rho};
    // Construct a strict minorizer by shaving every machine.
    std::vector<double> better(rho);
    for (double& v : better) v *= rng.uniform(0.7, 0.999);
    const Profile q{better};
    if (!q.minorizes(p)) continue;
    ++exercised;
    EXPECT_GT(core::x_measure(q, kEnv), core::x_measure(p, kEnv));
  }
  EXPECT_GT(exercised, 150);
}

// ---- Structural properties of the X-measure under cluster composition.

TEST(XMeasure, SubadditiveUnderClusterUnion) {
  // Merging two clusters behind ONE channel never yields the sum of their
  // separate powers: from the product identity, (A - td)X = 1 - prod f and
  // 1 - pq <= (1 - p) + (1 - q) for p, q in (0, 1].  Diminishing returns of
  // piling machines onto a single server link.
  random::Xoshiro256StarStar rng{808};
  for (int trial = 0; trial < 50; ++trial) {
    const auto r1 = random::uniform_rho_values(1 + rng.below(6), rng, 0.05, 1.0);
    const auto r2 = random::uniform_rho_values(1 + rng.below(6), rng, 0.05, 1.0);
    std::vector<double> merged(r1);
    merged.insert(merged.end(), r2.begin(), r2.end());
    const double x_union = core::x_measure(merged, kEnv);
    const double x_split = core::x_measure(r1, kEnv) + core::x_measure(r2, kEnv);
    EXPECT_LE(x_union, x_split * (1.0 + 1e-12));
    // ...but the union always beats either part alone (Prop. 2's spirit).
    EXPECT_GT(x_union, core::x_measure(r1, kEnv));
    EXPECT_GT(x_union, core::x_measure(r2, kEnv));
  }
}

TEST(XMeasure, AddingAMachineAlwaysHelpsButBoundedly) {
  // X grows with every added machine yet stays below the no-communication
  // ideal sum of speeds 1/rho... (X < sum 1/(B rho) + slack).
  random::Xoshiro256StarStar rng{909};
  std::vector<double> rho = random::uniform_rho_values(1, rng, 0.1, 1.0);
  double previous = core::x_measure(rho, kEnv);
  double ideal = 1.0 / (kEnv.b() * rho[0]);
  for (int added = 0; added < 30; ++added) {
    rho.push_back(rng.uniform(0.1, 1.0));
    ideal += 1.0 / (kEnv.b() * rho.back());
    const double x = core::x_measure(rho, kEnv);
    EXPECT_GT(x, previous);
    EXPECT_LT(x, ideal);
    previous = x;
  }
}

// ---- HECR consistency: the HECR ordering and the X ordering agree.

TEST(Hecr, OrderingAgreesWithXOrdering) {
  random::Xoshiro256StarStar rng{777};
  for (int trial = 0; trial < 100; ++trial) {
    const auto r1 = random::uniform_rho_values(6, rng, 0.05, 1.0);
    const auto r2 = random::uniform_rho_values(6, rng, 0.05, 1.0);
    const Profile p1{r1};
    const Profile p2{r2};
    const bool x_says_first = core::x_measure(p1, kEnv) > core::x_measure(p2, kEnv);
    const bool hecr_says_first = core::hecr(p1, kEnv) < core::hecr(p2, kEnv);
    EXPECT_EQ(x_says_first, hecr_says_first);
  }
}

}  // namespace
}  // namespace hetero
