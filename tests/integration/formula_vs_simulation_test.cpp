// Cross-layer consistency: Theorem 2's algebra (core), the closed-form FIFO
// planner (protocol), the LP solver (protocol/numeric), and the causal
// discrete-event simulator (sim) must all tell the same story.

#include <gtest/gtest.h>

#include "hetero/core/hetero.h"
#include "hetero/numeric/stable.h"
#include "hetero/protocol/fifo.h"
#include "hetero/protocol/lp_solver.h"
#include "hetero/random/samplers.h"
#include "hetero/sim/worksharing.h"

namespace hetero {
namespace {

using core::Environment;
using core::Profile;

const Environment kEnv = Environment::paper_default();

class FourWayConsistencyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FourWayConsistencyTest, FormulaPlannerLpAndSimulatorAgree) {
  random::Xoshiro256StarStar rng{GetParam()};
  const std::size_t n = 2 + GetParam() % 4;
  const auto rho = random::uniform_rho_values(n, rng, 0.1, 1.0);
  const double lifespan = rng.uniform(10.0, 1000.0);

  // (1) Theorem 2.
  const double by_formula = core::work_production(lifespan, Profile{rho}, kEnv);
  // (2) Closed-form FIFO planner.
  const double by_planner = protocol::fifo_total_work(rho, kEnv, lifespan);
  // (3) Fixed-order LP.
  const auto lp = protocol::solve_protocol_lp(rho, kEnv, lifespan,
                                              protocol::ProtocolOrders::fifo(n));
  ASSERT_EQ(lp.status, numeric::LpStatus::kOptimal);
  // (4) Causal simulation of the planner's allocations.
  const auto allocations = protocol::fifo_allocations(rho, kEnv, lifespan);
  const auto sim = sim::simulate_worksharing(rho, kEnv, allocations,
                                             protocol::ProtocolOrders::fifo(n));

  EXPECT_LT(numeric::relative_difference(by_planner, by_formula), 1e-9);
  EXPECT_LT(numeric::relative_difference(lp.total_work, by_formula), 1e-6);
  EXPECT_LT(numeric::relative_difference(sim.completed_work(lifespan), by_formula), 1e-9);
  EXPECT_TRUE(sim.trace.channel_exclusive());
  EXPECT_LE(sim.makespan, lifespan * (1.0 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FourWayConsistencyTest, ::testing::Range<std::uint64_t>(0, 20));

TEST(FifoVsLifo, SimulatedLifoDeliversTheLpOptimumAndLosesToFifo) {
  const std::vector<double> speeds{1.0, 0.5, 0.25};
  const double lifespan = 120.0;
  const auto lifo_lp = protocol::solve_protocol_lp(speeds, kEnv, lifespan,
                                                   protocol::ProtocolOrders::lifo(3));
  ASSERT_EQ(lifo_lp.status, numeric::LpStatus::kOptimal);
  // Execute the LIFO plan causally.
  std::vector<double> allocations;
  for (const auto& t : lifo_lp.schedule.timelines) allocations.push_back(t.work);
  const auto sim = sim::simulate_worksharing(speeds, kEnv, allocations,
                                             protocol::ProtocolOrders::lifo(3));
  EXPECT_NEAR(sim.completed_work(lifespan), lifo_lp.total_work, 1e-6 * lifo_lp.total_work);
  EXPECT_LE(sim.makespan, lifespan * (1.0 + 1e-6));
  // Theorem 1: FIFO beats (or ties) LIFO.
  EXPECT_GE(protocol::fifo_total_work(speeds, kEnv, lifespan),
            lifo_lp.total_work - 1e-9);
  EXPECT_EQ(sim.finishing_order, (std::vector<std::size_t>{2, 1, 0}));
}

TEST(TruncatedLifespan, SimulatorLosesExactlyTheUnfinishedLoads) {
  // Plan for L, run the episode, and count completions against a shorter
  // horizon: the completed work must drop load by load.
  const std::vector<double> speeds{1.0, 0.6, 0.3};
  const double lifespan = 90.0;
  const auto allocations = protocol::fifo_allocations(speeds, kEnv, lifespan);
  const auto sim = sim::simulate_worksharing(speeds, kEnv, allocations,
                                             protocol::ProtocolOrders::fifo(3));
  ASSERT_EQ(sim.outcomes.size(), 3u);
  const double all = sim.completed_work(lifespan);
  const double drop_last = sim.completed_work(sim.outcomes[2].result_end - 1e-5);
  const double drop_two = sim.completed_work(sim.outcomes[1].result_end - 1e-5);
  EXPECT_NEAR(all - drop_last, sim.outcomes[2].work, 1e-9 * all);
  EXPECT_NEAR(all - drop_two, sim.outcomes[2].work + sim.outcomes[1].work, 1e-9 * all);
}

TEST(EnvironmentSweep, ConsistencyHoldsAwayFromTable1Parameters) {
  // Heavier communication costs (tau = 0.05 of a task time) still satisfy
  // formula == planner == simulator, as long as the FIFO plan is feasible.
  const Environment heavy{Environment::Params{.tau = 0.05, .pi = 0.02, .delta = 0.8}};
  const std::vector<double> speeds{1.0, 0.5, 0.25, 0.125};
  const double lifespan = 300.0;
  const protocol::Schedule plan = protocol::fifo_schedule(speeds, heavy, lifespan);
  ASSERT_TRUE(plan.validate(heavy).empty());
  const auto sim = sim::simulate_schedule(plan, heavy);
  const double formula = core::work_production(lifespan, Profile{speeds}, heavy);
  EXPECT_LT(numeric::relative_difference(sim.completed_work(lifespan), formula), 1e-9);
}

TEST(Table3EndToEnd, SimulatedWorkRatioMatchesHecrPrediction) {
  // The HECR is a *prediction* about equivalent homogeneous clusters; check
  // it against simulated work: an n-machine homogeneous cluster at the HECR
  // speed completes (almost exactly) the same work as the original cluster.
  const std::size_t n = 8;
  const Profile heterogeneous = Profile::harmonic(n);
  const double rho_c = core::hecr(heterogeneous, kEnv);
  const double lifespan = 100.0;

  std::vector<double> hetero_speeds(heterogeneous.values().begin(),
                                    heterogeneous.values().end());
  const auto hetero_sim = sim::simulate_worksharing(
      hetero_speeds, kEnv, protocol::fifo_allocations(hetero_speeds, kEnv, lifespan),
      protocol::ProtocolOrders::fifo(n));

  const std::vector<double> homo_speeds(n, rho_c);
  const auto homo_sim = sim::simulate_worksharing(
      homo_speeds, kEnv, protocol::fifo_allocations(homo_speeds, kEnv, lifespan),
      protocol::ProtocolOrders::fifo(n));

  EXPECT_LT(numeric::relative_difference(hetero_sim.completed_work(lifespan),
                                         homo_sim.completed_work(lifespan)),
            1e-6);
}

}  // namespace
}  // namespace hetero
