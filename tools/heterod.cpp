// heterod — the planning-as-a-service daemon.
//
// Serves the hetero library's planning queries over JSON-over-HTTP (see
// src/service/include/hetero/service/planner.h for the endpoint catalog).
// SIGTERM/SIGINT initiate a graceful drain: stop accepting, finish requests
// in flight, exit 0.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

#include "hetero/service/planner.h"
#include "hetero/service/server.h"

namespace {

hetero::service::Server* g_server = nullptr;

extern "C" void handle_signal(int) {
  if (g_server != nullptr) g_server->request_stop();
}

void usage(std::FILE* out) {
  std::fputs(
      "usage: heterod [options]\n"
      "\n"
      "Serve the hetero planning API over HTTP.\n"
      "\n"
      "options:\n"
      "  --bind ADDR        bind address (default 127.0.0.1)\n"
      "  --port N           listen port; 0 picks an ephemeral port (default 8080)\n"
      "  --threads N        worker threads; 0 = hardware concurrency (default 0)\n"
      "  --cache-entries N  plan-cache capacity in entries (default 4096)\n"
      "  --cache-shards N   plan-cache shard count (default 16)\n"
      "  --env TAU,PI,DELTA override the model environment (default: paper Table 1)\n"
      "  --max-body BYTES   request body limit (default 1048576)\n"
      "\n"
      "overload + robustness:\n"
      "  --max-connections N  connection cap; over it new connections are\n"
      "                       answered 503 and closed (default 4x threads)\n"
      "  --max-inflight N     planning-request watermark; over it requests\n"
      "                       shed 503 + Retry-After (default 0 = unlimited)\n"
      "  --max-heavy N        in-flight cap for /v1/allocate and /v1/upgrade\n"
      "                       (default 0 = unlimited)\n"
      "  --lp-floor-us N      assumed minimum exact-LP cost for deadline\n"
      "                       degrade decisions (default 2000)\n"
      "  --read-timeout-ms N  slow-loris bound: a started request must finish\n"
      "                       arriving within N ms or gets 408 (default 10000)\n"
      "  --idle-timeout-ms N  reap keep-alive connections idle this long\n"
      "                       (default 60000)\n"
      "  --decision-log FILE  dump the shed/degrade decision log here on exit\n"
      "  -h, --help         show this help\n"
      "\n"
      "endpoints: POST /v1/x /v1/makespan /v1/hecr /v1/allocate /v1/upgrade;\n"
      "GET /healthz /metrics /version.  SIGTERM drains and exits 0.\n",
      out);
}

[[nodiscard]] long parse_long(const std::string& text, const char* flag) {
  char* end = nullptr;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || value < 0) {
    std::fprintf(stderr, "heterod: invalid value for %s: %s\n", flag, text.c_str());
    std::exit(2);
  }
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  hetero::service::PlannerConfig planner_config;
  hetero::service::ServerConfig server_config;
  server_config.port = 8080;
  std::string decision_log_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "heterod: %s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "-h" || arg == "--help") {
      usage(stdout);
      return 0;
    } else if (arg == "--bind") {
      server_config.bind_address = next("--bind");
    } else if (arg == "--port") {
      const long port = parse_long(next("--port"), "--port");
      if (port > 65535) {
        std::fprintf(stderr, "heterod: --port out of range: %ld\n", port);
        return 2;
      }
      server_config.port = static_cast<std::uint16_t>(port);
    } else if (arg == "--threads") {
      server_config.threads = static_cast<std::size_t>(parse_long(next("--threads"), "--threads"));
    } else if (arg == "--cache-entries") {
      planner_config.cache_capacity =
          static_cast<std::size_t>(parse_long(next("--cache-entries"), "--cache-entries"));
    } else if (arg == "--cache-shards") {
      planner_config.cache_shards =
          static_cast<std::size_t>(parse_long(next("--cache-shards"), "--cache-shards"));
    } else if (arg == "--max-body") {
      server_config.limits.max_body_bytes =
          static_cast<std::size_t>(parse_long(next("--max-body"), "--max-body"));
    } else if (arg == "--max-connections") {
      server_config.max_connections =
          static_cast<std::size_t>(parse_long(next("--max-connections"), "--max-connections"));
    } else if (arg == "--max-inflight") {
      planner_config.overload.max_inflight =
          static_cast<std::size_t>(parse_long(next("--max-inflight"), "--max-inflight"));
    } else if (arg == "--max-heavy") {
      planner_config.overload.max_inflight_heavy =
          static_cast<std::size_t>(parse_long(next("--max-heavy"), "--max-heavy"));
    } else if (arg == "--lp-floor-us") {
      planner_config.overload.lp_cost_floor_us = parse_long(next("--lp-floor-us"), "--lp-floor-us");
    } else if (arg == "--read-timeout-ms") {
      server_config.read_timeout_ms =
          static_cast<int>(parse_long(next("--read-timeout-ms"), "--read-timeout-ms"));
    } else if (arg == "--idle-timeout-ms") {
      server_config.idle_timeout_ms =
          static_cast<int>(parse_long(next("--idle-timeout-ms"), "--idle-timeout-ms"));
    } else if (arg == "--decision-log") {
      decision_log_path = next("--decision-log");
    } else if (arg == "--env") {
      const std::string spec = next("--env");
      hetero::core::Environment::Params params;
      if (std::sscanf(spec.c_str(), "%lf,%lf,%lf", &params.tau, &params.pi, &params.delta) != 3) {
        std::fprintf(stderr, "heterod: --env expects TAU,PI,DELTA: %s\n", spec.c_str());
        return 2;
      }
      try {
        planner_config.env = hetero::core::Environment{params};
      } catch (const std::exception& error) {
        std::fprintf(stderr, "heterod: %s\n", error.what());
        return 2;
      }
    } else {
      std::fprintf(stderr, "heterod: unknown option: %s\n", arg.c_str());
      usage(stderr);
      return 2;
    }
  }

  try {
    hetero::service::Planner planner{planner_config};
    hetero::service::Server server{planner, server_config};
    server.listen();

    g_server = &server;
    struct sigaction action{};
    action.sa_handler = handle_signal;
    ::sigaction(SIGTERM, &action, nullptr);
    ::sigaction(SIGINT, &action, nullptr);
    ::signal(SIGPIPE, SIG_IGN);

    std::fprintf(stderr, "%s listening on %s:%u\n",
                 hetero::service::Planner::version_string().c_str(),
                 server_config.bind_address.c_str(), static_cast<unsigned>(server.port()));
    std::fflush(stderr);
    server.serve();
    if (!decision_log_path.empty()) {
      std::FILE* file = std::fopen(decision_log_path.c_str(), "w");
      if (file != nullptr) {
        const std::string dump = planner.overload().decision_log().dump();
        std::fwrite(dump.data(), 1, dump.size(), file);
        std::fclose(file);
      } else {
        std::fprintf(stderr, "heterod: cannot write decision log to %s\n",
                     decision_log_path.c_str());
      }
    }
    std::fprintf(stderr, "heterod: drained, exiting\n");
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "heterod: fatal: %s\n", error.what());
    return 1;
  }
}
