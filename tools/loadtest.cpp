// loadtest — closed-loop load generator for heterod.
//
// Opens N keep-alive connections, drives each with a worker thread, and
// optionally paces the aggregate request stream to a target qps (a shared
// ticket clock: request k is due at start + k/qps, whichever thread draws
// it).  Unpaced (--qps 0) each connection issues requests back to back.
// Reports aggregate throughput, latency quantiles (p50/p95/p99), and error
// counts as a JSON document — the CI service-smoke job archives it and
// gates on the tool's exit code.
//
// Failure taxonomy: shed answers (503/429 — the server protecting itself)
// and degraded answers (X-Hetero-Degraded — full answer traded for meeting
// a deadline) are intentional service behavior and are reported separately;
// only HARD failures (transport errors and non-shed 5xx) flip the exit code
// to nonzero.  A loadtest that drives heterod into overload and sees clean
// sheds is a PASSING run.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "hetero/service/client.h"
#include "hetero/service/json.h"

namespace {

using Clock = std::chrono::steady_clock;

struct Options {
  std::string host = "127.0.0.1";
  std::uint16_t port = 8080;
  std::size_t connections = 4;
  double qps = 0.0;        // 0 = unthrottled
  double duration_s = 10.0;
  std::string target = "/v1/x";
  std::string body = R"({"profile": [1.0, 2.0, 4.0, 8.0]})";
  std::string output;      // empty = stdout
  std::int64_t deadline_ms = 0;  // > 0: X-Hetero-Deadline-Ms on every request
  std::size_t retries = 0;       // resilient-client retries per request
};

struct WorkerResult {
  std::vector<double> latencies_us;
  std::uint64_t status_2xx = 0;
  std::uint64_t status_4xx = 0;
  std::uint64_t status_5xx = 0;   // hard 5xx only (503/429 count as shed)
  std::uint64_t shed = 0;         // 503/429 after the retry schedule
  std::uint64_t degraded = 0;     // answered with X-Hetero-Degraded
  std::uint64_t transport_errors = 0;
  std::uint64_t breaker_fastfails = 0;
  std::uint64_t retries = 0;
  std::uint64_t sheds_seen = 0;   // raw 503/429 observations (any attempt)
  std::uint64_t cache_hits = 0;
};

void usage(std::FILE* out) {
  std::fputs(
      "usage: loadtest [options]\n"
      "\n"
      "Closed-loop load generator for heterod.\n"
      "\n"
      "options:\n"
      "  --host ADDR       server address (default 127.0.0.1)\n"
      "  --port N          server port (default 8080)\n"
      "  --connections N   concurrent keep-alive connections (default 4)\n"
      "  --qps Q           aggregate request rate; 0 = unthrottled (default 0)\n"
      "  --duration S      seconds to run (default 10)\n"
      "  --target PATH     endpoint (default /v1/x)\n"
      "  --body JSON       POST body; empty = GET (default a 4-machine /v1/x query)\n"
      "  --deadline-ms N   send X-Hetero-Deadline-Ms: N on every request\n"
      "  --retries N       resilient-client retries per request (default 0)\n"
      "  --output FILE     write the JSON report here (default stdout)\n"
      "  -h, --help        show this help\n",
      out);
}

[[nodiscard]] double parse_double(const std::string& text, const char* flag) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || !std::isfinite(value) || value < 0.0) {
    std::fprintf(stderr, "loadtest: invalid value for %s: %s\n", flag, text.c_str());
    std::exit(2);
  }
  return value;
}

[[nodiscard]] double quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

void run_worker(const Options& options, std::size_t worker_index, Clock::time_point start,
                Clock::time_point deadline, std::atomic<std::uint64_t>& tickets,
                WorkerResult& result) {
  using hetero::service::Disposition;
  hetero::service::ClientConfig client_config;
  client_config.backoff.max_retries = options.retries;
  client_config.deadline_ms = options.deadline_ms;
  client_config.jitter_seed = 0x9e3779b97f4a7c15ull ^ (worker_index + 1);
  hetero::service::Client client{options.host, options.port, client_config};
  const bool is_post = !options.body.empty();
  while (Clock::now() < deadline) {
    if (options.qps > 0.0) {
      const std::uint64_t ticket = tickets.fetch_add(1, std::memory_order_relaxed);
      const auto due = start + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(
                                       static_cast<double>(ticket) / options.qps));
      if (due >= deadline) break;
      std::this_thread::sleep_until(due);
    }
    const Clock::time_point begin = Clock::now();
    const hetero::service::Client::Outcome outcome =
        is_post ? client.post(options.target, options.body) : client.get(options.target);
    const double us = std::chrono::duration<double, std::micro>(Clock::now() - begin).count();
    switch (outcome.disposition) {
      case Disposition::kOk:
      case Disposition::kDegraded:
        result.latencies_us.push_back(us);
        if (outcome.disposition == Disposition::kDegraded) ++result.degraded;
        if (outcome.response.status >= 500) ++result.status_5xx;  // hard 5xx
        else if (outcome.response.status >= 400) ++result.status_4xx;
        else ++result.status_2xx;
        if (outcome.response.header("X-Hetero-Cache") == "hit") ++result.cache_hits;
        break;
      case Disposition::kShed:
        ++result.shed;
        break;
      case Disposition::kTransport:
        ++result.transport_errors;
        break;
      case Disposition::kCircuitOpen:
        ++result.breaker_fastfails;
        break;
    }
  }
  result.retries = client.stats().retries;
  result.sheds_seen = client.stats().sheds_seen;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "loadtest: %s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "-h" || arg == "--help") {
      usage(stdout);
      return 0;
    } else if (arg == "--host") {
      options.host = next("--host");
    } else if (arg == "--port") {
      const double port = parse_double(next("--port"), "--port");
      if (port > 65535.0 || port != std::floor(port)) {
        std::fprintf(stderr, "loadtest: --port out of range\n");
        return 2;
      }
      options.port = static_cast<std::uint16_t>(port);
    } else if (arg == "--connections") {
      options.connections =
          std::max<std::size_t>(1, static_cast<std::size_t>(
                                       parse_double(next("--connections"), "--connections")));
    } else if (arg == "--qps") {
      options.qps = parse_double(next("--qps"), "--qps");
    } else if (arg == "--duration") {
      options.duration_s = parse_double(next("--duration"), "--duration");
    } else if (arg == "--target") {
      options.target = next("--target");
    } else if (arg == "--body") {
      options.body = next("--body");
    } else if (arg == "--deadline-ms") {
      options.deadline_ms =
          static_cast<std::int64_t>(parse_double(next("--deadline-ms"), "--deadline-ms"));
    } else if (arg == "--retries") {
      options.retries =
          static_cast<std::size_t>(parse_double(next("--retries"), "--retries"));
    } else if (arg == "--output") {
      options.output = next("--output");
    } else {
      std::fprintf(stderr, "loadtest: unknown option: %s\n", arg.c_str());
      usage(stderr);
      return 2;
    }
  }

  const Clock::time_point start = Clock::now();
  const Clock::time_point deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(options.duration_s));
  std::atomic<std::uint64_t> tickets{0};
  std::vector<WorkerResult> results(options.connections);
  std::vector<std::thread> workers;
  workers.reserve(options.connections);
  for (std::size_t i = 0; i < options.connections; ++i) {
    workers.emplace_back(run_worker, std::cref(options), i, start, deadline, std::ref(tickets),
                         std::ref(results[i]));
  }
  for (std::thread& worker : workers) worker.join();
  const double elapsed_s = std::chrono::duration<double>(Clock::now() - start).count();

  WorkerResult total;
  for (const WorkerResult& r : results) {
    total.latencies_us.insert(total.latencies_us.end(), r.latencies_us.begin(),
                              r.latencies_us.end());
    total.status_2xx += r.status_2xx;
    total.status_4xx += r.status_4xx;
    total.status_5xx += r.status_5xx;
    total.shed += r.shed;
    total.degraded += r.degraded;
    total.transport_errors += r.transport_errors;
    total.breaker_fastfails += r.breaker_fastfails;
    total.retries += r.retries;
    total.sheds_seen += r.sheds_seen;
    total.cache_hits += r.cache_hits;
  }
  std::sort(total.latencies_us.begin(), total.latencies_us.end());
  const std::uint64_t completed = total.status_2xx + total.status_4xx + total.status_5xx;
  const std::uint64_t attempts =
      completed + total.shed + total.transport_errors + total.breaker_fastfails;

  using hetero::service::Json;
  Json report = Json::object();
  report.set("target", Json{options.target});
  report.set("connections", Json{options.connections});
  report.set("qps_target", Json{options.qps});
  report.set("duration_s", Json{elapsed_s});
  report.set("requests", Json{completed});
  report.set("qps_achieved", Json{elapsed_s > 0.0 ? static_cast<double>(completed) / elapsed_s
                                                  : 0.0});
  report.set("status_2xx", Json{total.status_2xx});
  report.set("status_4xx", Json{total.status_4xx});
  report.set("status_5xx", Json{total.status_5xx});
  // Intentional service behavior, reported apart from hard failures.
  report.set("shed", Json{total.shed});
  report.set("sheds_seen", Json{total.sheds_seen});
  report.set("degraded", Json{total.degraded});
  report.set("retries", Json{total.retries});
  report.set("breaker_fastfails", Json{total.breaker_fastfails});
  report.set("deadline_ms", Json{static_cast<double>(options.deadline_ms)});
  report.set("transport_errors", Json{total.transport_errors});
  report.set("error_rate",
             Json{attempts > 0 ? static_cast<double>(total.status_5xx + total.transport_errors) /
                                     static_cast<double>(attempts)
                               : 0.0});
  report.set("cache_hits", Json{total.cache_hits});
  Json latency = Json::object();
  latency.set("p50_us", Json{quantile(total.latencies_us, 0.50)});
  latency.set("p95_us", Json{quantile(total.latencies_us, 0.95)});
  latency.set("p99_us", Json{quantile(total.latencies_us, 0.99)});
  latency.set("max_us", Json{total.latencies_us.empty() ? 0.0 : total.latencies_us.back()});
  report.set("latency", std::move(latency));

  const std::string text = report.dump() + "\n";
  if (options.output.empty()) {
    std::fputs(text.c_str(), stdout);
  } else {
    std::FILE* file = std::fopen(options.output.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "loadtest: cannot write %s\n", options.output.c_str());
      return 1;
    }
    std::fputs(text.c_str(), file);
    std::fclose(file);
  }

  // Nonzero exit only on HARD failures (transport errors and non-shed 5xx);
  // sheds and degraded answers are the overload layer doing its job, so CI
  // can drive the server into saturation and still gate on this exit code.
  return (total.status_5xx + total.transport_errors) > 0 ? 1 : 0;
}
