// chaos_soak — deterministic fault-injection soak for heterod.
//
// Hosts a Planner + Server in-process, puts a seeded ChaosProxy in front of
// it, and drives a serial request sequence through the proxy.  Every fault
// the proxy injects is a pure function of (seed, connection index), and the
// driver is serial (one connection per request, in order), so two runs with
// the same seed see the same faults at the same byte offsets.  The soak
// asserts the three robustness guarantees the hardening layer makes:
//
//   zero hangs          a watchdog aborts the process if the run exceeds its
//                       budget — every request either answers or fails fast
//   zero wrong answers  /v1/x answers are checked bit-for-bit against
//                       core::x_measure_serial and /v1/allocate degraded
//                       answers against core::fifo_allocations_in_order;
//                       faults may kill a request, never corrupt one
//   deterministic decisions  the server's shed/degrade decision log is
//                       byte-identical across runs with the same seed
//                       (--replay FILE compares against a previous run)
//
// Request mix (request i, connection i):
//   i % 4 == 0, 1   POST /v1/x, seeded profile — ground-truth check
//   i % 4 == 2      POST /v1/x with X-Hetero-Deadline-Ms: 0 — must shed 503
//   i % 4 == 3      POST /v1/allocate exact with X-Hetero-Deadline-Ms: 1 —
//                   budget below the LP floor, must answer degraded
//
// Transport failures are expected under reset/kill plans and are NOT
// failures; a transport error under a clean/torn/stall plan is (the request
// should have survived), counted as unexpected_transport_errors.
//
// Exit codes: 0 clean, 1 wrong answers or unexpected transport errors,
// 2 replay mismatch, 3 watchdog fired (hang).

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "hetero/core/batch.h"
#include "hetero/core/environment.h"
#include "hetero/core/power.h"
#include "hetero/random/rng.h"
#include "hetero/service/chaos.h"
#include "hetero/service/client.h"
#include "hetero/service/json.h"
#include "hetero/service/planner.h"
#include "hetero/service/server.h"

namespace {

using hetero::service::ChaosConfig;
using hetero::service::ChaosKind;
using hetero::service::ChaosPlan;
using hetero::service::ChaosProxy;
using hetero::service::ClientResponse;
using hetero::service::HttpClient;
using hetero::service::Json;

struct Options {
  std::uint64_t seed = 1;
  std::size_t requests = 400;
  double budget_s = 90.0;       // watchdog: the whole run must finish inside this
  int stall_ms = 50;
  int force_kind = -1;
  std::string decision_log;     // write the decision log here (empty = skip)
  std::string replay;           // compare the decision log against this file
  std::string output;           // JSON report (empty = stdout)
};

void usage(std::FILE* out) {
  std::fputs(
      "usage: chaos_soak [options]\n"
      "\n"
      "Deterministic fault-injection soak for heterod (in-process).\n"
      "\n"
      "options:\n"
      "  --seed N            fault-plan seed (default 1)\n"
      "  --requests N        serial requests to drive (default 400)\n"
      "  --budget S          watchdog budget in seconds; exceeding it means a\n"
      "                      hang and aborts with exit 3 (default 90)\n"
      "  --stall-ms N        kStallRequest pause (default 50)\n"
      "  --force-kind NAME   force one fault kind for every connection:\n"
      "                      clean|torn|stall|reset-request|kill-response\n"
      "  --decision-log FILE write the server's shed/degrade decision log\n"
      "  --replay FILE       compare the decision log to FILE; mismatch = exit 2\n"
      "  --output FILE       write the JSON report here (default stdout)\n"
      "  -h, --help          show this help\n",
      out);
}

[[nodiscard]] int parse_kind(const std::string& name) {
  for (int kind = 0; kind < hetero::service::kChaosKindCount; ++kind) {
    if (name == to_string(static_cast<ChaosKind>(kind))) return kind;
  }
  std::fprintf(stderr, "chaos_soak: unknown fault kind: %s\n", name.c_str());
  std::exit(2);
}

/// Seeded strictly-decreasing profile for request i — already canonical, so
/// the served answer must be bit-identical to the serial evaluator.
[[nodiscard]] std::vector<double> profile_for(std::uint64_t seed, std::uint64_t i) {
  std::uint64_t state = seed ^ (0xd1b54a32d192ed03ull * (i + 1));
  const std::size_t n = 2 + hetero::random::splitmix64(state) % 7;
  std::vector<double> speeds(n);
  double previous = 64.0;
  for (double& speed : speeds) {
    // Step down by a seeded amount in [1/8, 2]; eighths stay exact in binary.
    previous -= static_cast<double>(1 + hetero::random::splitmix64(state) % 16) / 8.0;
    speed = previous;
  }
  return speeds;
}

[[nodiscard]] std::string profile_body(const std::vector<double>& speeds) {
  Json array = Json::array();
  for (const double speed : speeds) array.push_back(Json{speed});
  Json body = Json::object();
  body.set("profile", std::move(array));
  return body.dump();
}

struct Tally {
  std::uint64_t ok = 0;                  // full-fidelity verified answers
  std::uint64_t degraded_ok = 0;         // expected degraded answers, verified
  std::uint64_t sheds = 0;               // expected deadline sheds (503)
  std::uint64_t transport_expected = 0;  // under reset/kill plans
  std::uint64_t transport_unexpected = 0;
  std::uint64_t wrong_answers = 0;
  std::vector<std::string> complaints;   // first few wrong-answer details

  void wrong(std::uint64_t i, const std::string& what) {
    ++wrong_answers;
    if (complaints.size() < 8) {
      complaints.push_back("request " + std::to_string(i) + ": " + what);
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "chaos_soak: %s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "-h" || arg == "--help") {
      usage(stdout);
      return 0;
    } else if (arg == "--seed") {
      options.seed = std::strtoull(next("--seed").c_str(), nullptr, 10);
    } else if (arg == "--requests") {
      options.requests = std::strtoull(next("--requests").c_str(), nullptr, 10);
    } else if (arg == "--budget") {
      options.budget_s = std::strtod(next("--budget").c_str(), nullptr);
    } else if (arg == "--stall-ms") {
      options.stall_ms = static_cast<int>(std::strtol(next("--stall-ms").c_str(), nullptr, 10));
    } else if (arg == "--force-kind") {
      options.force_kind = parse_kind(next("--force-kind"));
    } else if (arg == "--decision-log") {
      options.decision_log = next("--decision-log");
    } else if (arg == "--replay") {
      options.replay = next("--replay");
    } else if (arg == "--output") {
      options.output = next("--output");
    } else {
      std::fprintf(stderr, "chaos_soak: unknown option: %s\n", arg.c_str());
      usage(stderr);
      return 2;
    }
  }

  // Watchdog: the whole soak must complete within the budget or we declare a
  // hang.  _Exit skips destructors on purpose — a hung connection would
  // block an orderly teardown too.
  std::mutex done_mutex;
  std::condition_variable done_cv;
  bool done = false;
  std::thread watchdog{[&] {
    std::unique_lock<std::mutex> lock{done_mutex};
    const auto budget = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::duration<double>{options.budget_s});
    if (!done_cv.wait_for(lock, budget, [&] { return done; })) {
      std::fprintf(stderr, "chaos_soak: watchdog fired after %.0fs — hang\n",
                   options.budget_s);
      std::fflush(nullptr);
      std::_Exit(3);
    }
  }};

  const hetero::core::Environment env = hetero::core::Environment::paper_default();

  // Server (generous read timeout: stalls are injected below it).
  hetero::service::Planner planner;
  hetero::service::ServerConfig server_config;
  server_config.port = 0;
  server_config.threads = 2;
  server_config.poll_interval_ms = 10;
  server_config.read_timeout_ms = 5'000;
  hetero::service::Server server{planner, server_config};
  server.listen();
  std::thread serve_thread{[&server] { server.serve(); }};

  // Chaos proxy in front.
  ChaosConfig chaos_config;
  chaos_config.seed = options.seed;
  chaos_config.upstream_port = server.port();
  chaos_config.stall_ms = options.stall_ms;
  chaos_config.force_kind = options.force_kind;
  ChaosProxy proxy{chaos_config};
  proxy.start();

  Tally tally;
  const std::string allocate_body =
      R"({"profile": [9, 5, 3, 2], "lifespan": 120, "exact": true})";
  const std::vector<double> allocate_profile{9.0, 5.0, 3.0, 2.0};
  const std::vector<double> expected_allocations =
      hetero::core::fifo_allocations_in_order(allocate_profile, env, 120.0);

  for (std::uint64_t i = 0; i < options.requests; ++i) {
    // Fresh client per request: exactly one proxy connection each, so
    // connection index == request index and the fault plan is knowable.
    HttpClient client{"127.0.0.1", proxy.port(), /*io_timeout_ms=*/8'000};
    ChaosPlan plan = ChaosProxy::plan_for(options.seed, i);
    if (options.force_kind >= 0) plan.kind = static_cast<ChaosKind>(options.force_kind);
    const bool lethal = plan.kind == ChaosKind::kResetRequest ||
                        plan.kind == ChaosKind::kKillResponse;
    const int mode = static_cast<int>(i % 4);

    try {
      if (mode == 2) {
        // Expired deadline: must shed deterministically, never compute.
        const ClientResponse response =
            client.request("POST", "/v1/x", profile_body(profile_for(options.seed, i)),
                           "application/json", {{"X-Hetero-Deadline-Ms", "0"}});
        if (response.status == 503) {
          ++tally.sheds;
          if (response.header("Retry-After").empty()) {
            tally.wrong(i, "shed without Retry-After");
          }
        } else {
          tally.wrong(i, "deadline 0 answered " + std::to_string(response.status));
        }
      } else if (mode == 3) {
        // Budget below the LP floor: must answer the closed form, degraded.
        const ClientResponse response =
            client.request("POST", "/v1/allocate", allocate_body, "application/json",
                           {{"X-Hetero-Deadline-Ms", "1"}});
        if (response.status != 200) {
          tally.wrong(i, "degrade path answered " + std::to_string(response.status));
        } else {
          const Json body = Json::parse(response.body);
          const Json* degraded = body.find("degraded");
          if (degraded == nullptr || !degraded->boolean() ||
              response.header("X-Hetero-Degraded").empty()) {
            tally.wrong(i, "tiny-deadline exact allocate was not degraded");
          } else {
            const Json::Array& served = body.at("allocations").items();
            bool match = served.size() == expected_allocations.size();
            for (std::size_t k = 0; match && k < served.size(); ++k) {
              match = served[k].number() == expected_allocations[k];
            }
            if (!match) {
              tally.wrong(i, "degraded allocations differ from the library");
            } else {
              ++tally.degraded_ok;
            }
          }
        }
      } else {
        // Ground truth: the served X must be bit-identical to the library.
        const std::vector<double> speeds = profile_for(options.seed, i);
        const ClientResponse response = client.post("/v1/x", profile_body(speeds));
        if (response.status != 200) {
          tally.wrong(i, "/v1/x answered " + std::to_string(response.status));
        } else {
          const double served = Json::parse(response.body).at("x").number();
          const double expected = hetero::core::x_measure_serial(speeds, env);
          if (served == expected) {
            ++tally.ok;
          } else {
            tally.wrong(i, "X mismatch: served " + Json::number_to_string(served) +
                               " expected " + Json::number_to_string(expected));
          }
        }
      }
    } catch (const std::exception& error) {
      if (lethal) {
        ++tally.transport_expected;
      } else {
        ++tally.transport_unexpected;
        tally.wrong(i, std::string{"transport failure under "} +
                           to_string(plan.kind) + " plan: " + error.what());
      }
    }
  }

  proxy.stop();
  server.request_stop();
  serve_thread.join();

  const std::string decision_log = planner.overload().decision_log().dump();
  if (!options.decision_log.empty()) {
    std::ofstream out{options.decision_log, std::ios::binary};
    out << decision_log;
    if (!out) {
      std::fprintf(stderr, "chaos_soak: cannot write %s\n", options.decision_log.c_str());
      return 1;
    }
  }

  bool replay_checked = false;
  bool replay_match = true;
  if (!options.replay.empty()) {
    replay_checked = true;
    std::ifstream in{options.replay, std::ios::binary};
    std::ostringstream prior;
    prior << in.rdbuf();
    replay_match = in.good() && prior.str() == decision_log;
    if (!replay_match) {
      std::fprintf(stderr,
                   "chaos_soak: decision log differs from replay file %s "
                   "(%zu vs %zu bytes) — determinism broken\n",
                   options.replay.c_str(), decision_log.size(), prior.str().size());
    }
  }

  const ChaosProxy::Stats chaos = proxy.stats();
  const hetero::service::OverloadController::Stats overload = planner.overload().stats();

  Json report = Json::object();
  report.set("seed", Json{static_cast<double>(options.seed)});
  report.set("requests", Json{options.requests});
  report.set("ok", Json{tally.ok});
  report.set("degraded_ok", Json{tally.degraded_ok});
  report.set("sheds", Json{tally.sheds});
  report.set("transport_expected", Json{tally.transport_expected});
  report.set("transport_unexpected", Json{tally.transport_unexpected});
  report.set("wrong_answers", Json{tally.wrong_answers});
  Json by_kind = Json::object();
  for (int kind = 0; kind < hetero::service::kChaosKindCount; ++kind) {
    by_kind.set(to_string(static_cast<ChaosKind>(kind)), Json{chaos.by_kind[kind]});
  }
  Json chaos_out = Json::object();
  chaos_out.set("connections", Json{chaos.connections});
  chaos_out.set("by_kind", std::move(by_kind));
  chaos_out.set("request_bytes", Json{chaos.request_bytes});
  chaos_out.set("response_bytes", Json{chaos.response_bytes});
  report.set("chaos", std::move(chaos_out));
  Json overload_out = Json::object();
  overload_out.set("admitted", Json{overload.admitted});
  overload_out.set("shed_deadline", Json{overload.shed_deadline});
  overload_out.set("degraded", Json{overload.degraded});
  report.set("overload", std::move(overload_out));
  report.set("decision_log_lines",
             Json{static_cast<double>(std::count(decision_log.begin(), decision_log.end(), '\n'))});
  if (replay_checked) report.set("replay_match", Json{replay_match});
  Json complaints = Json::array();
  for (const std::string& complaint : tally.complaints) complaints.push_back(Json{complaint});
  report.set("complaints", std::move(complaints));

  const std::string text = report.dump() + "\n";
  if (options.output.empty()) {
    std::fputs(text.c_str(), stdout);
  } else {
    std::FILE* file = std::fopen(options.output.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "chaos_soak: cannot write %s\n", options.output.c_str());
      return 1;
    }
    std::fputs(text.c_str(), file);
    std::fclose(file);
  }

  {
    const std::lock_guard<std::mutex> lock{done_mutex};
    done = true;
  }
  done_cv.notify_all();
  watchdog.join();

  if (replay_checked && !replay_match) return 2;
  return (tally.wrong_answers > 0 || tally.transport_unexpected > 0) ? 1 : 0;
}
